//! Lift the miniGMG Jacobi smooth stencil without any known input/output
//! data: the generic dimensionality/stride/extent inference path of the paper
//! (§4.3 "generic inference", evaluated in §6.3).
//!
//! The 3-D grid has ghost zones, the kernel is written with x87 floating-point
//! instructions, and the stencil's read set fragments the input buffer, so
//! this example exercises the linear-span fallback as well.
//!
//! ```bash
//! cargo run --example lift_minigmg --release
//! ```

use helium::apps::{Grid3D, MiniGmg};
use helium::core::{LiftRequest, Lifter};
use helium::halide::{Buffer, RealizeInputs, Realizer, ScalarType, Schedule, Value};

fn main() {
    let grid = Grid3D::random(16, 12, 10, 1, 0x6116);
    let app = MiniGmg::new(grid.clone());

    // No known data: miniGMG generates its grid at runtime, exactly as in the
    // paper. Only an estimate of the data size is supplied.
    let request = LiftRequest {
        known_inputs: vec![],
        known_outputs: vec![],
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .expect("lifting the smooth stencil succeeds");

    println!("=== inferred buffers (generic inference, no known data) ===");
    for b in &lifted.buffers {
        println!(
            "  {:10} {:?} dims {} strides {:?} extents {:?}",
            b.name,
            b.role,
            b.dims(),
            b.strides,
            b.extents
        );
    }
    println!();
    println!("=== generated Halide source ===");
    println!("{}", lifted.halide_source());

    // Execute the lifted kernel and compare it against the legacy binary's
    // native reference port.
    let mut cpu = app.fresh_cpu(true);
    cpu.run(app.program(), 500_000_000, |_, _| {})
        .expect("legacy run completes");
    let kernel = lifted.primary();
    let input_layout = lifted.buffer("input_1").expect("input layout");
    let mut input = Buffer::new(ScalarType::Float64, &[input_layout.extents[0] as usize]);
    for i in 0..input.len() {
        let addr = input_layout.base + i as u32 * input_layout.element_size;
        input.set(&[i as i64], Value::Float(cpu.mem.read_f64(addr)));
    }
    let mut inputs = RealizeInputs::new().with_image("input_1", &input);
    for (name, value) in &kernel.parameter_values {
        inputs = inputs.with_param(name, *value);
    }
    let out = Realizer::new(Schedule::stencil_default().with_parallel(true))
        .realize(&kernel.pipeline, &[grid.nx, grid.ny, grid.nz], &inputs)
        .expect("lifted smooth realizes");

    let reference = app.reference_output();
    let mut max_err = 0f64;
    for z in 0..grid.nz {
        for y in 0..grid.ny {
            for x in 0..grid.nx {
                let got = out.get(&[x as i64, y as i64, z as i64]).as_f64();
                max_err = max_err.max((got - reference.get(x, y, z)).abs());
            }
        }
    }
    println!("max |lifted - reference| over the interior: {max_err:e}");
}
