//! Lift a reduction with indirect buffer access: the histogram computation of
//! PhotoFlow's histogram-equalization filter (paper §4.7 "recursive trees",
//! §4.9 "reduction domain inference" and Fig. 4).
//!
//! The legacy kernel increments `hist[input[i]]` for every input byte. Helium
//! recovers a recursive tree (the increment), its initial-update tree (the
//! zeroing loop), and a reduction domain driven by the input image, and
//! generates a Halide `RDom` update definition.
//!
//! ```bash
//! cargo run --example lift_histogram --release
//! ```

use helium::apps::photoflow::{PhotoFilter, PhotoFlow};
use helium::apps::PlanarImage;
use helium::core::{KnownData, LiftRequest, Lifter};

fn main() {
    let image = PlanarImage::random(64, 40, 1, 16, 0x4157);
    let app = PhotoFlow::new(PhotoFilter::Equalize, image);
    let request = LiftRequest {
        known_inputs: app
            .known_input_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        known_outputs: app
            .known_output_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .expect("lifting the histogram kernel succeeds");

    println!("=== clusters (paper Fig. 4: initial update + recursive update) ===");
    for c in &lifted.clusters {
        println!(
            "  output {:10} recursive={:5} reduction over {:?} backed by {} trees",
            c.output_buffer, c.recursive, c.reduction_over, c.support
        );
        println!("    tree: {}", c.tree.render());
    }

    println!();
    println!("=== inferred buffers ===");
    for b in &lifted.buffers {
        println!(
            "  {:10} {:?} base {:#x} element {}B extents {:?}",
            b.name, b.role, b.base, b.element_size, b.extents
        );
    }

    println!();
    println!("=== generated Halide source (compare with paper Fig. 4(c)) ===");
    println!("{}", lifted.halide_source());
}
