//! Lift an x87 floating-point stencil from the BatchView (IrfanView-analogue)
//! converter: interleaved RGB storage, partial-register tricks and the x87
//! register stack (paper §4.5 "trace preprocessing" and §6.1 "IrfanView").
//!
//! ```bash
//! cargo run --example lift_batchview --release
//! ```

use helium::apps::batchview::{BatchFilter, BatchView};
use helium::apps::InterleavedImage;
use helium::core::{KnownData, LiftRequest, Lifter};

fn main() {
    for filter in [
        BatchFilter::Blur,
        BatchFilter::Sharpen,
        BatchFilter::Solarize,
    ] {
        let image = InterleavedImage::random(48, 32, 0xBA7C);
        let app = BatchView::new(filter, image);
        let request = LiftRequest {
            known_inputs: app
                .known_input_rows()
                .into_iter()
                .map(KnownData::from_rows)
                .collect(),
            known_outputs: app
                .known_output_rows()
                .into_iter()
                .map(KnownData::from_rows)
                .collect(),
            approx_data_size: app.approx_data_size(),
        };
        let lifted = Lifter::new()
            .lift(app.program(), &request, |with| app.fresh_cpu(with))
            .expect("lifting the BatchView filter succeeds");

        println!("================ {} ================", filter.name());
        println!(
            "localization: {} of {} blocks survive the coverage difference; \
             filter function has {} static instructions",
            lifted.stats.diff_basic_blocks,
            lifted.stats.total_basic_blocks,
            lifted.stats.static_instruction_count
        );
        for b in &lifted.buffers {
            println!(
                "  buffer {:10} {:?} dims {} extents {:?}  (interleaved RGB: 3 bytes/pixel)",
                b.name,
                b.role,
                b.dims(),
                b.extents
            );
        }
        println!("{}", lifted.halide_source());
    }
}
