//! Quick comparison of the two execution backends on the paper's blur shape.

use helium::halide::prelude::*;
use helium::halide::realize::ExecBackend;
use std::time::Instant;

fn main() {
    let x = Expr::var("x_0");
    let y = Expr::var("x_1");
    let at = |dx: i64, dy: i64| {
        Expr::cast(
            ScalarType::UInt32,
            Expr::Image(
                "input_1".into(),
                vec![
                    Expr::add(x.clone(), Expr::int(dx)),
                    Expr::add(y.clone(), Expr::int(dy)),
                ],
            ),
        )
    };
    let sum = Expr::add(
        Expr::add(Expr::uint(2), Expr::mul(Expr::uint(2), at(1, 1))),
        Expr::add(at(0, 1), at(2, 1)),
    );
    let value = Expr::cast(
        ScalarType::UInt8,
        Expr::bin(
            BinOp::Shr,
            sum,
            Expr::cast(ScalarType::UInt32, Expr::uint(2)),
        ),
    );
    let p = Pipeline::new(
        Func::pure("output_1", &["x_0", "x_1"], ScalarType::UInt8, value),
        vec![ImageParam::new("input_1", ScalarType::UInt8, 2)],
    );
    let (w, h) = (1026usize, 770usize);
    let mut input = Buffer::new(ScalarType::UInt8, &[w, h]);
    let mut state = 7u64;
    for yy in 0..h {
        for xx in 0..w {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            input.set(
                &[xx as i64, yy as i64],
                Value::Int(((state >> 33) % 256) as i64),
            );
        }
    }
    let inputs = RealizeInputs::new().with_image("input_1", &input);
    let extents = [w - 2, h - 2];

    for schedule in [Schedule::naive(), Schedule::stencil_default()] {
        let mut outs = Vec::new();
        for backend in [ExecBackend::Interpret, ExecBackend::Lowered] {
            let r = Realizer::new(schedule.clone()).with_backend(backend);
            let _ = r.realize(&p, &extents, &inputs).unwrap(); // warm up
            let start = Instant::now();
            let reps = 5;
            let mut out = None;
            for _ in 0..reps {
                out = Some(r.realize(&p, &extents, &inputs).unwrap());
            }
            let t = start.elapsed() / reps;
            println!("{backend:?} under [{schedule}]: {t:?}");
            outs.push(out.unwrap());
        }
        assert_eq!(outs[0], outs[1], "backends diverged");
        println!("  outputs bit-identical");
    }
}
