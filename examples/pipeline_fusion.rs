//! Fuse lifted kernels into a pipeline (paper §6.4).
//!
//! Power users chain filters; lifting to Halide lets the compiler fuse the
//! stages, improving locality. This example lifts blur and invert, composes
//! them, and compares separate vs fused execution times.
//!
//! ```bash
//! cargo run --example pipeline_fusion --release
//! ```

use helium::apps::photoflow::{PhotoFilter, PhotoFlow};
use helium::apps::PlanarImage;
use helium::core::{KnownData, LiftRequest, LiftedStencil, Lifter};
use helium::halide::{Buffer, RealizeInputs, Realizer, ScalarType, Schedule, Value};
use std::time::Instant;

fn lift(filter: PhotoFilter, image: &PlanarImage) -> (PhotoFlow, LiftedStencil) {
    let app = PhotoFlow::new(filter, image.clone());
    let request = LiftRequest {
        known_inputs: app
            .known_input_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        known_outputs: app
            .known_output_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .expect("lifting succeeds");
    (app, lifted)
}

fn plane_buffer(app: &PhotoFlow, lifted: &LiftedStencil, name: &str) -> Buffer {
    let layout = lifted.buffer(name).expect("buffer layout");
    let cpu = app.fresh_cpu(true);
    let bytes = cpu.mem.read_bytes(layout.base, layout.byte_len());
    let extents: Vec<usize> = layout.extents.iter().map(|&e| e as usize).collect();
    let mut buf = Buffer::new(ScalarType::UInt8, &extents);
    for y in 0..extents[1] {
        for x in 0..extents[0] {
            let off = y * layout.strides[1] as usize + x;
            if off < bytes.len() {
                buf.set(&[x as i64, y as i64], Value::Int(bytes[off] as i64));
            }
        }
    }
    buf
}

fn main() {
    let image = PlanarImage::random(256, 200, 1, 16, 11);
    let (blur_app, blur) = lift(PhotoFilter::Blur, &image);
    let (_invert_app, invert) = lift(PhotoFilter::Invert, &image);

    // Stage 1: the lifted blur of the red plane; stage 2: the lifted invert,
    // re-targeted to consume the blur's output.
    let blur_kernel = blur.primary();
    let invert_kernel = invert.primary();
    let input = plane_buffer(
        &blur_app,
        &blur,
        &blur_kernel.pipeline.images.keys().next().cloned().unwrap(),
    );
    let extents: Vec<usize> = blur
        .buffer(&blur_kernel.output)
        .unwrap()
        .extents
        .iter()
        .map(|&e| e as usize)
        .collect();

    let schedule = Schedule::stencil_default();
    let realizer = Realizer::new(schedule);

    // Separate execution: blur, materialize, then invert.
    let t0 = Instant::now();
    let input_name = blur_kernel.pipeline.images.keys().next().cloned().unwrap();
    let blurred = realizer
        .realize(
            &blur_kernel.pipeline,
            &extents,
            &RealizeInputs::new().with_image(&input_name, &input),
        )
        .expect("blur realizes");
    let invert_input_name = invert_kernel
        .pipeline
        .images
        .keys()
        .next()
        .cloned()
        .unwrap();
    let _separate = realizer
        .realize(
            &invert_kernel.pipeline,
            &extents,
            &RealizeInputs::new().with_image(&invert_input_name, &blurred),
        )
        .expect("invert realizes");
    let separate_time = t0.elapsed();

    // Fused execution: compose the pipelines and realize once.
    let fused = invert_kernel
        .pipeline
        .compose_after(&blur_kernel.pipeline, &invert_input_name);
    let t1 = Instant::now();
    let _fused_out = realizer
        .realize(
            &fused,
            &extents,
            &RealizeInputs::new().with_image(&input_name, &input),
        )
        .expect("fused pipeline realizes");
    let fused_time = t1.elapsed();

    println!("separate stages : {separate_time:?}");
    println!("fused pipeline  : {fused_time:?}");
    println!(
        "fusion speedup  : {:.2}x",
        separate_time.as_secs_f64() / fused_time.as_secs_f64().max(1e-9)
    );
}
