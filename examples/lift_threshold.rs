//! Lift a filter with input-dependent control flow: PhotoFlow's threshold.
//!
//! The threshold filter sets a pixel to white or black depending on its
//! luminance, so the lifted code must recover the predicate (paper §4.6 and
//! Fig. 5) and generate a `select` in Halide.
//!
//! ```bash
//! cargo run --example lift_threshold --release
//! ```

use helium::apps::photoflow::{PhotoFilter, PhotoFlow};
use helium::apps::PlanarImage;
use helium::core::{KnownData, LiftRequest, Lifter};

fn main() {
    let image = PlanarImage::random(48, 32, 1, 16, 7);
    let app = PhotoFlow::with_params(PhotoFilter::Threshold, image, 96, 0);
    let request = LiftRequest {
        known_inputs: app
            .known_input_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        known_outputs: app
            .known_output_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .expect("lifting the threshold kernel succeeds");

    println!("clusters discovered (one per conditional path and output plane):");
    for c in &lifted.clusters {
        println!(
            "  output {:10}  {} trees  {} predicates  tree: {}",
            c.output_buffer,
            c.support,
            c.predicates.len(),
            c.tree.render()
        );
    }
    println!();
    println!("{}", lifted.halide_source());
}
