//! Quickstart: lift PhotoFlow's 2-D blur from the legacy binary to Halide.
//!
//! ```bash
//! cargo run --example quickstart --release
//! ```

use helium::apps::photoflow::{PhotoFilter, PhotoFlow};
use helium::apps::PlanarImage;
use helium::core::{KnownData, LiftRequest, Lifter};

fn main() {
    // A small synthetic photograph loaded in the legacy editor.
    let image = PlanarImage::random(64, 48, 1, 16, 2024);
    let app = PhotoFlow::new(PhotoFilter::Blur, image);

    // The user supplies the known input/output data (the image files) and an
    // estimate of the data size; Helium does the rest across five
    // instrumented runs of the binary.
    let request = LiftRequest {
        known_inputs: app
            .known_input_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        known_outputs: app
            .known_output_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with_filter| {
            app.fresh_cpu(with_filter)
        })
        .expect("lifting the blur kernel succeeds");

    println!("=== localization / extraction statistics (paper Fig. 6 row) ===");
    let s = &lifted.stats;
    println!("total basic blocks executed : {}", s.total_basic_blocks);
    println!("coverage-difference blocks  : {}", s.diff_basic_blocks);
    println!("filter-function blocks      : {}", s.filter_function_blocks);
    println!(
        "static instructions         : {}",
        s.static_instruction_count
    );
    println!(
        "memory dump                 : {} bytes",
        s.memory_dump_bytes
    );
    println!(
        "dynamic instructions        : {}",
        s.dynamic_instruction_count
    );
    println!("tree sizes per cluster      : {:?}", s.tree_sizes);
    println!();
    println!("=== generated Halide source (paper Fig. 2(h)) ===");
    println!("{}", lifted.halide_source());
}
