//! Differential suite for the tuner's view of the backend-selection API:
//! `dry_run`'s per-store [`StoreProfile::selected_isa`] must agree with the
//! path the executor actually takes (run-time arch counters), and the cost
//! model's `arch_stores` feature column must be derived from exactly those
//! profiles — across pinned portable, pinned AVX2 and detected targets.

use helium_halide::prelude::*;
use helium_halide::{arch_rows_executed, CompileOptions, StoreProfile};
use helium_tune::{score, ScheduleFeatures};
use proptest::prelude::*;

/// A bordered stencil pipeline that fuses on `[i32; W]` lanes.
fn stencil_pipeline() -> Pipeline {
    let u32c = |e: Expr| Expr::cast(ScalarType::UInt32, e);
    let tap = |dx: i64, dy: i64| {
        u32c(Expr::Image(
            "in".into(),
            vec![
                Expr::add(Expr::var("x_0"), Expr::int(dx)),
                Expr::add(Expr::var("x_1"), Expr::int(dy)),
            ],
        ))
    };
    let value = Expr::cast(
        ScalarType::UInt8,
        u32c(Expr::bin(
            BinOp::Shr,
            u32c(Expr::add(u32c(Expr::add(tap(0, 0), tap(1, 0))), tap(0, 1))),
            Expr::uint(1),
        )),
    );
    let out = Func::pure("out", &["x_0", "x_1"], ScalarType::UInt8, value);
    Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)])
}

fn input(w: usize, h: usize) -> Buffer {
    let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
    let mut s = 0x5EED_u64;
    for c in b.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        b.set(&c, Value::Int(((s >> 33) % 256) as i64));
    }
    b
}

fn fused_stores(profile: &helium_halide::PipelineProfile) -> Vec<&StoreProfile> {
    profile
        .stages
        .iter()
        .flat_map(|s| s.stores.iter())
        .filter(|p| p.fused.is_some() || p.reduce.is_some())
        .collect()
}

/// The satellite's acceptance assertion: whatever ISA `dry_run` reports per
/// store is the ISA the run actually executes — `selected_isa == Avx2` iff
/// the arch row counter advances, `Portable` iff it does not.
#[test]
fn dry_run_selected_isa_matches_executed_path() {
    let p = stencil_pipeline();
    let (w, h) = (37, 19);
    let img = input(w + 2, h + 2);
    let inputs = RealizeInputs::new().with_image("in", &img);
    let schedule = Schedule::stencil_default();
    let targets = [
        Target::portable().with_tier(Tier::Simd),
        Target::with_features(&[Feature::Avx2]).with_tier(Tier::Simd),
        Target::detect().with_tier(Tier::Simd),
    ];
    for target in targets {
        let compiled = p
            .compile(
                &schedule,
                &CompileOptions {
                    target: Some(target),
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let profile = compiled.dry_run(&inputs, &[w, h]).expect("dry run");
        let stores = fused_stores(&profile);
        assert!(!stores.is_empty(), "the stencil must compile fused stores");
        let predicts_arch = stores.iter().any(|p| p.selected_isa == Isa::Avx2);
        // The profile's prediction must equal the target's resolution...
        assert_eq!(
            predicts_arch,
            target.effective_isa() == Isa::Avx2,
            "selected_isa disagrees with the resolved target {target:?}"
        );
        // ...and the resolution must equal what the run does.
        let before = arch_rows_executed();
        let _ = compiled.run(&inputs, &[w, h]).expect("run");
        let advanced = arch_rows_executed() > before;
        assert_eq!(
            advanced, predicts_arch,
            "selected_isa promised {predicts_arch} but arch counter advance was {advanced} \
             under {target:?}"
        );
    }
}

/// The cost model's `arch_stores` column counts exactly the stores whose
/// profile selected the arch ISA, and arch selection never worsens a fused
/// schedule's score.
#[test]
fn model_arch_stores_column_tracks_selected_isa() {
    let p = stencil_pipeline();
    let (w, h) = (37, 19);
    let img = input(w + 2, h + 2);
    let inputs = RealizeInputs::new().with_image("in", &img);
    let schedule = Schedule::stencil_default();
    let mut scores = Vec::new();
    for target in [
        Target::portable().with_tier(Tier::Simd),
        Target::with_features(&[Feature::Avx2]).with_tier(Tier::Simd),
    ] {
        let compiled = p
            .compile(
                &schedule,
                &CompileOptions {
                    target: Some(target),
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let profile = compiled.dry_run(&inputs, &[w, h]).expect("dry run");
        let features = ScheduleFeatures::extract(&schedule, &profile);
        let expect = fused_stores(&profile)
            .iter()
            .filter(|p| p.selected_isa == Isa::Avx2)
            .count();
        assert_eq!(features.arch_stores, expect);
        let columns = features.columns();
        let col = columns
            .iter()
            .find(|(name, _)| *name == "arch_stores")
            .expect("arch_stores column");
        assert_eq!(col.1 as usize, expect);
        scores.push((expect, score(&schedule, &profile)));
    }
    // On AVX2 hosts the second compile selects the arch ISA and must score
    // at or below portable; elsewhere both columns are portable and equal.
    let (portable, arch) = (scores[0], scores[1]);
    assert_eq!(portable.0, 0);
    if arch.0 > 0 {
        assert!(
            arch.1 < portable.1,
            "arch-selected stores must score cheaper: {arch:?} vs {portable:?}"
        );
    } else {
        assert_eq!(arch.1, portable.1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Across random schedules, `selected_isa` reporting is consistent: the
    /// portable target never reports an arch store, the AVX2-pinned target
    /// reports arch stores exactly when the host resolves the feature, and
    /// unfused stores always report portable.
    #[test]
    fn selected_isa_is_consistent_across_schedules(
        width in prop::sample::select(vec![1usize, 4, 8, 16, 32]),
        parallel in any::<bool>(),
        tiled in any::<bool>(),
    ) {
        let p = stencil_pipeline();
        let (w, h) = (23, 13);
        let img = input(w + 2, h + 2);
        let inputs = RealizeInputs::new().with_image("in", &img);
        let mut schedule = Schedule::naive()
            .with_parallel(parallel)
            .with_vector_width(width);
        if tiled {
            schedule = schedule.with_tile(Some((8, 8)));
        }
        for target in [
            Target::portable(),
            Target::with_features(&[Feature::Avx2]),
        ] {
            let compiled = p
                .compile(
                    &schedule,
                    &CompileOptions {
                        target: Some(target),
                        ..CompileOptions::default()
                    },
                )
                .expect("compile");
            let profile = compiled.dry_run(&inputs, &[w, h]).expect("dry run");
            for stage in &profile.stages {
                for store in &stage.stores {
                    let has_lanes = store.fused.is_some() || store.reduce.is_some();
                    let expect = if has_lanes {
                        target.effective_isa()
                    } else {
                        Isa::Portable
                    };
                    prop_assert_eq!(store.selected_isa, expect);
                }
            }
        }
    }
}
