//! The analytical cost model: score a candidate [`Schedule`] from a dry-run
//! [`PipelineProfile`](helium_halide::PipelineProfile), without timing it.
//!
//! The model predicts *relative* per-realize cost in abstract element-steps —
//! its job is to rank candidates so the timing budget concentrates on the
//! few schedules that can win, not to predict wall-clock nanoseconds. All of
//! its inputs come from compile-time introspection
//! ([`CompiledPipeline::dry_run`](helium_halide::CompiledPipeline::dry_run)):
//! which lane family each store fused onto and at what chunk width, the
//! stencil halo radius (predicting the interior fraction that runs fused
//! versus the boundary columns that peel onto the per-op tier), tap counts,
//! the working set each materialized producer adds, and whether reductions
//! admit the lane tree-reduce or privatize-then-merge paths.

use helium_halide::exec::MAX_CHUNK;
use helium_halide::{Isa, LaneFamily, PipelineProfile, Schedule, StageProfile, StoreProfile};

/// The model's feature vector for one candidate schedule, exposed on every
/// trial of a [`TuneReport`](crate::TuneReport) so benches and tests can
/// assert *why* a schedule won, not just that it did.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleFeatures {
    /// The schedule's vector width knob.
    pub vector_width: usize,
    /// Whether the outer loop is distributed across worker threads.
    pub parallel: bool,
    /// Threads the schedule would actually use on this machine.
    pub effective_threads: usize,
    /// Tile sizes, if tiling is enabled.
    pub tile: Option<(usize, usize)>,
    /// Materialized stages (producers + output).
    pub stages: usize,
    /// Cells of the output buffer.
    pub output_cells: u64,
    /// Cells materialized into producer buffers beyond the output.
    pub producer_cells: u64,
    /// Stores that compiled a fused SIMD lane kernel (tier 1).
    pub fused_stores: usize,
    /// Lowered stores left on the per-op tier.
    pub unfused_stores: usize,
    /// Guarded (reduction) stores.
    pub guarded_stores: usize,
    /// Guarded stores that compiled the fused lane tree-reduce.
    pub reduce_stores: usize,
    /// Stores admitting privatize-then-merge deferred accumulation.
    pub parallel_reduce_stores: usize,
    /// Total taps (source loads) across all fused kernels.
    pub taps: usize,
    /// Largest stencil halo radius across fused stores.
    pub max_tap_offset: i64,
    /// Predicted fraction of output columns the fused interior covers
    /// (the rest peels onto the per-op boundary tier).
    pub interior_fraction: f64,
    /// Update definitions falling back to the reduction interpreter.
    pub interpreted_updates: usize,
    /// Stages falling back to the per-element interpreter entirely.
    pub interpreted_stages: usize,
    /// Mean warm-iteration row reuse across sliding-window `compute_at`
    /// allocations: a window of extent `E` re-uses `(E - 1) / E` of its rows
    /// per attach iteration. `0.0` when no window compiled.
    pub window_reuse_fraction: f64,
    /// Stages carried by fused multi-output loop nests (0 when nothing
    /// fused; at least 2 per nest otherwise).
    pub fused_output_count: usize,
    /// Stores whose lane kernels will execute on a hand-written arch ISA
    /// path (`selected_isa` = AVX2) rather than the portable lane loops.
    pub arch_stores: usize,
}

impl ScheduleFeatures {
    /// Extract the feature vector for `schedule` from its dry-run profile.
    pub fn extract(schedule: &Schedule, profile: &PipelineProfile) -> ScheduleFeatures {
        let stores = || profile.stages.iter().flat_map(|s| s.stores.iter());
        let interior = profile
            .stages
            .iter()
            .flat_map(|s| {
                let extent0 = s.extents.first().copied().unwrap_or(1).max(1);
                s.stores
                    .iter()
                    .filter(|p| p.fused.is_some())
                    .map(move |p| interior_fraction(extent0, p.max_tap_offset))
            })
            .fold((0.0f64, 0usize), |(sum, n), f| (sum + f, n + 1));
        ScheduleFeatures {
            vector_width: schedule.vector_width,
            parallel: schedule.parallel,
            effective_threads: schedule.effective_threads(),
            tile: schedule.tile,
            stages: profile.stages.len(),
            output_cells: profile.output_cells(),
            producer_cells: profile.producer_cells(),
            fused_stores: stores().filter(|p| p.fused.is_some()).count(),
            unfused_stores: stores()
                .filter(|p| p.fused.is_none() && p.reduce.is_none())
                .count(),
            guarded_stores: stores().filter(|p| p.guarded).count(),
            reduce_stores: stores().filter(|p| p.reduce.is_some()).count(),
            parallel_reduce_stores: stores().filter(|p| p.parallel_reduce).count(),
            taps: stores().map(|p| p.taps).sum(),
            max_tap_offset: stores().map(|p| p.max_tap_offset).max().unwrap_or(0),
            interior_fraction: if interior.1 == 0 {
                0.0
            } else {
                interior.0 / interior.1 as f64
            },
            interpreted_updates: profile.updates.interpreted,
            interpreted_stages: profile.stages.iter().filter(|s| !s.lowered).count(),
            window_reuse_fraction: window_reuse_fraction(profile),
            fused_output_count: profile.fused_outputs,
            arch_stores: stores().filter(|p| p.selected_isa == Isa::Avx2).count(),
        }
    }

    /// The feature vector as named columns, for report rows and assertions.
    pub fn columns(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("vector_width", self.vector_width as f64),
            ("parallel", if self.parallel { 1.0 } else { 0.0 }),
            ("effective_threads", self.effective_threads as f64),
            ("tile_cells", self.tile.map_or(0.0, |(w, h)| (w * h) as f64)),
            ("stages", self.stages as f64),
            ("output_cells", self.output_cells as f64),
            ("producer_cells", self.producer_cells as f64),
            ("fused_stores", self.fused_stores as f64),
            ("unfused_stores", self.unfused_stores as f64),
            ("guarded_stores", self.guarded_stores as f64),
            ("reduce_stores", self.reduce_stores as f64),
            ("parallel_reduce_stores", self.parallel_reduce_stores as f64),
            ("taps", self.taps as f64),
            ("max_tap_offset", self.max_tap_offset as f64),
            ("interior_fraction", self.interior_fraction),
            ("interpreted_updates", self.interpreted_updates as f64),
            ("interpreted_stages", self.interpreted_stages as f64),
            ("window_reuse_fraction", self.window_reuse_fraction),
            ("fused_output_count", self.fused_output_count as f64),
            ("arch_stores", self.arch_stores as f64),
        ]
    }
}

/// Mean warm-iteration row-reuse fraction across the profile's
/// sliding-window allocations: `(E - 1) / E` per window of extent `E`, 0.0
/// when no window compiled.
fn window_reuse_fraction(profile: &PipelineProfile) -> f64 {
    let windows = &profile.sliding_window_extents;
    if windows.is_empty() {
        return 0.0;
    }
    let sum: f64 = windows
        .iter()
        .map(|&e| (e.max(1) - 1) as f64 / e.max(1) as f64)
        .sum();
    sum / windows.len() as f64
}

/// Fraction of the lane dimension a fused kernel covers at full chunk speed:
/// a halo of radius `b` peels `b` columns per side onto the per-op tier.
fn interior_fraction(extent0: usize, halo: i64) -> f64 {
    let peel = 2.0 * halo.max(0) as f64;
    ((extent0 as f64 - peel) / extent0 as f64).clamp(0.0, 1.0)
}

/// Effective lanes a fused store executes per dispatch: the schedule width
/// capped at the widest chunk, halved for the `[i64; W/2]` family (same
/// vector-register footprint).
fn fused_lanes(family: LaneFamily, width: usize) -> f64 {
    let w = width.clamp(1, MAX_CHUNK);
    match family {
        LaneFamily::I64 | LaneFamily::F64 => (w / 2).max(1) as f64,
        LaneFamily::I32 | LaneFamily::F32 => w as f64,
    }
}

/// Per-chunk cost multiplier of the lane ISA a store will execute on: the
/// hand-written AVX2 evaluators beat the autovectorized portable loops on
/// the same chunk shapes (see `BENCH_lowering.json`'s `arch_speedup` floor),
/// so arch-selected stores score cheaper.
fn isa_factor(isa: Isa) -> f64 {
    match isa {
        Isa::Portable => 1.0,
        Isa::Avx2 => 0.8,
    }
}

/// Abstract per-element cost of the per-op typed tier: a dispatch overhead
/// amortized over the scheduled width plus per-op work.
fn per_op_cost(width: usize) -> f64 {
    2.0 + 2.0 / width.max(1) as f64
}

/// Predicted cost of one store over one cell of its stage.
fn store_cost(p: &StoreProfile, schedule: &Schedule, extent0: usize) -> f64 {
    if let Some(family) = p.reduce {
        // Lane tree-reduce accumulation: reductions always chunk at the
        // widest width, independent of the schedule knob.
        return isa_factor(p.selected_isa) * (1.0 + 0.25 * p.taps as f64)
            / fused_lanes(family, MAX_CHUNK)
            + 0.05;
    }
    if let Some(family) = p.fused {
        let interior = interior_fraction(extent0, p.max_tap_offset);
        let fused = isa_factor(p.selected_isa) * (1.0 + 0.25 * p.taps as f64)
            / fused_lanes(family, schedule.vector_width);
        return interior * fused + (1.0 - interior) * per_op_cost(schedule.vector_width);
    }
    if p.guarded {
        // Per-op read-modify-write with clamped destinations.
        return per_op_cost(schedule.vector_width) + 1.5;
    }
    per_op_cost(schedule.vector_width)
}

/// Per-element cost of a stage with no lowered plan (the per-element
/// interpreter walks the whole expression tree per cell).
const INTERPRETED_CELL_COST: f64 = 12.0;

/// Per-element cost of an update running the reduction interpreter.
const INTERPRETED_UPDATE_COST: f64 = 16.0;

/// Fixed cost of spawning one scoped worker thread, in element-steps.
const THREAD_SPAWN_COST: f64 = 2_000.0;

/// Score a candidate: predicted relative cost of one realize, lower is
/// better. Deterministic in (schedule, profile) — ties between structurally
/// different schedules are broken downstream by the timing bandit.
pub fn score(schedule: &Schedule, profile: &PipelineProfile) -> f64 {
    let mut cost = 0.0f64;
    for stage in &profile.stages {
        cost += stage_cost(stage, schedule);
    }
    // Outer-loop distribution: near-linear over the threads that exist on
    // this machine, paying a spawn cost per worker per realize. On a
    // single-core host effective_threads() is 1 and this is neutral.
    let threads = schedule.effective_threads().max(1) as f64;
    if threads > 1.0 {
        cost = cost / (1.0 + 0.9 * (threads - 1.0)) + THREAD_SPAWN_COST * threads;
    }
    // Tiling: small loop-bookkeeping overhead, paid back by locality only
    // when the untiled row working set is large. Kept mild — tier selection
    // and lane width dominate ranking; tiles break timing ties.
    if let Some((tw, th)) = schedule.tile {
        let row_bytes = profile.output().extents.first().copied().unwrap_or(1) as f64 * 8.0;
        let locality = if row_bytes > 256.0 * 1024.0 {
            0.97
        } else {
            1.01
        };
        let granularity = if tw * th < 1024 { 1.03 } else { 1.0 };
        cost *= locality * granularity;
    }
    // Sliding-window compute_at: warm attach iterations skip the reused
    // producer rows, so the attached producer's recompute share shrinks by
    // the mean warm-reuse fraction. Kept mild and multiplicative — exactly
    // neutral when no window compiled.
    let reuse = window_reuse_fraction(profile);
    if reuse > 0.0 {
        cost *= 1.0 - 0.35 * reuse;
    }
    // Multi-output fusion: each stage folded into a shared nest beyond the
    // first drops one full re-walk of the loop bookkeeping per realize.
    // Exactly neutral when nothing fused.
    let extra_fused = profile
        .fused_outputs
        .saturating_sub(profile.multi_output_nests) as f64;
    if extra_fused > 0.0 {
        cost /= 1.0 + 0.04 * extra_fused;
    }
    cost
}

/// Predicted cost of one stage: its cell count times the per-cell cost of
/// every store (or the interpreter fallbacks).
fn stage_cost(stage: &StageProfile, schedule: &Schedule) -> f64 {
    let cells = stage.cells() as f64;
    let extent0 = stage.extents.first().copied().unwrap_or(1).max(1);
    let mut per_cell = 0.0f64;
    if stage.lowered {
        for store in &stage.stores {
            per_cell += store_cost(store, schedule, extent0);
        }
    } else {
        per_cell += INTERPRETED_CELL_COST;
    }
    // Interpreted updates iterate their reduction domain, which the profile
    // does not expose; the stage's own cells are the available proxy.
    per_cell += stage.interpreted_updates as f64 * INTERPRETED_UPDATE_COST;
    cells * per_cell
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_halide::{
        BinOp, CompileOptions, Expr, Func, ImageParam, Pipeline, RealizeInputs, ScalarType, Value,
    };
    use helium_halide::{Buffer, CompiledPipeline};

    fn invert_pipeline() -> (Pipeline, Buffer) {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Xor,
                Expr::Image("in".into(), vec![x, y]),
                Expr::int(255),
            ),
        );
        let p = Pipeline::new(
            Func::pure("out", &["x_0", "x_1"], ScalarType::UInt8, value),
            vec![ImageParam::new("in", ScalarType::UInt8, 2)],
        );
        let mut input = Buffer::new(ScalarType::UInt8, &[64, 48]);
        for c in input.coords().collect::<Vec<_>>() {
            input.set(&c, Value::Int((c[0] * 5 + c[1]) % 256));
        }
        (p, input)
    }

    fn profile_of(p: &Pipeline, s: &Schedule, input: &Buffer) -> helium_halide::PipelineProfile {
        let inputs = RealizeInputs::new().with_image("in", input);
        let compiled: CompiledPipeline = p.compile(s, &CompileOptions::default()).unwrap();
        compiled.dry_run(&inputs, &[64, 48]).unwrap()
    }

    #[test]
    fn fused_wide_schedules_score_below_naive_scalar() {
        let (p, input) = invert_pipeline();
        let naive = Schedule::naive();
        let wide = Schedule::naive().with_vector_width(32);
        let naive_score = score(&naive, &profile_of(&p, &naive, &input));
        let wide_score = score(&wide, &profile_of(&p, &wide, &input));
        assert!(
            wide_score < naive_score,
            "fused 32-lane schedule must be ranked above scalar: {wide_score} vs {naive_score}"
        );
    }

    #[test]
    fn features_expose_tier_selection() {
        let (p, input) = invert_pipeline();
        let wide = Schedule::naive().with_vector_width(16);
        let profile = profile_of(&p, &wide, &input);
        let f = ScheduleFeatures::extract(&wide, &profile);
        assert_eq!(f.fused_stores, 1, "the invert store fuses on i32 lanes");
        assert_eq!(f.unfused_stores, 0);
        assert_eq!(f.stages, 1);
        assert_eq!(f.output_cells, 64 * 48);
        assert!(f.interior_fraction > 0.9, "pointwise kernels have no halo");
        let columns = f.columns();
        assert!(columns
            .iter()
            .any(|(n, v)| *n == "fused_stores" && *v == 1.0));
    }

    /// Two-stage vertical stencil: `blur_x` is read at rows `y` and `y + 1`,
    /// so a `compute_at` attach slides a 2-row window.
    fn vertical_pipeline() -> (Pipeline, Buffer) {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let blur_x = Func::pure(
            "blur_x",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::cast(
                ScalarType::UInt16,
                Expr::Image("in".into(), vec![x.clone(), y.clone()]),
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::add(
                    Expr::FuncRef("blur_x".into(), vec![x.clone(), y.clone()]),
                    Expr::FuncRef("blur_x".into(), vec![x, Expr::add(y, Expr::int(1))]),
                ),
            ),
        );
        let p =
            Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]).with_func(blur_x);
        let mut input = Buffer::new(ScalarType::UInt8, &[64, 48]);
        for c in input.coords().collect::<Vec<_>>() {
            input.set(&c, Value::Int((c[0] * 3 + c[1]) % 256));
        }
        (p, input)
    }

    /// Two pointwise stages, fusable into one multi-output nest.
    fn chain_pipeline() -> (Pipeline, Buffer) {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let s1 = Func::pure(
            "s1",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::bin(
                    BinOp::Xor,
                    Expr::Image("in".into(), vec![x.clone(), y.clone()]),
                    Expr::int(255),
                ),
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::bin(
                    BinOp::Xor,
                    Expr::FuncRef("s1".into(), vec![x, y]),
                    Expr::int(7),
                ),
            ),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]).with_func(s1);
        let mut input = Buffer::new(ScalarType::UInt8, &[64, 48]);
        for c in input.coords().collect::<Vec<_>>() {
            input.set(&c, Value::Int((c[0] + c[1] * 5) % 256));
        }
        (p, input)
    }

    #[test]
    fn sliding_window_feature_surfaces_and_discounts() {
        let (p, input) = vertical_pipeline();
        let at = Schedule::naive()
            .with_vector_width(8)
            .with_compute_at("blur_x", "x_1");
        let slid = at.clone().with_store_sliding("blur_x");
        let profile_at = profile_of(&p, &at, &input);
        let profile_slid = profile_of(&p, &slid, &input);
        let f_at = ScheduleFeatures::extract(&at, &profile_at);
        let f_slid = ScheduleFeatures::extract(&slid, &profile_slid);
        assert_eq!(
            f_at.window_reuse_fraction, 0.0,
            "no window without the knob"
        );
        assert_eq!(
            f_slid.window_reuse_fraction, 0.5,
            "a 2-row window re-uses half its rows per warm iteration"
        );
        assert!(
            score(&slid, &profile_slid) < score(&at, &profile_at),
            "the model must prefer the sliding variant of the same placement"
        );
        let columns = f_slid.columns();
        assert!(columns
            .iter()
            .any(|(n, v)| *n == "window_reuse_fraction" && *v == 0.5));
    }

    #[test]
    fn fused_output_feature_surfaces_and_discounts() {
        let (p, input) = chain_pipeline();
        let rooted = Schedule::naive()
            .with_vector_width(8)
            .with_compute_root("s1");
        let fused = rooted.clone().with_fuse_outputs(true);
        let profile_rooted = profile_of(&p, &rooted, &input);
        let profile_fused = profile_of(&p, &fused, &input);
        let f_rooted = ScheduleFeatures::extract(&rooted, &profile_rooted);
        let f_fused = ScheduleFeatures::extract(&fused, &profile_fused);
        assert_eq!(f_rooted.fused_output_count, 0);
        assert_eq!(
            f_fused.fused_output_count, 2,
            "both stages fold into one multi-output nest"
        );
        assert!(
            score(&fused, &profile_fused) < score(&rooted, &profile_rooted),
            "the model must prefer the fused variant of the same placement"
        );
        let columns = f_fused.columns();
        assert!(columns
            .iter()
            .any(|(n, v)| *n == "fused_output_count" && *v == 2.0));
    }

    #[test]
    fn scoring_is_deterministic() {
        let (p, input) = invert_pipeline();
        let s = Schedule::stencil_default();
        let profile = profile_of(&p, &s, &input);
        assert_eq!(score(&s, &profile), score(&s, &profile));
    }
}
