//! The persistent schedule cache: winning schedules keyed by
//! `fingerprint_pipeline × extents × backend`, the sibling of the halide
//! crate's `ProgramCache`.
//!
//! A serving process pays the guided search once: the winner is inserted
//! here, serialized to the path named by [`SCHEDULE_CACHE_ENV`], and every
//! later process warms up with **zero timed trials** (see
//! [`crate::guided_search_cached`] and `helium_serve`'s warm hook).
//!
//! The workspace's `serde` is a no-op API shim (no real serialization), so
//! persistence is a hand-rolled versioned text format: one header line, then
//! one entry per line with percent-escaped func names. The format is strict
//! on load ([`ScheduleCache::from_text`]) with a lenient wrapper
//! ([`ScheduleCache::load_or_default`]) for serving paths where a corrupt or
//! missing cache must mean "search again", never "crash".

use helium_halide::cache::fingerprint_pipeline;
use helium_halide::{ExecBackend, Pipeline, Schedule, Target};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Environment variable naming the schedule cache file consulted by
/// [`ScheduleCache::load_env`] / [`ScheduleCache::save_env`].
pub const SCHEDULE_CACHE_ENV: &str = "HELIUM_SCHEDULE_CACHE";

/// Header line of the on-disk format; bumped on layout changes so stale
/// caches fail parsing instead of resurrecting wrong schedules.
const HEADER: &str = "helium-schedule-cache v1";

/// Cache key: which tuned pipeline instance a winning schedule applies to.
/// Mirrors the program cache's key structure minus the schedule and binding
/// fields — the schedule is the cached *value*, and winners generalize
/// across bindings of the same extents.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ScheduleKey {
    /// Pipeline fingerprint (`fingerprint_pipeline`).
    pub pipeline: u64,
    /// Execution backend the schedule was tuned for.
    pub backend: ExecBackend,
    /// `+`-joined ISA feature tag of the resolved [`Target`] the schedule
    /// was tuned under ([`Target::feature_tag`]; empty = portable lanes).
    /// Winners tuned with the AVX2 arch kernels never migrate to portable
    /// hosts, and vice versa.
    pub features: String,
    /// Output extents the schedule was tuned over.
    pub extents: Vec<usize>,
}

impl ScheduleKey {
    /// Build the key for `pipeline` tuned over `extents` on `backend`,
    /// keyed on the ISA features of the process's resolved
    /// [`Target::current`] — the target unpinned compiles resolve to.
    pub fn for_pipeline(pipeline: &Pipeline, backend: ExecBackend, extents: &[usize]) -> Self {
        ScheduleKey {
            pipeline: fingerprint_pipeline(pipeline),
            backend,
            features: Target::current().feature_tag(),
            extents: extents.to_vec(),
        }
    }
}

/// A cached winner: the schedule plus the evidence that put it there.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSchedule {
    /// The winning schedule.
    pub schedule: Schedule,
    /// Its best observed steady-state time, in nanoseconds.
    pub best_ns: u64,
    /// The model score the schedule won with.
    pub model_score: f64,
    /// Timed trials the original search spent finding it.
    pub timed_trials: usize,
}

/// Parse failure of the on-disk format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleCacheError {
    /// 1-based line the failure was detected on.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ScheduleCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule cache line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScheduleCacheError {}

/// The persistent schedule cache. See the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScheduleCache {
    entries: BTreeMap<ScheduleKey, CachedSchedule>,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> ScheduleCache {
        ScheduleCache::default()
    }

    /// Look up the winner for `key`.
    pub fn get(&self, key: &ScheduleKey) -> Option<&CachedSchedule> {
        self.entries.get(key)
    }

    /// Insert (or replace) the winner for `key`.
    pub fn insert(&mut self, key: ScheduleKey, entry: CachedSchedule) {
        self.entries.insert(key, entry);
    }

    /// Number of cached winners.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no winners.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over the cached entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&ScheduleKey, &CachedSchedule)> {
        self.entries.iter()
    }

    /// Serialize to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (key, entry) in &self.entries {
            let extents = key
                .extents
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("x");
            out.push_str(&format!(
                "{:016x} {} {} {} {:e} {} {}\n",
                key.pipeline,
                encode_backend(key.backend, &key.features),
                if extents.is_empty() {
                    "-".into()
                } else {
                    extents
                },
                entry.best_ns,
                entry.model_score,
                entry.timed_trials,
                encode_schedule(&entry.schedule),
            ));
        }
        out
    }

    /// Parse the versioned text format (strict: any malformed line fails).
    ///
    /// # Errors
    /// Returns a [`ScheduleCacheError`] naming the offending line.
    pub fn from_text(text: &str) -> Result<ScheduleCache, ScheduleCacheError> {
        let err = |line: usize, message: &str| ScheduleCacheError {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == HEADER => {}
            _ => return Err(err(1, "missing or unsupported header")),
        }
        let mut cache = ScheduleCache::new();
        for (i, line) in lines {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.splitn(7, ' ').collect();
            if fields.len() != 7 {
                return Err(err(lineno, "expected 7 space-separated fields"));
            }
            let pipeline = u64::from_str_radix(fields[0], 16)
                .map_err(|_| err(lineno, "bad pipeline fingerprint"))?;
            let (backend, features) =
                decode_backend(fields[1]).ok_or_else(|| err(lineno, "bad backend"))?;
            let extents: Vec<usize> = if fields[2] == "-" {
                Vec::new()
            } else {
                fields[2]
                    .split('x')
                    .map(|e| e.parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err(lineno, "bad extents"))?
            };
            let best_ns = fields[3]
                .parse::<u64>()
                .map_err(|_| err(lineno, "bad best_ns"))?;
            let model_score = fields[4]
                .parse::<f64>()
                .map_err(|_| err(lineno, "bad model score"))?;
            let timed_trials = fields[5]
                .parse::<usize>()
                .map_err(|_| err(lineno, "bad timed_trials"))?;
            let schedule = decode_schedule(fields[6]).map_err(|message| err(lineno, &message))?;
            cache.insert(
                ScheduleKey {
                    pipeline,
                    backend,
                    features,
                    extents,
                },
                CachedSchedule {
                    schedule,
                    best_ns,
                    model_score,
                    timed_trials,
                },
            );
        }
        Ok(cache)
    }

    /// Write the cache to `path` (atomically enough for single-writer use:
    /// temp file in the same directory, then rename).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)
    }

    /// Read and strictly parse the cache at `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors; parse failures surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> std::io::Result<ScheduleCache> {
        let text = std::fs::read_to_string(path)?;
        ScheduleCache::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Lenient load for serving paths: a missing or corrupt cache is an
    /// empty cache (the process searches again), never a crash.
    pub fn load_or_default(path: &Path) -> ScheduleCache {
        ScheduleCache::load(path).unwrap_or_default()
    }

    /// The cache path named by [`SCHEDULE_CACHE_ENV`], if set and non-empty.
    pub fn env_path() -> Option<PathBuf> {
        match std::env::var(SCHEDULE_CACHE_ENV) {
            Ok(p) if !p.is_empty() => Some(PathBuf::from(p)),
            _ => None,
        }
    }

    /// Leniently load the cache named by [`SCHEDULE_CACHE_ENV`] (empty when
    /// the variable is unset or the file is missing/corrupt).
    pub fn load_env() -> ScheduleCache {
        Self::env_path()
            .map(|p| Self::load_or_default(&p))
            .unwrap_or_default()
    }

    /// Save to the path named by [`SCHEDULE_CACHE_ENV`]; returns whether a
    /// path was configured.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_env(&self) -> std::io::Result<bool> {
        match Self::env_path() {
            Some(p) => self.save(&p).map(|()| true),
            None => Ok(false),
        }
    }
}

/// The backend field of the v1 text encoding, extended with the resolved
/// target's ISA feature tag: `lowered`, `lowered+avx2`. Legacy files carry
/// the bare backend, which decodes as the empty (portable) feature set.
fn encode_backend(backend: ExecBackend, features: &str) -> String {
    let tag = match backend {
        ExecBackend::Interpret => "interpret",
        ExecBackend::Lowered => "lowered",
    };
    if features.is_empty() {
        tag.to_string()
    } else {
        format!("{tag}+{features}")
    }
}

fn decode_backend(tag: &str) -> Option<(ExecBackend, String)> {
    let (backend, features) = match tag.split_once('+') {
        Some((b, f)) => (b, f),
        None => (tag, ""),
    };
    let backend = match backend {
        "interpret" => ExecBackend::Interpret,
        "lowered" => ExecBackend::Lowered,
        _ => return None,
    };
    Some((backend, features.to_string()))
}

/// Percent-escape a func or var name so the schedule encoding's delimiters
/// (`;`, `,`, `@`, spaces, `%`) can never collide with user-chosen names.
fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b';' | b',' | b'@' | b' ' | b'%' | b'\n' | b'\t' => {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
            _ => out.push(b as char),
        }
    }
    out
}

fn unescape(name: &str) -> Result<String, String> {
    let bytes = name.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| "truncated escape".to_string())?;
            let hex = std::str::from_utf8(hex).map_err(|_| "bad escape".to_string())?;
            out.push(u8::from_str_radix(hex, 16).map_err(|_| "bad escape".to_string())?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| "bad utf-8 in name".to_string())
}

/// Encode a schedule as one token:
/// `parallel=<b>;threads=<n>;tile=<w>x<h>|-;vector=<n>;roots=<a,b>;at=<f@v,...>;sliding=<a,b>;fuse=<b>`.
///
/// The locality keys (`sliding`, `fuse`) were appended in a later revision;
/// the decoder treats missing keys as their `Schedule::naive()` defaults, so
/// files written before the keys existed still load.
fn encode_schedule(s: &Schedule) -> String {
    let tile = match s.tile {
        Some((w, h)) => format!("{w}x{h}"),
        None => "-".to_string(),
    };
    let roots = s
        .compute_root
        .iter()
        .map(|n| escape(n))
        .collect::<Vec<_>>()
        .join(",");
    let at = s
        .compute_at
        .iter()
        .map(|(f, v)| format!("{}@{}", escape(f), escape(v)))
        .collect::<Vec<_>>()
        .join(",");
    let sliding = s
        .store_sliding
        .iter()
        .map(|n| escape(n))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "parallel={};threads={};tile={};vector={};roots={};at={};sliding={};fuse={}",
        s.parallel, s.threads, tile, s.vector_width, roots, at, sliding, s.fuse_outputs
    )
}

fn decode_schedule(text: &str) -> Result<Schedule, String> {
    let mut s = Schedule::naive();
    for part in text.split(';') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad schedule field `{part}`"))?;
        match key {
            "parallel" => {
                s.parallel = value.parse().map_err(|_| "bad parallel".to_string())?;
            }
            "threads" => {
                s.threads = value.parse().map_err(|_| "bad threads".to_string())?;
            }
            "tile" => {
                s.tile = if value == "-" {
                    None
                } else {
                    let (w, h) = value
                        .split_once('x')
                        .ok_or_else(|| "bad tile".to_string())?;
                    Some((
                        w.parse().map_err(|_| "bad tile".to_string())?,
                        h.parse().map_err(|_| "bad tile".to_string())?,
                    ))
                };
            }
            "vector" => {
                s.vector_width = value.parse().map_err(|_| "bad vector".to_string())?;
            }
            "roots" => {
                for name in value.split(',').filter(|n| !n.is_empty()) {
                    s.compute_root.insert(unescape(name)?);
                }
            }
            "at" => {
                for pair in value.split(',').filter(|p| !p.is_empty()) {
                    let (f, v) = pair
                        .split_once('@')
                        .ok_or_else(|| "bad compute_at".to_string())?;
                    s.compute_at.insert(unescape(f)?, unescape(v)?);
                }
            }
            "sliding" => {
                for name in value.split(',').filter(|n| !n.is_empty()) {
                    s.store_sliding.insert(unescape(name)?);
                }
            }
            "fuse" => {
                s.fuse_outputs = value.parse().map_err(|_| "bad fuse".to_string())?;
            }
            _ => return Err(format!("unknown schedule field `{key}`")),
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> (ScheduleKey, CachedSchedule) {
        (
            ScheduleKey {
                pipeline: 0xDEADBEEF_u64,
                backend: ExecBackend::Lowered,
                features: "avx2".to_string(),
                extents: vec![640, 480],
            },
            CachedSchedule {
                schedule: Schedule::stencil_default()
                    .with_compute_root("blur x")
                    .with_compute_at("lut;table", "x_1")
                    .with_store_sliding("lut;table")
                    .with_fuse_outputs(true),
                best_ns: 123_456,
                model_score: 987.5,
                timed_trials: 5,
            },
        )
    }

    #[test]
    fn text_round_trip_preserves_entries_exactly() {
        let mut cache = ScheduleCache::new();
        let (key, entry) = sample_entry();
        cache.insert(key.clone(), entry.clone());
        cache.insert(
            ScheduleKey {
                pipeline: 7,
                backend: ExecBackend::Interpret,
                features: String::new(),
                extents: vec![1],
            },
            CachedSchedule {
                schedule: Schedule::naive(),
                best_ns: 1,
                model_score: 0.0,
                timed_trials: 1,
            },
        );
        let parsed = ScheduleCache::from_text(&cache.to_text()).unwrap();
        assert_eq!(parsed, cache);
        assert_eq!(parsed.get(&key), Some(&entry));
    }

    #[test]
    fn legacy_schedule_encoding_without_locality_keys_decodes() {
        // Files written before the `sliding`/`fuse` keys existed must keep
        // loading, with the locality knobs at their naive defaults.
        let legacy = "parallel=true;threads=4;tile=64x64;vector=16;roots=a;at=b@x_1";
        let s = decode_schedule(legacy).unwrap();
        assert!(s.store_sliding.is_empty());
        assert!(!s.fuse_outputs);
        assert_eq!(s.vector_width, 16);
        assert_eq!(s.tile, Some((64, 64)));
        // And the current encoding round-trips the knobs exactly.
        let knobs = Schedule::naive()
            .with_store_sliding("blur x")
            .with_fuse_outputs(true);
        let decoded = decode_schedule(&encode_schedule(&knobs)).unwrap();
        assert_eq!(decoded, knobs);
    }

    #[test]
    fn legacy_backend_tags_without_features_decode_as_portable() {
        // Files written before the ISA-feature extension carry the bare
        // backend tag; they must load with the empty (portable) feature set
        // and stay distinct from entries keyed on the arch feature tag.
        let legacy = format!("{HEADER}\n00000000000000aa lowered 4x4 10 1e2 3 parallel=false\n");
        let cache = ScheduleCache::from_text(&legacy).unwrap();
        let (key, _) = cache.iter().next().unwrap();
        assert_eq!(key.features, "");
        // And the extended tag round-trips exactly.
        let mut tagged = ScheduleCache::new();
        let (key, entry) = sample_entry();
        tagged.insert(key.clone(), entry);
        let text = tagged.to_text();
        assert!(text.contains(" lowered+avx2 "), "got: {text}");
        let parsed = ScheduleCache::from_text(&text).unwrap();
        assert_eq!(parsed, tagged);
    }

    #[test]
    fn hostile_names_survive_escaping() {
        for name in ["a b", "x;y", "p,q", "f@v", "100%", "tab\there"] {
            assert_eq!(unescape(&escape(name)).unwrap(), name);
        }
    }

    #[test]
    fn corrupt_text_is_rejected_with_line_numbers() {
        assert!(ScheduleCache::from_text("").is_err());
        assert!(ScheduleCache::from_text("not a header\n").is_err());
        let bad = format!("{HEADER}\nzzzz lowered 4x4 1 0.0 1 parallel=false\n");
        let err = ScheduleCache::from_text(&bad).unwrap_err();
        assert_eq!(err.line, 2);
        let bad_backend = format!("{HEADER}\n0000000000000001 gpu 4x4 1 0.0 1 parallel=false\n");
        assert!(ScheduleCache::from_text(&bad_backend).is_err());
    }

    #[test]
    fn file_round_trip_and_lenient_load() {
        let dir =
            std::env::temp_dir().join(format!("helium_tune_cache_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schedules.txt");
        let mut cache = ScheduleCache::new();
        let (key, entry) = sample_entry();
        cache.insert(key.clone(), entry.clone());
        cache.save(&path).unwrap();
        // Fresh state: a new cache value populated purely from disk.
        let loaded = ScheduleCache::load(&path).unwrap();
        assert_eq!(loaded.get(&key), Some(&entry));
        // Lenient load tolerates both absence and corruption.
        assert!(ScheduleCache::load_or_default(&dir.join("missing.txt")).is_empty());
        std::fs::write(&path, "garbage").unwrap();
        assert!(ScheduleCache::load_or_default(&path).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
