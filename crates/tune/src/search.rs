//! The guided search loop: enumerate the candidate space, rank it with the
//! analytical cost model (dry-run compiles only — no timing), then refine the
//! top-K with a successive-halving bandit over real cached steady-state
//! timings.
//!
//! Compared to the baseline random sampler in `helium_halide::autotune`, the
//! budget-bearing resource here is *timed trials*: the model ranks the whole
//! candidate space for the price of a few dry-run compiles, and only the
//! handful of schedules that can plausibly win are ever timed. The
//! `BENCH_autotune.json` report gates the resulting
//! `guided_vs_random_speedup` in CI.

use crate::cache::{CachedSchedule, ScheduleCache, ScheduleKey};
use crate::model::{score, ScheduleFeatures};
use crate::trials::{TrialLog, TrialRecord};
use helium_halide::cache::fingerprint_schedule;
use helium_halide::{CompileOptions, ExecBackend, Pipeline, RealizeError, RealizeInputs, Schedule};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Configuration of a guided search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Candidates surviving model ranking into the timing bandit.
    pub top_k: usize,
    /// Timing repetitions of the bandit's first round (doubled per round).
    pub repetitions: usize,
    /// Cap on the enumerated candidate space; larger spaces are thinned by
    /// deterministic stride sampling.
    pub max_candidates: usize,
    /// Wall-clock budget for the timed refinement phase.
    pub budget: Duration,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            top_k: 5,
            repetitions: 2,
            max_candidates: 96,
            budget: Duration::from_secs(10),
        }
    }
}

/// One candidate's record: the model's verdict and, when the bandit timed
/// it, the measurement.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The candidate schedule.
    pub schedule: Schedule,
    /// Its schedule fingerprint (the dedupe key).
    pub fingerprint: u64,
    /// The model's feature vector — *why* the model ranked it here.
    pub features: ScheduleFeatures,
    /// The model's predicted relative cost (lower is better).
    pub model_score: f64,
    /// Best observed steady-state time, when the bandit timed this trial.
    pub measured: Option<Duration>,
    /// Total timing repetitions spent on this trial across bandit rounds.
    pub timed_reps: usize,
}

/// Result of a guided search.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// The winning schedule.
    pub best: Schedule,
    /// Its best observed steady-state time (zero on a pure cache hit).
    pub best_time: Duration,
    /// Every ranked candidate in model order, with features and any
    /// measurements. Empty on a pure cache hit.
    pub trials: Vec<Trial>,
    /// Distinct schedules the bandit actually timed. Zero when the schedule
    /// cache already held a winner for this key.
    pub timed_trials: usize,
    /// Whether the winner came from a [`ScheduleCache`] without any search.
    pub from_cache: bool,
}

/// Enumerate the deterministic candidate space for `pipeline`: vector widths
/// crossed with tilings, parallelism and per-producer placements (inline /
/// `compute_root` / `compute_at` the outermost output loop), deduplicated by
/// schedule fingerprint and seeded with the naive and stencil-default
/// schedules. Candidates with `compute_at` placements additionally spawn a
/// sliding-window variant (`with_store_sliding` on every attached producer),
/// and untiled candidates with `compute_root` placements spawn a
/// `with_fuse_outputs` variant, so the locality tier is part of the searched
/// space. Spaces larger than `limit` are thinned by stride sampling so every
/// region of the space stays represented.
pub fn enumerate_candidates(pipeline: &Pipeline, limit: usize) -> Vec<Schedule> {
    let widths = [1usize, 8, 16, 32];
    let tiles = [None, Some((64usize, 64usize)), Some((128, 128))];
    let parallels = [false, true];
    let producers: Vec<String> = pipeline
        .funcs
        .keys()
        .filter(|n| **n != pipeline.output)
        .cloned()
        .collect();
    let attach_var = pipeline.output_func().vars.last().cloned();

    // Per-producer placement choices: 0 = inline, 1 = compute_root,
    // 2 = compute_at the outermost output loop. Pipelines with many
    // producers fall back to uniform placements to keep the space bounded.
    let placement_sets: Vec<Vec<u8>> = if producers.len() <= 2 {
        let n = producers.len() as u32;
        (0..3u32.pow(n))
            .map(|mut code| {
                (0..n)
                    .map(|_| {
                        let c = (code % 3) as u8;
                        code /= 3;
                        c
                    })
                    .collect()
            })
            .collect()
    } else {
        vec![vec![0; producers.len()], vec![1; producers.len()]]
    };

    let mut all = vec![Schedule::naive(), Schedule::stencil_default()];
    for placements in &placement_sets {
        for &parallel in &parallels {
            for &tile in &tiles {
                for &width in &widths {
                    let mut s = Schedule::naive()
                        .with_parallel(parallel)
                        .with_tile(tile)
                        .with_vector_width(width);
                    let mut attached: Vec<&str> = Vec::new();
                    let mut rooted = false;
                    for (producer, code) in producers.iter().zip(placements) {
                        match code {
                            1 => {
                                s = s.with_compute_root(producer);
                                rooted = true;
                            }
                            2 => {
                                if let Some(var) = &attach_var {
                                    s = s.with_compute_at(producer, var);
                                    attached.push(producer.as_str());
                                }
                            }
                            _ => {}
                        }
                    }
                    // Locality-tier variants: roll each attached producer as
                    // a sliding window, and (untiled only — fusion requires
                    // it) collapse the compute_root chain into one shared
                    // multi-output nest.
                    if !attached.is_empty() {
                        let mut slid = s.clone();
                        for producer in &attached {
                            slid = slid.with_store_sliding(producer);
                        }
                        all.push(slid);
                    }
                    if rooted && tile.is_none() {
                        all.push(s.clone().with_fuse_outputs(true));
                    }
                    all.push(s);
                }
            }
        }
    }
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    all.retain(|s| seen.insert(fingerprint_schedule(s)));
    if all.len() > limit.max(2) {
        let len = all.len();
        let limit = limit.max(2);
        let mut thinned: Vec<Schedule> = (0..limit).map(|i| all[i * len / limit].clone()).collect();
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        thinned.retain(|s| seen.insert(fingerprint_schedule(s)));
        return thinned;
    }
    all
}

/// Rank `candidates` by model score: dry-run compile each one (no
/// execution), extract features, score, and sort ascending (best first).
/// Candidates the compiler rejects outright are dropped.
///
/// # Errors
/// Returns an error only when *no* candidate compiles — realize-level
/// problems like missing inputs surface here.
pub fn rank_candidates(
    pipeline: &Pipeline,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    candidates: &[Schedule],
) -> Result<Vec<Trial>, RealizeError> {
    let mut trials = Vec::with_capacity(candidates.len());
    let mut last_err = None;
    for schedule in candidates {
        let compiled = match pipeline.compile(schedule, &CompileOptions::default()) {
            Ok(c) => c,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        let profile = match compiled.dry_run(inputs, extents) {
            Ok(p) => p,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        let features = ScheduleFeatures::extract(schedule, &profile);
        trials.push(Trial {
            fingerprint: fingerprint_schedule(schedule),
            model_score: score(schedule, &profile),
            schedule: schedule.clone(),
            features,
            measured: None,
            timed_reps: 0,
        });
    }
    if trials.is_empty() {
        return Err(last_err.unwrap_or(RealizeError::UndefinedFunc(pipeline.output.clone())));
    }
    trials.sort_by(|a, b| {
        a.model_score
            .partial_cmp(&b.model_score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(trials)
}

/// Steady-state best-of-`reps` timing of one schedule: compile once, one
/// untimed warm-up run to populate the program cache, then time cached runs.
fn time_schedule(
    schedule: &Schedule,
    pipeline: &Pipeline,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    reps: usize,
) -> Result<Duration, RealizeError> {
    let compiled = pipeline.compile(schedule, &CompileOptions::default())?;
    let _ = compiled.run(inputs, extents)?;
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let _ = compiled.run(inputs, extents)?;
        best = best.min(start.elapsed());
    }
    Ok(best)
}

/// Model-guided schedule search: rank the enumerated candidate space by the
/// analytical cost model, then refine the top-K with a successive-halving
/// bandit — each round times the surviving pool at doubled repetitions and
/// keeps the faster half, so cheap noisy measurements screen broadly and
/// precise ones decide the final.
///
/// # Errors
/// Returns an error if the pipeline cannot be realized at all (missing
/// inputs, undefined funcs, ...).
pub fn guided_search(
    pipeline: &Pipeline,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    config: &SearchConfig,
) -> Result<TuneReport, RealizeError> {
    let candidates = enumerate_candidates(pipeline, config.max_candidates);
    let mut trials = rank_candidates(pipeline, extents, inputs, &candidates)?;

    let started = Instant::now();
    let mut pool: Vec<usize> = (0..trials.len().min(config.top_k.max(1))).collect();
    let mut reps = config.repetitions.max(1);
    loop {
        for &i in &pool {
            // The first round must time every pool member even if the budget
            // is already gone — the report needs at least one measurement.
            if trials[i].timed_reps > 0 && started.elapsed() >= config.budget {
                continue;
            }
            let t = time_schedule(&trials[i].schedule, pipeline, extents, inputs, reps)?;
            let trial = &mut trials[i];
            trial.measured = Some(trial.measured.map_or(t, |m| m.min(t)));
            trial.timed_reps += reps;
        }
        if pool.len() <= 1 || started.elapsed() >= config.budget {
            break;
        }
        pool.sort_by_key(|&i| trials[i].measured.unwrap_or(Duration::MAX));
        pool.truncate(pool.len().div_ceil(2));
        reps = reps.saturating_mul(2);
    }
    let timed_trials = trials.iter().filter(|t| t.timed_reps > 0).count();
    let best_idx = trials
        .iter()
        .enumerate()
        .filter(|(_, t)| t.measured.is_some())
        .min_by_key(|(_, t)| t.measured.unwrap())
        .map(|(i, _)| i)
        .expect("at least one trial was timed");
    Ok(TuneReport {
        best: trials[best_idx].schedule.clone(),
        best_time: trials[best_idx].measured.unwrap(),
        trials,
        timed_trials,
        from_cache: false,
    })
}

/// [`guided_search`] with a persistent [`ScheduleCache`] in front: a hit
/// returns the cached winner with **zero timed trials** (the warm-start
/// contract a serving process relies on); a miss searches and inserts the
/// winner under `fingerprint_pipeline × extents × backend`. When a schedule
/// cache path is configured ([`crate::SCHEDULE_CACHE_ENV`]), every timed
/// trial the miss spends is also appended to the sibling [`TrialLog`] —
/// measured evidence for a future refit of the cost model. Log-write
/// failures are swallowed: losing refit evidence must never fail a search.
///
/// # Errors
/// See [`guided_search`].
pub fn guided_search_cached(
    pipeline: &Pipeline,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    config: &SearchConfig,
    cache: &mut ScheduleCache,
) -> Result<TuneReport, RealizeError> {
    let key = ScheduleKey::for_pipeline(pipeline, ExecBackend::Lowered, extents);
    if let Some(entry) = cache.get(&key) {
        return Ok(TuneReport {
            best: entry.schedule.clone(),
            best_time: Duration::from_nanos(entry.best_ns),
            trials: Vec::new(),
            timed_trials: 0,
            from_cache: true,
        });
    }
    let report = guided_search(pipeline, extents, inputs, config)?;
    let records: Vec<TrialRecord> = report
        .trials
        .iter()
        .filter(|t| t.timed_reps > 0)
        .map(|t| TrialRecord {
            pipeline: key.pipeline,
            backend: key.backend,
            target_features: key.features.clone(),
            extents: key.extents.clone(),
            schedule: t.fingerprint,
            measured_ns: t.measured.map_or(0, |m| m.as_nanos() as u64),
            timed_reps: t.timed_reps,
            model_score: t.model_score,
            features: t
                .features
                .columns()
                .into_iter()
                .map(|(name, value)| (name.to_string(), value))
                .collect(),
        })
        .collect();
    let _ = TrialLog::append_env(&records);
    let best_fp = fingerprint_schedule(&report.best);
    cache.insert(
        key,
        CachedSchedule {
            schedule: report.best.clone(),
            best_ns: report.best_time.as_nanos() as u64,
            model_score: report
                .trials
                .iter()
                .find(|t| t.fingerprint == best_fp)
                .map(|t| t.model_score)
                .unwrap_or(0.0),
            timed_trials: report.timed_trials,
        },
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_halide::{BinOp, Buffer, Expr, Func, ImageParam, Realizer, ScalarType, Value};

    fn blur_pipeline() -> (Pipeline, Buffer) {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let blur_x = Func::pure(
            "blur_x",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::add(
                Expr::cast(
                    ScalarType::UInt16,
                    Expr::Image("in".into(), vec![x.clone(), y.clone()]),
                ),
                Expr::cast(
                    ScalarType::UInt16,
                    Expr::Image(
                        "in".into(),
                        vec![Expr::add(x.clone(), Expr::int(1)), y.clone()],
                    ),
                ),
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::bin(
                    BinOp::Shr,
                    Expr::add(
                        Expr::FuncRef("blur_x".into(), vec![x.clone(), y.clone()]),
                        Expr::FuncRef("blur_x".into(), vec![x, Expr::add(y, Expr::int(1))]),
                    ),
                    Expr::uint(2),
                ),
            ),
        );
        let p =
            Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]).with_func(blur_x);
        let mut input = Buffer::new(ScalarType::UInt8, &[72, 56]);
        for c in input.coords().collect::<Vec<_>>() {
            input.set(&c, Value::Int((c[0] * 7 + c[1] * 3) % 256));
        }
        (p, input)
    }

    #[test]
    fn enumeration_is_deduped_and_bounded() {
        let (p, _) = blur_pipeline();
        let all = enumerate_candidates(&p, 96);
        assert!(all.len() <= 96);
        assert!(all.len() > 10, "one producer spans a real space");
        let fps: BTreeSet<u64> = all.iter().map(fingerprint_schedule).collect();
        assert_eq!(fps.len(), all.len(), "candidates must be distinct");
        let thinned = enumerate_candidates(&p, 16);
        assert!(thinned.len() <= 16);
        assert!(
            thinned.iter().any(|s| s.vector_width >= 8),
            "stride thinning must keep wide-lane candidates"
        );
    }

    #[test]
    fn enumeration_covers_locality_knobs() {
        let (p, _) = blur_pipeline();
        let all = enumerate_candidates(&p, 256);
        assert!(
            all.iter()
                .any(|s| s.store_sliding.contains("blur_x") && s.compute_at.contains_key("blur_x")),
            "a sliding-window variant of every compute_at placement is enumerated"
        );
        assert!(
            all.iter()
                .any(|s| s.fuse_outputs && s.compute_root.contains("blur_x")),
            "a fuse_outputs variant of every compute_root placement is enumerated"
        );
        assert!(
            all.iter().all(|s| !(s.fuse_outputs && s.tile.is_some())),
            "fusion variants are only spawned untiled (fusion requires it)"
        );
    }

    #[test]
    fn ranking_produces_features_and_sorted_scores() {
        let (p, input) = blur_pipeline();
        let inputs = RealizeInputs::new().with_image("in", &input);
        let candidates = enumerate_candidates(&p, 32);
        let trials = rank_candidates(&p, &[70, 54], &inputs, &candidates).unwrap();
        assert_eq!(trials.len(), candidates.len());
        for pair in trials.windows(2) {
            assert!(pair[0].model_score <= pair[1].model_score);
        }
        // The model must prefer a fused wide schedule over naive scalar.
        let naive_rank = trials
            .iter()
            .position(|t| t.schedule == Schedule::naive())
            .expect("naive is always a candidate");
        assert!(
            trials[0].features.vector_width > 1,
            "the top-ranked schedule should be vectorized"
        );
        assert!(naive_rank > 0, "naive scalar cannot be the top pick");
    }

    #[test]
    fn guided_search_times_only_top_k_and_best_is_sound() {
        let (p, input) = blur_pipeline();
        let inputs = RealizeInputs::new().with_image("in", &input);
        let config = SearchConfig {
            top_k: 3,
            repetitions: 1,
            max_candidates: 24,
            budget: Duration::from_secs(30),
        };
        let report = guided_search(&p, &[70, 54], &inputs, &config).unwrap();
        assert!(report.timed_trials <= 3, "only the top-K pool is timed");
        assert!(report.timed_trials >= 1);
        assert!(!report.from_cache);
        // The winner must reproduce the naive result exactly.
        let naive = Realizer::new(Schedule::naive())
            .realize(&p, &[70, 54], &inputs)
            .unwrap();
        let tuned = Realizer::new(report.best.clone())
            .realize(&p, &[70, 54], &inputs)
            .unwrap();
        assert_eq!(naive, tuned);
    }

    #[test]
    fn cached_search_hits_with_zero_timed_trials() {
        let (p, input) = blur_pipeline();
        let inputs = RealizeInputs::new().with_image("in", &input);
        let config = SearchConfig {
            top_k: 2,
            repetitions: 1,
            max_candidates: 12,
            budget: Duration::from_secs(30),
        };
        let mut cache = ScheduleCache::new();
        let first = guided_search_cached(&p, &[70, 54], &inputs, &config, &mut cache).unwrap();
        assert!(first.timed_trials >= 1);
        assert_eq!(cache.len(), 1);
        let second = guided_search_cached(&p, &[70, 54], &inputs, &config, &mut cache).unwrap();
        assert_eq!(second.timed_trials, 0, "a cache hit performs no timing");
        assert!(second.from_cache);
        assert_eq!(second.best, first.best);
        // A different extents key misses.
        let third = guided_search_cached(&p, &[40, 30], &inputs, &config, &mut cache).unwrap();
        assert!(!third.from_cache);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_miss_appends_timed_trials_to_the_sibling_log() {
        use crate::cache::SCHEDULE_CACHE_ENV;
        use crate::trials::TrialLog;
        let dir =
            std::env::temp_dir().join(format!("helium_tune_trial_env_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache_path = dir.join("schedules.txt");
        std::env::set_var(SCHEDULE_CACHE_ENV, &cache_path);
        let (p, input) = blur_pipeline();
        let inputs = RealizeInputs::new().with_image("in", &input);
        let config = SearchConfig {
            top_k: 2,
            repetitions: 1,
            max_candidates: 12,
            budget: Duration::from_secs(30),
        };
        let mut cache = ScheduleCache::new();
        let report = guided_search_cached(&p, &[33, 21], &inputs, &config, &mut cache).unwrap();
        std::env::remove_var(SCHEDULE_CACHE_ENV);
        let key = ScheduleKey::for_pipeline(&p, ExecBackend::Lowered, &[33, 21]);
        let log = TrialLog::load(&cache_path.with_file_name("schedules.txt.trials")).unwrap();
        let mine: Vec<_> = log
            .records()
            .iter()
            .filter(|r| r.pipeline == key.pipeline && r.extents == [33, 21])
            .collect();
        assert_eq!(
            mine.len(),
            report.timed_trials,
            "one log row per timed trial"
        );
        for r in &mine {
            assert!(r.measured_ns > 0);
            assert!(r
                .features
                .iter()
                .any(|(name, _)| name == "window_reuse_fraction"));
            assert!(r
                .features
                .iter()
                .any(|(name, _)| name == "fused_output_count"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
