//! `helium-tune`: cost-model-guided schedule search with a persistent
//! schedule cache.
//!
//! The paper spends six hours of OpenTuner search per lifted filter; the
//! halide crate's `autotune` module shrinks that to a random sample — but a
//! blind one. This crate replaces it with a search that exploits everything
//! the compiled engine already knows about itself:
//!
//! * **Cost model** ([`model`]): scores a candidate [`Schedule`] from a
//!   dry-run compile ([`CompiledPipeline::dry_run`]) — per-store fused lane
//!   family and chunk width, predicted interior/boundary split from the
//!   stencil halo radius, tap counts, materialized working set, reduction
//!   and privatize-then-merge admissibility — without timing anything.
//! * **Guided search** ([`search`]): ranks the enumerated candidate space by
//!   model score and refines the top-K with a successive-halving bandit over
//!   real cached steady-state timings, so the timing budget concentrates on
//!   schedules that can actually win.
//! * **Schedule cache** ([`cache`]): winners persist keyed by
//!   `fingerprint_pipeline × extents × backend` (the sibling of the program
//!   cache), serialized to the path named by `HELIUM_SCHEDULE_CACHE` — a
//!   warmed serving process performs zero timed trials before serving.
//! * **Trial log** ([`trials`]): every timed trial a cached search spends is
//!   appended (feature columns + measured nanoseconds) to a versioned text
//!   file beside the schedule cache — the design matrix for a future
//!   least-squares refit of the cost model's constants.
//!
//! [`CompiledPipeline::dry_run`]: helium_halide::CompiledPipeline::dry_run
//! [`Schedule`]: helium_halide::Schedule

#![warn(missing_docs)]

pub mod cache;
pub mod model;
pub mod search;
pub mod trials;

pub use cache::{
    CachedSchedule, ScheduleCache, ScheduleCacheError, ScheduleKey, SCHEDULE_CACHE_ENV,
};
pub use model::{score, ScheduleFeatures};
pub use search::{
    enumerate_candidates, guided_search, guided_search_cached, rank_candidates, SearchConfig,
    Trial, TuneReport,
};
pub use trials::{TrialLog, TrialLogError, TrialRecord};
