//! The persistent trial log: every *timed* trial a guided search spends,
//! recorded as a feature vector plus its measured steady-state nanoseconds.
//!
//! The [`ScheduleCache`](crate::ScheduleCache) keeps only winners; this log
//! keeps the evidence. Each row pairs a [`ScheduleFeatures`] column vector
//! with a real measurement, which is exactly the design matrix a future
//! least-squares refit of the analytical cost model needs (see ROADMAP).
//!
//! Like the schedule cache, persistence is a hand-rolled versioned text
//! format (the workspace `serde` is a no-op shim): one header line, then one
//! row per timed trial. Rows are append-only — [`TrialLog::append`] adds to
//! an existing file without rewriting it, so concurrent searches interleave
//! whole rows rather than clobbering each other's history. Loading is strict
//! via [`TrialLog::from_text`] with the usual lenient wrapper
//! ([`TrialLog::load_or_default`]) for paths where a corrupt log must mean
//! "no history", never "crash".

use crate::cache::ScheduleCache;
use helium_halide::ExecBackend;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Header line of the on-disk format; bumped on layout changes so stale
/// logs fail parsing instead of feeding a refit wrong columns.
const HEADER: &str = "helium-trial-log v1";

/// Suffix appended to the schedule-cache path to name its sibling trial log.
const TRIAL_LOG_SUFFIX: &str = ".trials";

/// One timed trial: where it ran (pipeline × backend × extents), which
/// schedule it was, what the model saw, and what the clock said.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Pipeline fingerprint the trial ran against.
    pub pipeline: u64,
    /// Execution backend the trial ran on.
    pub backend: ExecBackend,
    /// `+`-joined ISA feature tag of the resolved target the trial ran
    /// under (`Target::feature_tag`; empty = portable lanes).
    pub target_features: String,
    /// Output extents the trial realized.
    pub extents: Vec<usize>,
    /// Schedule fingerprint of the timed candidate.
    pub schedule: u64,
    /// Best observed steady-state time, in nanoseconds.
    pub measured_ns: u64,
    /// Timing repetitions spent across bandit rounds.
    pub timed_reps: usize,
    /// The model's predicted relative cost for this candidate.
    pub model_score: f64,
    /// The feature vector the model scored, as named columns
    /// ([`ScheduleFeatures::columns`](crate::ScheduleFeatures::columns)).
    pub features: Vec<(String, f64)>,
}

/// Parse failure of the on-disk format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialLogError {
    /// 1-based line the failure was detected on.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for TrialLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trial log line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TrialLogError {}

/// The persistent trial log. See the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrialLog {
    records: Vec<TrialRecord>,
}

impl TrialLog {
    /// An empty log.
    pub fn new() -> TrialLog {
        TrialLog::default()
    }

    /// The recorded trials, in file (append) order.
    pub fn records(&self) -> &[TrialRecord] {
        &self.records
    }

    /// Number of recorded trials.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no trials.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append a record in memory.
    pub fn push(&mut self, record: TrialRecord) {
        self.records.push(record);
    }

    /// Serialize to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for record in &self.records {
            out.push_str(&encode_record(record));
            out.push('\n');
        }
        out
    }

    /// Parse the versioned text format (strict: any malformed line fails).
    ///
    /// # Errors
    /// Returns a [`TrialLogError`] naming the offending line.
    pub fn from_text(text: &str) -> Result<TrialLog, TrialLogError> {
        let err = |line: usize, message: &str| TrialLogError {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == HEADER => {}
            _ => return Err(err(1, "missing or unsupported header")),
        }
        let mut log = TrialLog::new();
        for (i, line) in lines {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            log.push(decode_record(line).map_err(|message| err(lineno, &message))?);
        }
        Ok(log)
    }

    /// Write the whole log to `path` (temp file then rename, like the
    /// schedule cache).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)
    }

    /// Read and strictly parse the log at `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors; parse failures surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> std::io::Result<TrialLog> {
        let text = std::fs::read_to_string(path)?;
        TrialLog::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Lenient load: a missing or corrupt log is an empty log, never a
    /// crash.
    pub fn load_or_default(path: &Path) -> TrialLog {
        TrialLog::load(path).unwrap_or_default()
    }

    /// Append `records` to the log at `path` without rewriting existing
    /// rows; a missing or empty file gets the header first.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn append(path: &Path, records: &[TrialRecord]) -> std::io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let needs_header = std::fs::metadata(path)
            .map(|m| m.len() == 0)
            .unwrap_or(true);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut chunk = String::new();
        if needs_header {
            chunk.push_str(HEADER);
            chunk.push('\n');
        }
        for record in records {
            chunk.push_str(&encode_record(record));
            chunk.push('\n');
        }
        file.write_all(chunk.as_bytes())
    }

    /// The trial-log path derived from the configured schedule-cache path
    /// ([`crate::SCHEDULE_CACHE_ENV`] + `.trials`), if the variable is set.
    /// The log lives beside the cache so a deployment that persists winners
    /// automatically accumulates the refit evidence too.
    pub fn env_path() -> Option<PathBuf> {
        ScheduleCache::env_path().map(|p| sibling_path(&p))
    }

    /// Append `records` to the log beside the env-configured schedule cache;
    /// returns whether a path was configured.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn append_env(records: &[TrialRecord]) -> std::io::Result<bool> {
        match Self::env_path() {
            Some(p) => Self::append(&p, records).map(|()| true),
            None => Ok(false),
        }
    }
}

/// The trial log living beside a schedule cache at `cache_path`.
fn sibling_path(cache_path: &Path) -> PathBuf {
    let mut name = cache_path.file_name().unwrap_or_default().to_os_string();
    name.push(TRIAL_LOG_SUFFIX);
    cache_path.with_file_name(name)
}

/// The backend field of the v1 text encoding, extended with the resolved
/// target's ISA feature tag: `lowered`, `lowered+avx2`. Legacy files carry
/// the bare backend, which decodes as the empty (portable) feature set.
fn encode_backend(backend: ExecBackend, features: &str) -> String {
    let tag = match backend {
        ExecBackend::Interpret => "interpret",
        ExecBackend::Lowered => "lowered",
    };
    if features.is_empty() {
        tag.to_string()
    } else {
        format!("{tag}+{features}")
    }
}

fn decode_backend(tag: &str) -> Option<(ExecBackend, String)> {
    let (backend, features) = match tag.split_once('+') {
        Some((b, f)) => (b, f),
        None => (tag, ""),
    };
    let backend = match backend {
        "interpret" => ExecBackend::Interpret,
        "lowered" => ExecBackend::Lowered,
        _ => return None,
    };
    Some((backend, features.to_string()))
}

/// Encode one record as one line:
/// `<pipeline:016x> <backend> <extents|-> <schedule:016x> <measured_ns>
/// <timed_reps> <model_score:e> <name=val;...|->`.
fn encode_record(r: &TrialRecord) -> String {
    let extents = if r.extents.is_empty() {
        "-".to_string()
    } else {
        r.extents
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("x")
    };
    let features = if r.features.is_empty() {
        "-".to_string()
    } else {
        r.features
            .iter()
            .map(|(name, value)| format!("{name}={value:e}"))
            .collect::<Vec<_>>()
            .join(";")
    };
    format!(
        "{:016x} {} {} {:016x} {} {} {:e} {}",
        r.pipeline,
        encode_backend(r.backend, &r.target_features),
        extents,
        r.schedule,
        r.measured_ns,
        r.timed_reps,
        r.model_score,
        features,
    )
}

fn decode_record(line: &str) -> Result<TrialRecord, String> {
    let fields: Vec<&str> = line.splitn(8, ' ').collect();
    if fields.len() != 8 {
        return Err("expected 8 space-separated fields".to_string());
    }
    let pipeline =
        u64::from_str_radix(fields[0], 16).map_err(|_| "bad pipeline fingerprint".to_string())?;
    let (backend, target_features) =
        decode_backend(fields[1]).ok_or_else(|| "bad backend".to_string())?;
    let extents: Vec<usize> = if fields[2] == "-" {
        Vec::new()
    } else {
        fields[2]
            .split('x')
            .map(|e| e.parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| "bad extents".to_string())?
    };
    let schedule =
        u64::from_str_radix(fields[3], 16).map_err(|_| "bad schedule fingerprint".to_string())?;
    let measured_ns = fields[4]
        .parse::<u64>()
        .map_err(|_| "bad measured_ns".to_string())?;
    let timed_reps = fields[5]
        .parse::<usize>()
        .map_err(|_| "bad timed_reps".to_string())?;
    let model_score = fields[6]
        .parse::<f64>()
        .map_err(|_| "bad model score".to_string())?;
    let features = if fields[7] == "-" {
        Vec::new()
    } else {
        fields[7]
            .split(';')
            .map(|pair| {
                let (name, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad feature column `{pair}`"))?;
                let value = value
                    .parse::<f64>()
                    .map_err(|_| format!("bad feature value in `{pair}`"))?;
                Ok((name.to_string(), value))
            })
            .collect::<Result<Vec<_>, String>>()?
    };
    Ok(TrialRecord {
        pipeline,
        backend,
        target_features,
        extents,
        schedule,
        measured_ns,
        timed_reps,
        model_score,
        features,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> TrialRecord {
        TrialRecord {
            pipeline: 0xFEED_u64,
            backend: ExecBackend::Lowered,
            target_features: "avx2".to_string(),
            extents: vec![640, 480],
            schedule: 0xBEEF_u64,
            measured_ns: 123_456,
            timed_reps: 6,
            model_score: 987.5,
            features: vec![
                ("vector_width".to_string(), 16.0),
                ("window_reuse_fraction".to_string(), 2.0 / 3.0),
                ("fused_output_count".to_string(), 0.0),
            ],
        }
    }

    #[test]
    fn text_round_trip_preserves_records_exactly() {
        let mut log = TrialLog::new();
        log.push(sample_record());
        log.push(TrialRecord {
            features: Vec::new(),
            extents: Vec::new(),
            ..sample_record()
        });
        let parsed = TrialLog::from_text(&log.to_text()).unwrap();
        assert_eq!(parsed, log);
        // Feature values survive with full f64 precision (the `{:e}` form).
        assert_eq!(parsed.records()[0].features[1].1, 2.0 / 3.0);
    }

    #[test]
    fn legacy_backend_tags_without_features_decode_as_portable() {
        let legacy = format!("{HEADER}\n00000000000000ff lowered 4x4 00000000000000aa 1 1 0e0 -\n");
        let log = TrialLog::from_text(&legacy).unwrap();
        assert_eq!(log.records()[0].target_features, "");
        // The extended tag round-trips exactly.
        let mut tagged = TrialLog::new();
        tagged.push(sample_record());
        let text = tagged.to_text();
        assert!(text.contains(" lowered+avx2 "), "got: {text}");
        assert_eq!(TrialLog::from_text(&text).unwrap(), tagged);
    }

    #[test]
    fn corrupt_text_is_rejected_with_line_numbers() {
        assert!(TrialLog::from_text("").is_err());
        assert!(TrialLog::from_text("not a header\n").is_err());
        let bad = format!("{HEADER}\nzzzz lowered 4x4 0 1 1 0.0 -\n");
        let err = TrialLog::from_text(&bad).unwrap_err();
        assert_eq!(err.line, 2);
        let bad_features =
            format!("{HEADER}\n00000000000000ff lowered 4x4 00000000000000aa 1 1 0.0 taps\n");
        assert!(TrialLog::from_text(&bad_features).is_err());
    }

    #[test]
    fn append_creates_header_once_and_interleaves_rows() {
        let dir =
            std::env::temp_dir().join(format!("helium_tune_trials_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schedules.txt.trials");
        TrialLog::append(&path, &[sample_record()]).unwrap();
        let second = TrialRecord {
            measured_ns: 777,
            ..sample_record()
        };
        TrialLog::append(&path, std::slice::from_ref(&second)).unwrap();
        let loaded = TrialLog::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.records()[1], second);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().filter(|l| l.trim() == HEADER).count(),
            1,
            "append must write the header exactly once"
        );
        // Lenient load tolerates both absence and corruption.
        assert!(TrialLog::load_or_default(&dir.join("missing.txt")).is_empty());
        std::fs::write(&path, "garbage").unwrap();
        assert!(TrialLog::load_or_default(&path).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trial_log_lives_beside_the_cache_path() {
        assert_eq!(
            sibling_path(Path::new("/tmp/caches/schedules.txt")),
            Path::new("/tmp/caches/schedules.txt.trials")
        );
    }
}
