//! Tests of the instrumentation substrate against small hand-built programs:
//! coverage differencing, block profiling with dynamic CFG edges, function
//! tracing and page-granularity memory dumps — the five data products the
//! Helium pipeline consumes.

use helium_dbi::Instrumenter;
use helium_machine::asm::Asm;
use helium_machine::isa::{regs, Cond, MemRef, Operand, Reg, Width};
use helium_machine::program::Program;
use helium_machine::{Cpu, PAGE_SIZE};
use proptest::prelude::*;
use std::collections::BTreeSet;

const FLAG_ADDR: i32 = 0x0008_0000;
const DATA_BASE: u32 = 0x0010_0000;
const OUT_BASE: u32 = 0x0020_0000;

/// A small "application": background code always runs; a filter function is
/// called only when the flag at `FLAG_ADDR` is non-zero. The filter negates
/// `n` bytes from `DATA_BASE` into `OUT_BASE`.
fn toy_app(n: u32) -> (Program, u32) {
    let mut asm = Asm::new(0x40_0000);
    // Background work (always runs).
    asm.mov(regs::eax(), Operand::Imm(0));
    asm.add(regs::eax(), Operand::Imm(123));
    // if (flag) call filter;
    asm.mov(
        regs::ecx(),
        Operand::Mem(MemRef::absolute(FLAG_ADDR, Width::B4)),
    );
    asm.test(regs::ecx(), regs::ecx());
    asm.jcc(Cond::Z, "skip");
    asm.call("filter");
    asm.label("skip");
    asm.halt();

    // The "filter": for i in 0..n { out[i] = 255 - in[i]; }
    let filter_entry = asm.label("filter");
    asm.mov(regs::esi(), Operand::Imm(DATA_BASE as i64));
    asm.mov(regs::edi(), Operand::Imm(OUT_BASE as i64));
    asm.mov(regs::ecx(), Operand::Imm(n as i64));
    asm.label("loop");
    asm.movzx(
        regs::eax(),
        Operand::Mem(MemRef::base_only(Reg::Esi, Width::B1)),
    );
    asm.mov(regs::ebx(), Operand::Imm(255));
    asm.sub(regs::ebx(), regs::eax());
    asm.mov(
        Operand::Mem(MemRef::base_only(Reg::Edi, Width::B1)),
        regs::bl(),
    );
    asm.inc(regs::esi());
    asm.inc(regs::edi());
    asm.dec(regs::ecx());
    asm.jcc(Cond::Nz, "loop");
    asm.ret();

    let mut program = Program::new();
    program.add_module("toy", asm.finish());
    program.add_function(filter_entry, None);
    (program, filter_entry)
}

fn fresh_cpu(with_filter: bool, n: u32) -> Cpu {
    let mut cpu = Cpu::new();
    cpu.pc = 0x40_0000;
    cpu.mem.write_u32(FLAG_ADDR as u32, u32::from(with_filter));
    for i in 0..n {
        cpu.mem.write_u8(DATA_BASE + i, (i * 7 % 256) as u8);
    }
    cpu
}

#[test]
fn coverage_difference_isolates_the_filter_blocks() {
    let (program, filter_entry) = toy_app(16);
    let instr = Instrumenter::new();
    let with = instr.coverage(&program, &mut fresh_cpu(true, 16)).unwrap();
    let without = instr.coverage(&program, &mut fresh_cpu(false, 16)).unwrap();

    // The filter entry block only executes in the run with the filter.
    let diff = with.difference(&without);
    assert!(
        diff.contains(&filter_entry),
        "difference must contain the filter entry"
    );
    // Background-only blocks never appear in the difference.
    assert!(!diff.contains(&0x40_0000));
    // Difference with itself is empty.
    assert!(with.difference(&with).is_empty());
    // The run with the filter executes strictly more blocks and instructions.
    assert!(with.static_block_count() > without.static_block_count());
    assert!(with.dynamic_instructions > without.dynamic_instructions);
}

#[test]
fn profile_counts_loop_iterations_and_cfg_edges() {
    let n = 24;
    let (program, filter_entry) = toy_app(n);
    let instr = Instrumenter::new();
    let with = instr.coverage(&program, &mut fresh_cpu(true, n)).unwrap();
    let without = instr.coverage(&program, &mut fresh_cpu(false, n)).unwrap();
    let diff = with.difference(&without);

    let profile = instr
        .profile(&program, &mut fresh_cpu(true, n), &diff)
        .unwrap();

    // The loop body block executes once per byte.
    let (hottest, count) = profile.hottest_block().expect("profile has blocks");
    assert_eq!(count, n as u64, "loop body executes n times");
    assert!(diff.contains(&hottest));

    // The loop block's recorded predecessors include the block it is entered
    // from (the filter prologue at the function entry); self edges are not
    // recorded.
    assert!(
        profile
            .predecessors
            .get(&hottest)
            .is_some_and(|p| p.contains(&filter_entry)),
        "the loop block must record the filter prologue as a predecessor: {:?}",
        profile.predecessors.get(&hottest)
    );
    assert!(
        profile
            .predecessors
            .get(&hottest)
            .is_none_or(|p| !p.contains(&hottest)),
        "self edges are not recorded"
    );

    // The call site targeting the filter entry was observed.
    assert!(
        profile
            .call_targets
            .values()
            .any(|t| t.contains(&filter_entry)),
        "dynamic call target must include the filter entry"
    );

    // Every profiled block is attributed to a function entry.
    for block in profile.block_counts.keys() {
        assert!(
            profile.block_function.contains_key(block),
            "block {block:#x} missing function attribution"
        );
    }

    // The memory trace only contains accesses made by instructions inside the
    // instrumented (difference) blocks: the filter's input and output ranges
    // plus its stack traffic, but never the flag probe from background code.
    assert!(profile
        .memory_trace
        .iter()
        .all(|e| e.addr != FLAG_ADDR as u32));
    assert!(profile
        .memory_trace
        .iter()
        .any(|e| e.addr >= DATA_BASE && e.addr < DATA_BASE + n));
    assert!(profile
        .memory_trace
        .iter()
        .any(|e| e.addr >= OUT_BASE && e.addr < OUT_BASE + n));
}

#[test]
fn function_trace_captures_only_the_filter_and_dumps_its_pages() {
    let n = 32;
    let (program, filter_entry) = toy_app(n);
    let instr = Instrumenter::new();

    // Candidate instructions: every static instruction of the program (the
    // dump then covers everything the filter touches).
    let candidates: BTreeSet<u32> = program.instrs().map(|(a, _)| a).collect();
    let (trace, dump) = instr
        .function_trace(&program, &mut fresh_cpu(true, n), filter_entry, &candidates)
        .unwrap();

    assert!(!trace.is_empty());
    assert_eq!(
        trace.invocations.len(),
        1,
        "the filter is called exactly once"
    );
    // Every traced instruction lies inside the filter function body (which
    // sits after the entry label in this toy program).
    for rec in &trace.records {
        assert!(
            rec.addr >= filter_entry,
            "instruction {:#x} outside the filter",
            rec.addr
        );
    }
    // The loop body contributes n iterations; the trace must therefore be at
    // least n instructions long.
    assert!(trace.len() >= n as usize);
    assert!(trace.static_instructions().contains(&filter_entry));

    // The dump contains the input page (read) and the output page (written),
    // and its size is a whole number of pages.
    assert!(dump
        .read_pages
        .contains_key(&(DATA_BASE & !(PAGE_SIZE - 1))));
    assert!(dump
        .written_pages
        .contains_key(&(OUT_BASE & !(PAGE_SIZE - 1))));
    assert_eq!(dump.size_bytes() % PAGE_SIZE as usize, 0);

    // The written page holds the filter's actual output (captured at exit).
    for i in 0..n {
        let expect = 255 - (i * 7 % 256) as u8;
        assert_eq!(dump.read_u8(OUT_BASE + i), Some(expect), "output byte {i}");
    }
}

#[test]
fn memory_dump_finds_known_data_across_page_boundaries() {
    // Write a recognizable pattern spanning a page boundary and check the
    // needle search used by known-data inference finds it.
    let n = 64u32;
    let base = DATA_BASE + PAGE_SIZE - 16; // crosses into the next page
    let mut asm = Asm::new(0x40_0000);
    asm.mov(regs::esi(), Operand::Imm(base as i64));
    asm.mov(regs::ecx(), Operand::Imm(n as i64));
    asm.label("loop");
    asm.movzx(
        regs::eax(),
        Operand::Mem(MemRef::base_only(Reg::Esi, Width::B1)),
    );
    asm.mov(
        Operand::Mem(MemRef::base_disp(Reg::Esi, 0x1_0000, Width::B1)),
        regs::al(),
    );
    asm.inc(regs::esi());
    asm.dec(regs::ecx());
    asm.jcc(Cond::Nz, "loop");
    asm.ret();
    let entry = 0x40_0000;
    let mut program = Program::new();
    program.add_module("copy", asm.finish());
    program.add_function(entry, None);

    let mut cpu = Cpu::new();
    cpu.pc = entry;
    // Seed the return address so the final `ret` halts cleanly: push a halt
    // stub address is not available, so instead run via a caller.
    let needle: Vec<u8> = (0..n).map(|i| (100 + i) as u8).collect();
    for (i, &b) in needle.iter().enumerate() {
        cpu.mem.write_u8(base + i as u32, b);
    }

    // Wrap in a tiny caller so `ret` is well-defined.
    let mut caller = Asm::new(0x50_0000);
    caller.call(entry);
    caller.halt();
    let mut program2 = Program::new();
    program2.add_module("copy", {
        let mut all = std::collections::BTreeMap::new();
        for (a, i) in program.instrs() {
            all.insert(a, i.clone());
        }
        for (a, i) in caller.finish() {
            all.insert(a, i);
        }
        all
    });
    program2.add_function(entry, None);
    cpu.pc = 0x50_0000;

    let candidates: BTreeSet<u32> = program2.instrs().map(|(a, _)| a).collect();
    let instr = Instrumenter::new();
    let (_, dump) = instr
        .function_trace(&program2, &mut cpu, entry, &candidates)
        .unwrap();

    assert_eq!(dump.find_in_read_pages(&needle), Some(base));
    assert_eq!(dump.find_in_written_pages(&needle), Some(base + 0x1_0000));
    assert_eq!(
        dump.find_in_read_pages(&[0xAB, 0xCD, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89]),
        None
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coverage is deterministic (same program, same input → same report) and
    /// the dynamic instruction count matches an uninstrumented run.
    #[test]
    fn coverage_is_deterministic_and_counts_instructions(n in 1u32..64) {
        let (program, _) = toy_app(n);
        let instr = Instrumenter::new();
        let a = instr.coverage(&program, &mut fresh_cpu(true, n)).unwrap();
        let b = instr.coverage(&program, &mut fresh_cpu(true, n)).unwrap();
        prop_assert_eq!(&a.blocks, &b.blocks);
        prop_assert_eq!(a.dynamic_instructions, b.dynamic_instructions);
        prop_assert_eq!(a.dynamic_block_entries, b.dynamic_block_entries);

        let mut cpu = fresh_cpu(true, n);
        cpu.pc = 0x40_0000;
        let mut executed = 0u64;
        cpu.run(&program, 1_000_000, |_, _| executed += 1).unwrap();
        prop_assert_eq!(a.dynamic_instructions, executed);
    }

    /// The filter's loop block count scales exactly with the data size, and
    /// the instruction trace length grows linearly with it — the property the
    /// paper's candidate-instruction selection relies on (kernels touch all
    /// the data).
    #[test]
    fn trace_size_scales_with_data_size(n in 2u32..48) {
        let (program, filter_entry) = toy_app(n);
        let (program_2n, filter_entry_2n) = toy_app(2 * n);
        let instr = Instrumenter::new();
        let candidates: BTreeSet<u32> = program.instrs().map(|(a, _)| a).collect();
        let candidates_2n: BTreeSet<u32> = program_2n.instrs().map(|(a, _)| a).collect();
        let (trace_n, _) = instr
            .function_trace(&program, &mut fresh_cpu(true, n), filter_entry, &candidates)
            .unwrap();
        let (trace_2n, _) = instr
            .function_trace(&program_2n, &mut fresh_cpu(true, 2 * n), filter_entry_2n, &candidates_2n)
            .unwrap();
        // Fixed prologue + 7 instructions per iteration in both runs.
        let per_iter = (trace_2n.len() - trace_n.len()) as u32 / n;
        prop_assert!((6..=8).contains(&per_iter), "unexpected per-iteration cost {per_iter}");
    }
}
