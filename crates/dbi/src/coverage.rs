//! Basic-block code coverage collection (paper §3.1).
//!
//! Helium's first screening step records which static basic blocks execute in
//! a run *with* the target kernel and a run *without* it; the difference is a
//! small superset of the kernel code.

use helium_machine::program::Program;
use helium_machine::Cpu;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::InstrumentError;

/// Result of a coverage run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Leaders of all basic blocks that executed at least once.
    pub blocks: BTreeSet<u32>,
    /// Number of dynamic basic-block entries observed (not deduplicated).
    pub dynamic_block_entries: u64,
    /// Number of dynamic instructions executed.
    pub dynamic_instructions: u64,
}

impl CoverageReport {
    /// Number of distinct static basic blocks executed.
    pub fn static_block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks executed in `self` but not in `other`: the coverage difference
    /// that screens out code unrelated to the kernel.
    pub fn difference(&self, other: &CoverageReport) -> BTreeSet<u32> {
        self.blocks.difference(&other.blocks).copied().collect()
    }
}

/// Run the program to completion on `cpu`, collecting block coverage.
///
/// # Errors
/// Propagates interpreter errors and the step limit.
pub fn collect_coverage(
    program: &Program,
    cpu: &mut Cpu,
    max_steps: u64,
) -> Result<CoverageReport, InstrumentError> {
    let leaders = program.block_leaders();
    let mut report = CoverageReport::default();
    cpu.run(program, max_steps, |_, rec| {
        report.dynamic_instructions += 1;
        if leaders.contains(&rec.addr) {
            report.dynamic_block_entries += 1;
            report.blocks.insert(rec.addr);
        }
    })?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_machine::asm::Asm;
    use helium_machine::isa::{regs, Cond, Operand};

    fn branching_program() -> Program {
        let mut asm = Asm::new(0x1000);
        asm.cmp(regs::eax(), Operand::Imm(0));
        asm.jcc(Cond::Nz, "kernel");
        asm.mov(regs::ebx(), Operand::Imm(1));
        asm.halt();
        asm.label("kernel");
        asm.mov(regs::ebx(), Operand::Imm(2));
        asm.halt();
        let mut p = Program::new();
        p.add_module("m", asm.finish());
        p
    }

    #[test]
    fn coverage_difference_isolates_kernel_blocks() {
        let p = branching_program();
        let mut cpu_without = Cpu::new();
        cpu_without.pc = 0x1000;
        cpu_without.set_reg(helium_machine::Reg::Eax, 0);
        let without = collect_coverage(&p, &mut cpu_without, 10_000).unwrap();

        let mut cpu_with = Cpu::new();
        cpu_with.pc = 0x1000;
        cpu_with.set_reg(helium_machine::Reg::Eax, 1);
        let with = collect_coverage(&p, &mut cpu_with, 10_000).unwrap();

        let diff = with.difference(&without);
        // Only the "kernel" block differs.
        assert_eq!(diff.len(), 1);
        assert!(diff.contains(&0x1010));
        assert!(with.static_block_count() >= 2);
        assert!(with.dynamic_instructions >= 4);
    }
}
