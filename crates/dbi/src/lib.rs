//! # helium-dbi
//!
//! Dynamic binary instrumentation substrate for the Helium reproduction.
//!
//! The original Helium builds its dynamic analyses on DynamoRIO; this crate
//! plays that role for programs running on the [`helium_machine`] interpreter.
//! It produces exactly the data products the paper's pipeline consumes:
//!
//! * [`coverage`] — basic-block code coverage for coverage differencing
//!   (paper §3.1),
//! * [`profile`] — block execution counts, predecessors, call targets and a
//!   memory trace of the screened blocks (paper §3.1–§3.3),
//! * [`trace`] — full dynamic instruction traces of the filter function and
//!   page-granularity memory dumps (paper §4.1).
//!
//! The [`Instrumenter`] type bundles the three collectors behind a common
//! step budget so application drivers can run each of the five instrumented
//! executions the paper requires with one object.

#![warn(missing_docs)]

pub mod coverage;
pub mod profile;
pub mod trace;

pub use coverage::{collect_coverage, CoverageReport};
pub use profile::{collect_profile, MemTraceEntry, ProfileReport};
pub use trace::{capture_function_trace, InstructionTrace, MemoryDump};

use helium_machine::program::Program;
use helium_machine::{Cpu, CpuError};
use std::collections::BTreeSet;
use std::fmt;

/// Errors produced by the instrumentation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstrumentError {
    /// The underlying interpreter failed.
    Cpu(CpuError),
}

impl fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrumentError::Cpu(e) => write!(f, "instrumented execution failed: {e}"),
        }
    }
}

impl std::error::Error for InstrumentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InstrumentError::Cpu(e) => Some(e),
        }
    }
}

impl From<CpuError> for InstrumentError {
    fn from(e: CpuError) -> Self {
        InstrumentError::Cpu(e)
    }
}

/// Convenience façade over the three collectors with a shared step budget.
///
/// ```
/// use helium_dbi::Instrumenter;
/// let instr = Instrumenter::new().with_max_steps(1_000_000);
/// assert_eq!(instr.max_steps(), 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct Instrumenter {
    max_steps: u64,
}

impl Default for Instrumenter {
    fn default() -> Self {
        Instrumenter::new()
    }
}

impl Instrumenter {
    /// Default step budget for one instrumented execution.
    pub const DEFAULT_MAX_STEPS: u64 = 500_000_000;

    /// Create an instrumenter with the default step budget.
    pub fn new() -> Instrumenter {
        Instrumenter {
            max_steps: Self::DEFAULT_MAX_STEPS,
        }
    }

    /// Set the per-run step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Instrumenter {
        self.max_steps = max_steps;
        self
    }

    /// The configured per-run step budget.
    pub fn max_steps(&self) -> u64 {
        self.max_steps
    }

    /// Collect basic-block coverage of a full program run.
    ///
    /// # Errors
    /// Returns [`InstrumentError::Cpu`] if execution fails or exceeds the budget.
    pub fn coverage(
        &self,
        program: &Program,
        cpu: &mut Cpu,
    ) -> Result<CoverageReport, InstrumentError> {
        collect_coverage(program, cpu, self.max_steps)
    }

    /// Profile the given basic blocks over a full program run.
    ///
    /// # Errors
    /// Returns [`InstrumentError::Cpu`] if execution fails or exceeds the budget.
    pub fn profile(
        &self,
        program: &Program,
        cpu: &mut Cpu,
        instrument_blocks: &BTreeSet<u32>,
    ) -> Result<ProfileReport, InstrumentError> {
        collect_profile(program, cpu, instrument_blocks, self.max_steps)
    }

    /// Capture the instruction trace and memory dump of a filter function.
    ///
    /// # Errors
    /// Returns [`InstrumentError::Cpu`] if execution fails or exceeds the budget.
    pub fn function_trace(
        &self,
        program: &Program,
        cpu: &mut Cpu,
        function_entry: u32,
        candidate_instrs: &BTreeSet<u32>,
    ) -> Result<(InstructionTrace, MemoryDump), InstrumentError> {
        capture_function_trace(
            program,
            cpu,
            function_entry,
            candidate_instrs,
            self.max_steps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumenter_configuration() {
        let i = Instrumenter::new();
        assert_eq!(i.max_steps(), Instrumenter::DEFAULT_MAX_STEPS);
        let i = i.with_max_steps(42);
        assert_eq!(i.max_steps(), 42);
    }

    #[test]
    fn error_display_and_source() {
        let e = InstrumentError::Cpu(CpuError::StepLimit(5));
        assert!(e.to_string().contains("step limit"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
