//! Detailed profiling of the screened basic blocks (paper §3.1–§3.3).
//!
//! After coverage differencing, Helium instruments only the surviving blocks,
//! collecting execution counts, predecessor blocks and call targets (used to
//! build a dynamic control-flow graph) plus a memory trace of every access the
//! surviving blocks perform.

use helium_machine::isa::Width;
use helium_machine::program::Program;
use helium_machine::{Cpu, Reg};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use crate::InstrumentError;

/// One entry of the memory trace: which static instruction touched which
/// absolute address, at which width, and whether it was a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTraceEntry {
    /// Address of the static instruction performing the access.
    pub instr_addr: u32,
    /// Absolute data address accessed.
    pub addr: u32,
    /// Access width.
    pub width: Width,
    /// `true` for writes.
    pub is_write: bool,
}

/// Profile of the instrumented blocks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Execution count per basic-block leader.
    pub block_counts: BTreeMap<u32, u64>,
    /// Dynamic predecessors per basic-block leader.
    pub predecessors: BTreeMap<u32, BTreeSet<u32>>,
    /// Dynamic call targets per call-site instruction address.
    pub call_targets: BTreeMap<u32, BTreeSet<u32>>,
    /// Function entry (innermost active call target) observed for each block.
    pub block_function: BTreeMap<u32, u32>,
    /// Memory trace restricted to the instrumented blocks.
    pub memory_trace: Vec<MemTraceEntry>,
    /// Execution counts of individual static instructions in the blocks.
    pub instr_counts: BTreeMap<u32, u64>,
}

impl ProfileReport {
    /// The most frequently executed instrumented basic block.
    pub fn hottest_block(&self) -> Option<(u32, u64)> {
        self.block_counts
            .iter()
            .map(|(a, c)| (*a, *c))
            .max_by_key(|(_, c)| *c)
    }
}

/// Run the program and profile the given basic blocks.
///
/// `instrument_blocks` are basic-block leader addresses (typically the
/// coverage difference); memory accesses and counts are only recorded for
/// instructions that belong to one of these blocks. `initial_function` is the
/// function entry attributed to code executing before any call.
///
/// # Errors
/// Propagates interpreter errors and the step limit.
pub fn collect_profile(
    program: &Program,
    cpu: &mut Cpu,
    instrument_blocks: &BTreeSet<u32>,
    max_steps: u64,
) -> Result<ProfileReport, InstrumentError> {
    let leaders = program.block_leaders();
    let mut report = ProfileReport::default();
    let mut current_block: Option<u32> = None;
    let mut prev_instrumented_block: Option<u32> = None;
    // Stack of active function entries, maintained from dynamic call/ret events.
    let mut call_stack: Vec<u32> = vec![cpu.pc];
    cpu.run(program, max_steps, |_, rec| {
        if leaders.contains(&rec.addr) {
            current_block = Some(rec.addr);
            if instrument_blocks.contains(&rec.addr) {
                *report.block_counts.entry(rec.addr).or_insert(0) += 1;
                if let Some(prev) = prev_instrumented_block {
                    if prev != rec.addr {
                        report
                            .predecessors
                            .entry(rec.addr)
                            .or_default()
                            .insert(prev);
                    }
                }
                report
                    .block_function
                    .entry(rec.addr)
                    .or_insert_with(|| *call_stack.last().expect("call stack never empty"));
            }
        }
        let in_scope = current_block
            .map(|b| instrument_blocks.contains(&b))
            .unwrap_or(false);
        if in_scope {
            prev_instrumented_block = current_block;
            *report.instr_counts.entry(rec.addr).or_insert(0) += 1;
            for m in &rec.mem {
                // Ignore pure stack push/pop traffic from call/ret bookkeeping:
                // like the paper we still record it (it is filtered later by
                // region size), except for the return-address slot which is an
                // artifact of the ISA rather than of the kernel.
                report.memory_trace.push(MemTraceEntry {
                    instr_addr: rec.addr,
                    addr: m.addr,
                    width: m.width,
                    is_write: m.is_write,
                });
            }
        }
        if let Some(target) = rec.call_target {
            if in_scope {
                report
                    .call_targets
                    .entry(rec.addr)
                    .or_default()
                    .insert(target);
            }
            call_stack.push(target);
        }
        if rec.is_ret {
            call_stack.pop();
            if call_stack.is_empty() {
                call_stack.push(rec.next_pc);
            }
        }
        let _ = cpu_unused(rec.addr, Reg::Eax);
    })?;
    Ok(report)
}

// Small helper to keep the closure's borrow of `cpu` read-only friendly in
// future extensions; compiled away entirely.
#[inline]
fn cpu_unused(_addr: u32, _r: Reg) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_machine::asm::Asm;
    use helium_machine::isa::{regs, Cond, MemRef, Operand};

    /// A program with a small "kernel" function called in a loop that writes
    /// to a buffer at 0x9000.
    fn kernel_program() -> (Program, u32) {
        let mut asm = Asm::new(0x1000);
        // main: for i in 0..4 { kernel(i) }
        asm.mov(regs::esi(), Operand::Imm(0));
        asm.label("loop");
        asm.call("kernel");
        asm.inc(regs::esi());
        asm.cmp(regs::esi(), Operand::Imm(4));
        asm.jcc(Cond::B, "loop");
        asm.halt();
        asm.label("kernel");
        asm.mov(regs::ebx(), Operand::Imm(0x9000));
        asm.mov(
            Operand::Mem(MemRef::sib(
                helium_machine::Reg::Ebx,
                helium_machine::Reg::Esi,
                1,
                0,
                Width::B1,
            )),
            Operand::Imm(7),
        );
        asm.ret();
        let kernel_entry = asm.label_addr("kernel").unwrap();
        let mut p = Program::new();
        p.add_module("m", asm.finish());
        (p, kernel_entry)
    }

    #[test]
    fn profile_counts_and_memory_trace() {
        let (p, kernel_entry) = kernel_program();
        let all_blocks: BTreeSet<u32> = p.block_leaders();
        let mut cpu = Cpu::new();
        cpu.pc = 0x1000;
        let report = collect_profile(&p, &mut cpu, &all_blocks, 100_000).unwrap();
        // The kernel block executed four times.
        assert_eq!(report.block_counts.get(&kernel_entry), Some(&4));
        // Four one-byte writes to 0x9000..0x9004 were recorded.
        let writes: Vec<_> = report
            .memory_trace
            .iter()
            .filter(|e| e.is_write && e.width == Width::B1)
            .collect();
        assert_eq!(writes.len(), 4);
        assert_eq!(writes[0].addr, 0x9000);
        assert_eq!(writes[3].addr, 0x9003);
        // The kernel block is attributed to the kernel function entry.
        assert_eq!(
            report.block_function.get(&kernel_entry),
            Some(&kernel_entry)
        );
        assert!(report.hottest_block().is_some());
    }

    #[test]
    fn uninstrumented_blocks_are_ignored() {
        let (p, kernel_entry) = kernel_program();
        // Instrument nothing: empty report.
        let mut cpu = Cpu::new();
        cpu.pc = 0x1000;
        let report = collect_profile(&p, &mut cpu, &BTreeSet::new(), 100_000).unwrap();
        assert!(report.block_counts.is_empty());
        assert!(report.memory_trace.is_empty());
        // Instrument only the kernel block.
        let mut only_kernel = BTreeSet::new();
        only_kernel.insert(kernel_entry);
        let mut cpu = Cpu::new();
        cpu.pc = 0x1000;
        let report = collect_profile(&p, &mut cpu, &only_kernel, 100_000).unwrap();
        assert_eq!(report.block_counts.len(), 1);
    }
}
