//! Instruction trace capture and memory dump of the filter function
//! (paper §4.1).
//!
//! During expression extraction Helium instruments only the filter function
//! chosen during code localization, recording every dynamic instruction
//! executed between the function's entry and its exit (including callees),
//! along with a page-granularity dump of the memory that candidate
//! instructions access.

use helium_machine::mem::PAGE_SIZE;
use helium_machine::program::Program;
use helium_machine::{Cpu, StepRecord};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use crate::InstrumentError;

/// A page-granularity memory dump.
///
/// Pages read by candidate instructions are captured when first read (so they
/// hold pre-kernel data); pages they write are captured at filter-function
/// exit (so they hold the final output).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemoryDump {
    /// Pages captured at first read, keyed by page base address.
    pub read_pages: BTreeMap<u32, Vec<u8>>,
    /// Pages captured at function exit, keyed by page base address.
    pub written_pages: BTreeMap<u32, Vec<u8>>,
}

impl MemoryDump {
    /// Total size of the dump in bytes.
    pub fn size_bytes(&self) -> usize {
        (self.read_pages.len() + self.written_pages.len()) * PAGE_SIZE as usize
    }

    fn search_in(pages: &BTreeMap<u32, Vec<u8>>, needle: &[u8]) -> Option<u32> {
        if needle.is_empty() {
            return None;
        }
        // Contiguous runs of pages are searched together so data spanning a
        // page boundary is still found.
        let mut run_start: Option<u32> = None;
        let mut run: Vec<u8> = Vec::new();
        let mut result = None;
        let flush = |start: Option<u32>, data: &mut Vec<u8>, result: &mut Option<u32>| {
            if let Some(base) = start {
                if result.is_none() {
                    if let Some(off) = find_subsequence(data, needle) {
                        *result = Some(base + off as u32);
                    }
                }
            }
            data.clear();
        };
        let mut expected_next = None;
        for (base, data) in pages {
            if Some(*base) != expected_next {
                flush(run_start, &mut run, &mut result);
                run_start = Some(*base);
            } else if run_start.is_none() {
                run_start = Some(*base);
            }
            run.extend_from_slice(data);
            expected_next = Some(base + PAGE_SIZE);
        }
        flush(run_start, &mut run, &mut result);
        result
    }

    /// Search the read pages for a byte pattern (used to locate known input
    /// data), returning the absolute address of the first match.
    pub fn find_in_read_pages(&self, needle: &[u8]) -> Option<u32> {
        Self::search_in(&self.read_pages, needle)
    }

    /// Search the written pages for a byte pattern (used to locate known
    /// output data), returning the absolute address of the first match.
    pub fn find_in_written_pages(&self, needle: &[u8]) -> Option<u32> {
        Self::search_in(&self.written_pages, needle)
    }

    /// Read a byte from the dump, preferring the written snapshot.
    pub fn read_u8(&self, addr: u32) -> Option<u8> {
        let page = addr / PAGE_SIZE * PAGE_SIZE;
        let off = (addr - page) as usize;
        self.written_pages
            .get(&page)
            .or_else(|| self.read_pages.get(&page))
            .map(|p| p[off])
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.len() > haystack.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// The dynamic instruction trace of all executions of the filter function.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstructionTrace {
    /// Every dynamic instruction executed inside the filter function
    /// (including callees), over all invocations, in execution order.
    pub records: Vec<StepRecord>,
    /// `(start, end)` index ranges into `records`, one per invocation.
    pub invocations: Vec<(usize, usize)>,
}

impl InstructionTrace {
    /// Number of dynamic instructions captured.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct static instructions observed in the trace.
    pub fn static_instructions(&self) -> BTreeSet<u32> {
        self.records.iter().map(|r| r.addr).collect()
    }
}

/// Capture the instruction trace of the function entered at `function_entry`
/// and a page-granularity dump of memory accessed by `candidate_instrs`
/// (static instruction addresses chosen during code localization).
///
/// The program is run to completion; every invocation of the function
/// contributes to the trace and the dump, as in the paper.
///
/// # Errors
/// Propagates interpreter errors and the step limit.
pub fn capture_function_trace(
    program: &Program,
    cpu: &mut Cpu,
    function_entry: u32,
    candidate_instrs: &BTreeSet<u32>,
    max_steps: u64,
) -> Result<(InstructionTrace, MemoryDump), InstrumentError> {
    let mut trace = InstructionTrace::default();
    let mut dump = MemoryDump::default();
    // Depth of nested calls inside the filter function; `None` = not inside.
    let mut depth: Option<i64> = None;
    let mut invocation_start = 0usize;
    let mut written_pages: BTreeSet<u32> = BTreeSet::new();

    cpu.run(program, max_steps, |cpu_ref, rec| {
        let entering = depth.is_none() && rec.addr == function_entry;
        if entering {
            depth = Some(0);
            invocation_start = trace.records.len();
        }
        if let Some(d) = depth.as_mut() {
            // Record the dynamic instruction.
            trace.records.push(rec.clone());
            // Memory dump handling for candidate instructions.
            if candidate_instrs.contains(&rec.addr) {
                for m in &rec.mem {
                    let first_page = m.addr / PAGE_SIZE;
                    let last_page = (m.addr + m.width.bytes() - 1) / PAGE_SIZE;
                    for page in first_page..=last_page {
                        let base = page * PAGE_SIZE;
                        if m.is_write {
                            written_pages.insert(base);
                        } else if !dump.read_pages.contains_key(&base) {
                            let (b, data) = cpu_ref.mem.dump_page(base);
                            dump.read_pages.insert(b, data);
                        }
                    }
                }
            }
            if rec.call_target.is_some() {
                *d += 1;
            }
            if rec.is_ret {
                *d -= 1;
                if *d < 0 {
                    // The filter function returned: close the invocation and
                    // dump written pages with their final contents.
                    depth = None;
                    trace
                        .invocations
                        .push((invocation_start, trace.records.len()));
                    for base in &written_pages {
                        let (b, data) = cpu_ref.mem.dump_page(*base);
                        dump.written_pages.insert(b, data);
                    }
                    written_pages.clear();
                }
            }
        }
    })?;
    // If the program halted while still inside the function, close the trace.
    if depth.is_some() {
        trace
            .invocations
            .push((invocation_start, trace.records.len()));
        for base in &written_pages {
            let (b, data) = cpu.mem.dump_page(*base);
            dump.written_pages.insert(b, data);
        }
    }
    Ok((trace, dump))
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_machine::asm::Asm;
    use helium_machine::isa::{regs, Cond, MemRef, Operand, Width};
    use helium_machine::Reg;

    /// main calls `copy` twice; `copy` copies 8 bytes from 0x9000 to 0xA000.
    fn copy_program() -> (Program, u32) {
        let mut asm = Asm::new(0x1000);
        asm.call("copy");
        asm.call("copy");
        asm.halt();
        asm.label("copy");
        asm.mov(regs::esi(), Operand::Imm(0));
        asm.label("loop");
        asm.movzx(
            regs::eax(),
            Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, 0x9000, Width::B1)),
        );
        asm.mov(
            Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, 0xA000, Width::B1)),
            regs::al(),
        );
        asm.inc(regs::esi());
        asm.cmp(regs::esi(), Operand::Imm(8));
        asm.jcc(Cond::B, "loop");
        asm.ret();
        let entry = asm.label_addr("copy").unwrap();
        let mut p = Program::new();
        p.add_module("m", asm.finish());
        (p, entry)
    }

    #[test]
    fn trace_covers_all_invocations() {
        let (p, entry) = copy_program();
        let mut cpu = Cpu::new();
        cpu.pc = 0x1000;
        for i in 0..8u8 {
            cpu.mem.write_u8(0x9000 + i as u32, i + 1);
        }
        let candidates: BTreeSet<u32> = p.instrs().map(|(a, _)| a).collect();
        let (trace, dump) =
            capture_function_trace(&p, &mut cpu, entry, &candidates, 1_000_000).unwrap();
        assert_eq!(trace.invocations.len(), 2);
        assert!(trace.len() > 16);
        assert!(!trace.is_empty());
        assert!(trace.static_instructions().contains(&entry));
        // The input and output pages are in the dump.
        assert!(dump.read_pages.contains_key(&0x9000));
        assert!(dump.written_pages.contains_key(&0xA000));
        assert!(dump.size_bytes() >= 2 * PAGE_SIZE as usize);
    }

    #[test]
    fn dump_search_finds_known_data() {
        let (p, entry) = copy_program();
        let mut cpu = Cpu::new();
        cpu.pc = 0x1000;
        let pattern: Vec<u8> = (10..18).collect();
        cpu.mem.write_bytes(0x9000, &pattern);
        let candidates: BTreeSet<u32> = p.instrs().map(|(a, _)| a).collect();
        let (_, dump) =
            capture_function_trace(&p, &mut cpu, entry, &candidates, 1_000_000).unwrap();
        assert_eq!(dump.find_in_read_pages(&pattern), Some(0x9000));
        assert_eq!(dump.find_in_written_pages(&pattern), Some(0xA000));
        assert_eq!(dump.read_u8(0xA000), Some(10));
        assert_eq!(dump.find_in_read_pages(&[99, 98, 97]), None);
    }
}
