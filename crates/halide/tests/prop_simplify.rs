//! Property tests of the expression simplifier: simplification never changes
//! the values a pipeline computes and never grows the expression.

use helium_halide::prelude::*;
use helium_halide::simplify::simplify;
use proptest::prelude::*;

/// A strategy producing random expressions over a 2-D `UInt8` image, the pure
/// variables `x_0`/`x_1`, and small integer constants. The expression shapes
/// mirror what the lifter emits: widening casts around image loads, integer
/// arithmetic, shifts by small constants, and selects over comparisons.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-8i64..9).prop_map(Expr::int),
        Just(Expr::var("x_0")),
        Just(Expr::var("x_1")),
        (-2i64..3, -2i64..3).prop_map(|(dx, dy)| Expr::cast(
            ScalarType::UInt32,
            Expr::Image(
                "input_1".into(),
                vec![
                    Expr::add(Expr::var("x_0"), Expr::int(dx + 2)),
                    Expr::add(Expr::var("x_1"), Expr::int(dy + 2)),
                ],
            )
        )),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), (-4i64..5)).prop_map(|(a, c)| Expr::mul(a, Expr::int(c))),
            (inner.clone(), (0i64..4)).prop_map(|(a, s)| Expr::bin(BinOp::Shr, a, Expr::int(s))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Min, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Max, a, b)),
            (inner.clone(), inner.clone(), inner.clone(), (-64i64..65))
                .prop_map(|(c, t, f, k)| Expr::select(Expr::cmp(CmpOp::Lt, c, Expr::int(k)), t, f)),
            inner
                .clone()
                .prop_map(|a| Expr::cast(ScalarType::UInt16, Expr::cast(ScalarType::UInt32, a))),
        ]
    })
}

fn pipeline_for(value: Expr) -> Pipeline {
    Pipeline::new(
        Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::Int32,
            Expr::cast(ScalarType::Int32, value),
        ),
        vec![ImageParam::new("input_1", ScalarType::UInt8, 2)],
    )
}

fn test_image(w: usize, h: usize, seed: u64) -> Buffer {
    let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
    let mut state = seed | 1;
    for y in 0..h {
        for x in 0..w {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.set(
                &[x as i64, y as i64],
                Value::Int(((state >> 33) % 256) as i64),
            );
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Simplifying the output expression of a pipeline never changes any value
    /// it computes, and never increases the node count.
    #[test]
    fn simplification_preserves_realized_values(value in expr_strategy(), seed in any::<u64>()) {
        let original = pipeline_for(value.clone());
        let simplified = {
            let mut p = original.clone();
            let func = p.funcs.get_mut("out").expect("output func");
            func.pure_def = func.pure_def.as_ref().map(simplify);
            p
        };

        let before = original.output_func().pure_def.as_ref().expect("def").node_count();
        let after = simplified.output_func().pure_def.as_ref().expect("def").node_count();
        prop_assert!(after <= before, "simplification grew the expression ({before} -> {after})");

        let input = test_image(12, 10, seed);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let a = Realizer::new(Schedule::naive()).realize(&original, &[8, 6], &inputs).unwrap();
        let b = Realizer::new(Schedule::naive()).realize(&simplified, &[8, 6], &inputs).unwrap();
        prop_assert_eq!(a, b, "simplification changed realized values");
    }

    /// Simplification is idempotent: a second pass makes no further changes.
    #[test]
    fn simplification_is_idempotent(value in expr_strategy()) {
        let once = simplify(&value);
        let twice = simplify(&once);
        prop_assert_eq!(once, twice);
    }
}
