//! Property-based tests for the miniature Halide substrate: buffers, typed
//! expression evaluation, bounds inference, and — most importantly — the
//! guarantee that re-scheduling a pipeline (tiling, parallelizing,
//! vectorizing, fusing) never changes the values it computes. That invariant
//! is what lets the lifted kernels be autotuned safely.

use helium_halide::bounds::{expr_interval, Interval};
use helium_halide::prelude::*;
use helium_halide::{autotune_best, TuneConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Buffers
// ---------------------------------------------------------------------------

proptest! {
    /// Values written to a buffer are read back unchanged at the same index,
    /// for every supported element type.
    #[test]
    fn buffer_set_get_roundtrip(
        w in 1usize..24,
        h in 1usize..16,
        xs in prop::collection::vec((0usize..24, 0usize..16, any::<u8>()), 1..20),
    ) {
        let mut b8 = Buffer::new(ScalarType::UInt8, &[w, h]);
        let mut b32 = Buffer::new(ScalarType::Int32, &[w, h]);
        let mut bf = Buffer::new(ScalarType::Float64, &[w, h]);
        for &(x, y, v) in &xs {
            let (x, y) = (x % w, y % h);
            b8.set(&[x as i64, y as i64], Value::Int(v as i64));
            b32.set(&[x as i64, y as i64], Value::Int(v as i64 * 3 - 100));
            bf.set(&[x as i64, y as i64], Value::Float(v as f64 / 7.0));
        }
        for &(x, y, v) in xs.iter().rev() {
            let (x, y) = (x % w, y % h);
            // Later writes win; only check coordinates whose last write is this entry.
            let last = xs.iter().rposition(|&(a, b2, _)| (a % w, b2 % h) == (x, y)).unwrap();
            let (_, _, lv) = xs[last];
            let _ = v;
            prop_assert_eq!(b8.get(&[x as i64, y as i64]), Value::Int(lv as i64));
            prop_assert_eq!(b32.get(&[x as i64, y as i64]), Value::Int(lv as i64 * 3 - 100));
            prop_assert_eq!(bf.get(&[x as i64, y as i64]), Value::Float(lv as f64 / 7.0));
        }
    }

    /// Buffer geometry: length is the product of the extents, strides are
    /// row-major (innermost first), and `coords()` enumerates exactly `len`
    /// distinct coordinates, each in range.
    #[test]
    fn buffer_geometry_is_consistent(extents in prop::collection::vec(1usize..8, 1..4)) {
        let b = Buffer::new(ScalarType::UInt8, &extents);
        let expected_len: usize = extents.iter().product();
        prop_assert_eq!(b.len(), expected_len);
        prop_assert_eq!(b.dims(), extents.len());
        prop_assert_eq!(b.bytes().len(), expected_len * ScalarType::UInt8.bytes());
        let coords: Vec<Vec<i64>> = b.coords().collect();
        prop_assert_eq!(coords.len(), expected_len);
        let unique: std::collections::BTreeSet<Vec<i64>> = coords.iter().cloned().collect();
        prop_assert_eq!(unique.len(), expected_len, "coordinates must be distinct");
        for c in &coords {
            for (d, &i) in c.iter().enumerate() {
                prop_assert!(i >= 0 && (i as usize) < extents[d]);
            }
        }
    }

    /// `fill_from_u8` followed by element reads sees exactly the source bytes
    /// in linear (row-major) order.
    #[test]
    fn buffer_fill_from_u8_matches_linear_order(w in 1usize..16, h in 1usize..12) {
        let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
        let src: Vec<u8> = (0..w * h).map(|i| (i * 7 % 251) as u8).collect();
        b.fill_from_u8(&src);
        for (i, &v) in src.iter().enumerate() {
            prop_assert_eq!(b.get_linear(i), Value::Int(v as i64));
        }
        prop_assert_eq!(b.as_u8_slice(), &src[..]);
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation and structure
// ---------------------------------------------------------------------------

proptest! {
    /// Integer binary-operator evaluation agrees with the corresponding Rust
    /// operators for the arithmetic subset.
    #[test]
    fn eval_binop_matches_rust(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        use helium_halide::expr::eval_binop;
        prop_assert_eq!(eval_binop(BinOp::Add, Value::Int(a), Value::Int(b)).as_i64(), a + b);
        prop_assert_eq!(eval_binop(BinOp::Sub, Value::Int(a), Value::Int(b)).as_i64(), a - b);
        prop_assert_eq!(eval_binop(BinOp::Mul, Value::Int(a), Value::Int(b)).as_i64(), a * b);
        prop_assert_eq!(eval_binop(BinOp::Min, Value::Int(a), Value::Int(b)).as_i64(), a.min(b));
        prop_assert_eq!(eval_binop(BinOp::Max, Value::Int(a), Value::Int(b)).as_i64(), a.max(b));
    }

    /// Commutative operators really are commutative under evaluation, and the
    /// `is_commutative` classification matches.
    #[test]
    fn commutative_ops_commute(a in -1000i64..1000, b in -1000i64..1000) {
        use helium_halide::expr::eval_binop;
        for op in [BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max, BinOp::And, BinOp::Or, BinOp::Xor] {
            let (aa, bb) = (a.unsigned_abs() as i64, b.unsigned_abs() as i64);
            prop_assert_eq!(
                eval_binop(op, Value::Int(aa), Value::Int(bb)).as_i64(),
                eval_binop(op, Value::Int(bb), Value::Int(aa)).as_i64(),
                "{:?} must commute", op
            );
        }
        prop_assert!(BinOp::Add.is_commutative());
        prop_assert!(BinOp::Mul.is_commutative());
        prop_assert!(!BinOp::Sub.is_commutative());
    }

    /// Comparison evaluation agrees with Rust comparisons and always yields a
    /// boolean (0/1) value.
    #[test]
    fn eval_cmp_matches_rust(a in -1000i64..1000, b in -1000i64..1000) {
        use helium_halide::expr::eval_cmp;
        let cases = [
            (CmpOp::Lt, a < b),
            (CmpOp::Le, a <= b),
            (CmpOp::Gt, a > b),
            (CmpOp::Ge, a >= b),
            (CmpOp::Eq, a == b),
            (CmpOp::Ne, a != b),
        ];
        for (op, expect) in cases {
            let v = eval_cmp(op, Value::Int(a), Value::Int(b));
            prop_assert_eq!(v.is_true(), expect, "{:?}", op);
            prop_assert!(v.as_i64() == 0 || v.as_i64() == 1);
        }
    }

    /// Casting through the narrow unsigned types truncates exactly like the
    /// corresponding Rust `as` conversions.
    #[test]
    fn value_casts_truncate_like_rust(v in any::<i64>()) {
        prop_assert_eq!(Value::Int(v).cast(ScalarType::UInt8).as_i64(), v as u8 as i64);
        prop_assert_eq!(Value::Int(v).cast(ScalarType::UInt16).as_i64(), v as u16 as i64);
        prop_assert_eq!(Value::Int(v).cast(ScalarType::Int32).as_i64(), v as i32 as i64);
    }

    /// Variable substitution replaces every occurrence of the substituted
    /// variables and leaves the rest of the expression intact.
    #[test]
    fn substitution_replaces_all_occurrences(dx in -5i64..6, dy in -5i64..6) {
        let e = Expr::add(
            Expr::mul(Expr::var("x_0"), Expr::int(3)),
            Expr::add(Expr::var("x_1"), Expr::var("x_0")),
        );
        let substituted = e.substitute(&|name| {
            if name == "x_0" {
                Some(Expr::add(Expr::var("x_0"), Expr::int(dx)))
            } else if name == "x_1" {
                Some(Expr::int(dy))
            } else {
                None
            }
        });
        let printed = substituted.to_string();
        prop_assert!(!printed.contains("x_1"), "x_1 must be gone: {printed}");
        prop_assert!(substituted.node_count() >= e.node_count());
    }
}

// ---------------------------------------------------------------------------
// Bounds inference
// ---------------------------------------------------------------------------

proptest! {
    /// The inferred interval of an affine expression contains the value the
    /// expression actually takes for every in-bounds assignment of the
    /// variables — the soundness property bounds inference needs so producers
    /// are never sized too small.
    #[test]
    fn expr_interval_is_sound_for_affine_exprs(
        a in -4i64..5,
        b in -4i64..5,
        c in -8i64..9,
        x_max in 1i64..32,
        y_max in 1i64..32,
        x in 0i64..32,
        y in 0i64..32,
    ) {
        let x = x % (x_max + 1);
        let y = y % (y_max + 1);
        let e = Expr::add(
            Expr::add(
                Expr::mul(Expr::int(a), Expr::var("x_0")),
                Expr::mul(Expr::int(b), Expr::var("x_1")),
            ),
            Expr::int(c),
        );
        let mut bounds = BTreeMap::new();
        bounds.insert("x_0".to_string(), Interval::new(0, x_max));
        bounds.insert("x_1".to_string(), Interval::new(0, y_max));
        let params = BTreeMap::new();
        let interval = expr_interval(&e, &bounds, &params);
        let actual = a * x + b * y + c;
        prop_assert!(
            interval.min <= actual && actual <= interval.max,
            "value {actual} outside inferred interval [{}, {}]",
            interval.min,
            interval.max
        );
    }

    /// Interval union is commutative, idempotent and contains both operands.
    #[test]
    fn interval_union_properties(a in -100i64..100, b in -100i64..100, c in -100i64..100, d in -100i64..100) {
        let i1 = Interval::new(a.min(b), a.max(b));
        let i2 = Interval::new(c.min(d), c.max(d));
        let u = i1.union(i2);
        prop_assert_eq!(u, i2.union(i1));
        prop_assert_eq!(i1.union(i1), i1);
        prop_assert!(u.min <= i1.min && u.max >= i1.max);
        prop_assert!(u.min <= i2.min && u.max >= i2.max);
        prop_assert_eq!(u.extent(), u.max - u.min + 1);
    }

    /// Select expressions are bounded by the union of their branches.
    #[test]
    fn select_interval_covers_both_branches(t in -50i64..50, e in -50i64..50) {
        let expr = Expr::select(
            Expr::cmp(CmpOp::Lt, Expr::var("x_0"), Expr::int(10)),
            Expr::int(t),
            Expr::int(e),
        );
        let mut bounds = BTreeMap::new();
        bounds.insert("x_0".to_string(), Interval::new(0, 20));
        let interval = expr_interval(&expr, &bounds, &BTreeMap::new());
        prop_assert!(interval.min <= t.min(e));
        prop_assert!(interval.max >= t.max(e));
    }
}

// ---------------------------------------------------------------------------
// Schedule invariance of realization
// ---------------------------------------------------------------------------

/// A 3×1 blur with a downcast, shaped like the paper's running example.
fn blur_pipeline() -> Pipeline {
    let x = Expr::var("x_0");
    let y = Expr::var("x_1");
    let at = |dx: i64, dy: i64| {
        Expr::cast(
            ScalarType::UInt32,
            Expr::Image(
                "input_1".into(),
                vec![
                    Expr::add(x.clone(), Expr::int(dx)),
                    Expr::add(y.clone(), Expr::int(dy)),
                ],
            ),
        )
    };
    let sum = Expr::add(
        Expr::add(Expr::int(2), Expr::mul(Expr::int(2), at(1, 1))),
        Expr::add(at(0, 1), at(2, 1)),
    );
    let value = Expr::cast(
        ScalarType::UInt8,
        Expr::bin(
            BinOp::Shr,
            sum,
            Expr::cast(ScalarType::UInt32, Expr::int(2)),
        ),
    );
    Pipeline::new(
        Func::pure("output_1", &["x_0", "x_1"], ScalarType::UInt8, value),
        vec![ImageParam::new("input_1", ScalarType::UInt8, 2)],
    )
}

/// A two-stage pipeline (brighten then scale) exercising inlining/compute-root.
fn two_stage_pipeline() -> Pipeline {
    let x = Expr::var("x_0");
    let y = Expr::var("x_1");
    let bright = Func::pure(
        "bright",
        &["x_0", "x_1"],
        ScalarType::UInt16,
        Expr::add(
            Expr::cast(
                ScalarType::UInt16,
                Expr::Image("input_1".into(), vec![x.clone(), y.clone()]),
            ),
            Expr::int(17),
        ),
    );
    let out = Func::pure(
        "output_1",
        &["x_0", "x_1"],
        ScalarType::UInt8,
        Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Min,
                Expr::mul(Expr::FuncRef("bright".into(), vec![x, y]), Expr::int(2)),
                Expr::int(255),
            ),
        ),
    );
    Pipeline::new(out, vec![ImageParam::new("input_1", ScalarType::UInt8, 2)]).with_func(bright)
}

fn pseudo_random_image(w: usize, h: usize, seed: u64) -> Buffer {
    let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
    let mut state = seed | 1;
    for y in 0..h {
        for x in 0..w {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.set(
                &[x as i64, y as i64],
                Value::Int(((state >> 33) % 256) as i64),
            );
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Re-scheduling never changes the computed values: naive, tiled,
    /// parallel, vectorized and combined schedules all produce the same
    /// output buffer for the same pipeline and inputs.
    #[test]
    fn schedules_do_not_change_results(
        w in 6usize..40,
        h in 6usize..28,
        seed in any::<u64>(),
        tile_w in 2usize..16,
        tile_h in 2usize..16,
        vector in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        let p = blur_pipeline();
        let input = pseudo_random_image(w + 2, h + 2, seed);
        let inputs = RealizeInputs::new().with_image("input_1", &input);

        let baseline = Realizer::new(Schedule::naive()).realize(&p, &[w, h], &inputs).unwrap();
        let schedules = vec![
            Schedule::naive().with_tile(Some((tile_w, tile_h))),
            Schedule::naive().with_parallel(true).with_threads(3),
            Schedule::naive().with_vector_width(vector),
            Schedule::stencil_default(),
            Schedule::stencil_default()
                .with_tile(Some((tile_w, tile_h)))
                .with_parallel(true)
                .with_vector_width(vector),
        ];
        for s in schedules {
            let label = s.to_string();
            let out = Realizer::new(s).realize(&p, &[w, h], &inputs).unwrap();
            prop_assert_eq!(&out, &baseline, "schedule {} changed the result", label);
        }
    }

    /// Inlining a producer versus computing it at root never changes results,
    /// for any tiling of the consumer.
    #[test]
    fn compute_root_is_value_preserving(
        w in 4usize..32,
        h in 4usize..24,
        seed in any::<u64>(),
        tile in 2usize..10,
    ) {
        let p = two_stage_pipeline();
        let input = pseudo_random_image(w, h, seed);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let inlined = Realizer::new(Schedule::naive()).realize(&p, &[w, h], &inputs).unwrap();
        let rooted = Realizer::new(
            Schedule::naive().with_compute_root("bright").with_tile(Some((tile, tile))),
        )
        .realize(&p, &[w, h], &inputs)
        .unwrap();
        prop_assert_eq!(inlined, rooted);
    }

    /// Fusing two pointwise pipelines with `compose_after` computes the same
    /// values as applying them one after the other through an intermediate
    /// buffer.
    #[test]
    fn fusion_matches_sequential_application(w in 4usize..32, h in 4usize..20, seed in any::<u64>()) {
        // Stage 1: invert. Stage 2: halve.
        let invert = Pipeline::new(
            Func::pure(
                "inverted",
                &["x_0", "x_1"],
                ScalarType::UInt8,
                Expr::cast(
                    ScalarType::UInt8,
                    Expr::bin(
                        BinOp::Sub,
                        Expr::int(255),
                        Expr::Image("input_1".into(), vec![Expr::var("x_0"), Expr::var("x_1")]),
                    ),
                ),
            ),
            vec![ImageParam::new("input_1", ScalarType::UInt8, 2)],
        );
        let halve = Pipeline::new(
            Func::pure(
                "halved",
                &["x_0", "x_1"],
                ScalarType::UInt8,
                Expr::cast(
                    ScalarType::UInt8,
                    Expr::bin(
                        BinOp::Shr,
                        Expr::Image("stage_in".into(), vec![Expr::var("x_0"), Expr::var("x_1")]),
                        Expr::uint(1),
                    ),
                ),
            ),
            vec![ImageParam::new("stage_in", ScalarType::UInt8, 2)],
        );

        let input = pseudo_random_image(w, h, seed);

        // Sequential: realize invert, feed its output to halve.
        let inputs1 = RealizeInputs::new().with_image("input_1", &input);
        let mid = Realizer::default().realize(&invert, &[w, h], &inputs1).unwrap();
        let inputs2 = RealizeInputs::new().with_image("stage_in", &mid);
        let sequential = Realizer::default().realize(&halve, &[w, h], &inputs2).unwrap();

        // Fused: halve ∘ invert as a single pipeline.
        let fused = halve.compose_after(&invert, "stage_in");
        prop_assert!(fused.images.contains_key("input_1"));
        prop_assert!(!fused.images.contains_key("stage_in"));
        let out = Realizer::new(Schedule::stencil_default())
            .realize(&fused, &[w, h], &RealizeInputs::new().with_image("input_1", &input))
            .unwrap();
        prop_assert_eq!(out, sequential);
    }
}

// ---------------------------------------------------------------------------
// Autotuning and code generation
// ---------------------------------------------------------------------------

/// The autotuner only ever returns schedules that preserve the naive result
/// (correctness is part of its acceptance criterion), and its best schedule is
/// reported with a positive measured time.
#[test]
fn autotuned_schedule_preserves_results() {
    let p = blur_pipeline();
    let input = pseudo_random_image(66, 50, 7);
    let inputs = RealizeInputs::new().with_image("input_1", &input);
    let baseline = Realizer::new(Schedule::naive())
        .realize(&p, &[64, 48], &inputs)
        .unwrap();

    let config = TuneConfig {
        max_candidates: 6,
        budget: std::time::Duration::from_secs(5),
        ..TuneConfig::default()
    };
    let best = autotune_best(&p, &[64, 48], &inputs, &config).expect("autotuning succeeds");
    let tuned = Realizer::new(best).realize(&p, &[64, 48], &inputs).unwrap();
    assert_eq!(tuned, baseline);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated Halide C++ source always declares every image parameter, the
    /// output function, and the `compile_to_file` call, and mentions every
    /// pure variable of the output func.
    #[test]
    fn generated_source_mentions_all_interface_elements(emit_main in any::<bool>()) {
        let p = blur_pipeline();
        let options = CodegenOptions { output_name: "halide_out_test".into(), emit_main };
        let src = generate_halide_source(&p, &options);
        prop_assert!(src.contains("ImageParam"));
        prop_assert!(src.contains("input_1"));
        prop_assert!(src.contains("output_1"));
        prop_assert!(src.contains("Var x_0"));
        prop_assert!(src.contains("Var x_1"));
        if emit_main {
            prop_assert!(src.contains("compile_to_file"));
            prop_assert!(src.contains("halide_out_test"));
        }
    }
}

// ---------------------------------------------------------------------------
// Differential testing: the lowered backend against the interpreter oracle
// ---------------------------------------------------------------------------

use helium_halide::realize::ExecBackend;

/// Random expressions over a 2-D `UInt8` image and the producer funcs
/// `stage_a`/`stage_b`, shaped like lifted stencils: widening casts around
/// loads, integer arithmetic, shifts by small constants, min/max and selects.
/// `func_off_lo` bounds the producer access offsets: negative offsets
/// exercise the clamped-boundary paths (where only backend *parity* is
/// guaranteed, as in Halide without boundary conditions), non-negative
/// offsets additionally guarantee schedule *invariance*.
fn stencil_expr_strategy(func_off_lo: i64) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-16i64..17).prop_map(Expr::int),
        Just(Expr::var("x_0")),
        Just(Expr::var("x_1")),
        (-2i64..3, -2i64..3).prop_map(|(dx, dy)| Expr::cast(
            ScalarType::UInt32,
            Expr::Image(
                "input_1".into(),
                vec![
                    Expr::add(Expr::var("x_0"), Expr::int(dx)),
                    Expr::add(Expr::var("x_1"), Expr::int(dy)),
                ],
            )
        )),
        (func_off_lo..3, func_off_lo..3).prop_map(|(dx, dy)| Expr::FuncRef(
            "stage_a".into(),
            vec![
                Expr::add(Expr::var("x_0"), Expr::int(dx)),
                Expr::add(Expr::var("x_1"), Expr::int(dy)),
            ],
        )),
        (func_off_lo..3, func_off_lo..3).prop_map(|(dx, dy)| Expr::FuncRef(
            "stage_b".into(),
            vec![
                Expr::add(Expr::var("x_0"), Expr::int(dx)),
                Expr::add(Expr::var("x_1"), Expr::int(dy)),
            ],
        )),
        // Non-affine producer indexing (x*y) exercises the lowering pass's
        // degrade-to-compute_root path.
        Just(Expr::FuncRef(
            "stage_a".into(),
            vec![
                Expr::mul(Expr::var("x_0"), Expr::var("x_1")),
                Expr::var("x_1")
            ],
        )),
    ];
    leaf.prop_recursive(3, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), (-4i64..5)).prop_map(|(a, c)| Expr::mul(a, Expr::int(c))),
            (inner.clone(), (0i64..5)).prop_map(|(a, s)| Expr::bin(BinOp::Shr, a, Expr::int(s))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Min, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Max, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Xor, a, b)),
            (inner.clone(), inner.clone(), inner.clone(), (-64i64..65))
                .prop_map(|(c, t, f, k)| Expr::select(Expr::cmp(CmpOp::Lt, c, Expr::int(k)), t, f)),
            inner
                .clone()
                .prop_map(|a| Expr::cast(ScalarType::UInt16, Expr::cast(ScalarType::UInt32, a))),
        ]
    })
}

/// The producer's own definition: a small stencil over the input image only.
fn producer_expr_strategy() -> impl Strategy<Value = Expr> {
    (-2i64..3, -2i64..3, -8i64..9, 0i64..3).prop_map(|(dx, dy, c, s)| {
        Expr::bin(
            BinOp::Shr,
            Expr::add(
                Expr::cast(
                    ScalarType::UInt32,
                    Expr::Image(
                        "input_1".into(),
                        vec![
                            Expr::add(Expr::var("x_0"), Expr::int(dx)),
                            Expr::add(Expr::var("x_1"), Expr::int(dy)),
                        ],
                    ),
                ),
                Expr::int(c),
            ),
            Expr::int(s),
        )
    })
}

/// Random three-stage pipelines: `stage_a` reads the input, `stage_b` reads
/// `stage_a` (a producer *chain*, so placements interact), and `output_1`
/// may read either stage directly.
fn pipeline_strategy(func_off_lo: i64) -> impl Strategy<Value = Pipeline> {
    (
        stencil_expr_strategy(func_off_lo),
        producer_expr_strategy(),
        (func_off_lo..3, func_off_lo..3, 0i64..9),
    )
        .prop_map(|(out_e, prod_e, (bdx, bdy, bc))| {
            let stage_a = Func::pure("stage_a", &["x_0", "x_1"], ScalarType::UInt16, prod_e);
            let stage_b = Func::pure(
                "stage_b",
                &["x_0", "x_1"],
                ScalarType::UInt16,
                Expr::add(
                    Expr::FuncRef(
                        "stage_a".into(),
                        vec![
                            Expr::add(Expr::var("x_0"), Expr::int(bdx)),
                            Expr::add(Expr::var("x_1"), Expr::int(bdy)),
                        ],
                    ),
                    Expr::int(bc),
                ),
            );
            let out = Func::pure(
                "output_1",
                &["x_0", "x_1"],
                ScalarType::UInt8,
                Expr::cast(ScalarType::UInt8, out_e),
            );
            Pipeline::new(out, vec![ImageParam::new("input_1", ScalarType::UInt8, 2)])
                .with_func(stage_a)
                .with_func(stage_b)
        })
}

/// Random schedules spanning every knob, including the compute_at directive.
fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (
        any::<bool>(),
        0usize..4,
        prop::sample::select(vec![
            None,
            Some((4usize, 4usize)),
            Some((8, 8)),
            Some((16, 4)),
        ]),
        prop::sample::select(vec![1usize, 2, 4, 8, 16]),
        0u8..3,
        prop::sample::select(vec!["x_0", "x_1"]),
        0u8..3,
        prop::sample::select(vec!["x_0", "x_1"]),
    )
        .prop_map(
            |(parallel, threads, tile, vector, place_a, var_a, place_b, var_b)| {
                let mut s = Schedule::naive()
                    .with_parallel(parallel)
                    .with_threads(threads)
                    .with_tile(tile)
                    .with_vector_width(vector);
                match place_a {
                    1 => s = s.with_compute_root("stage_a"),
                    2 => s = s.with_compute_at("stage_a", var_a),
                    _ => {}
                }
                match place_b {
                    1 => s = s.with_compute_root("stage_b"),
                    2 => s = s.with_compute_at("stage_b", var_b),
                    _ => {}
                }
                s
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance property of the lowering subsystem: for random
    /// pipelines under random schedules, the lowered backend produces buffers
    /// bit-identical to the interpreter oracle.
    #[test]
    fn lowered_backend_matches_interpreter(
        p in pipeline_strategy(-2),
        schedule in schedule_strategy(),
        w in 5usize..24,
        h in 5usize..20,
        seed in any::<u64>(),
    ) {
        let input = pseudo_random_image(w + 4, h + 4, seed);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let interpreted = Realizer::new(schedule.clone())
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[w, h], &inputs)
            .unwrap();
        let lowered = Realizer::new(schedule.clone())
            .with_backend(ExecBackend::Lowered)
            .realize(&p, &[w, h], &inputs)
            .unwrap();
        prop_assert_eq!(
            &interpreted, &lowered,
            "backends diverged under [{}] over {}x{}", schedule, w, h
        );
    }

    /// Beyond backend parity: for pipelines whose producer accesses never go
    /// below zero (so no read hits a materialized buffer's clamped lower
    /// boundary, where inline and compute_root placements legitimately differ
    /// — Halide would require an explicit boundary condition there), *any*
    /// schedule on *either* backend computes exactly the naive values.
    #[test]
    fn schedules_preserve_values(
        p in pipeline_strategy(0),
        schedule in schedule_strategy(),
        w in 5usize..24,
        h in 5usize..20,
        seed in any::<u64>(),
    ) {
        let input = pseudo_random_image(w + 4, h + 4, seed);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let naive = Realizer::new(Schedule::naive())
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[w, h], &inputs)
            .unwrap();
        for backend in [ExecBackend::Interpret, ExecBackend::Lowered] {
            let out = Realizer::new(schedule.clone())
                .with_backend(backend)
                .realize(&p, &[w, h], &inputs)
                .unwrap();
            prop_assert_eq!(
                &out, &naive,
                "{:?} under [{}] changed values over {}x{}", backend, schedule, w, h
            );
        }
    }

    /// The compile-once/run-many API is observationally identical to the
    /// one-shot path: for random pipelines, schedules and backends,
    /// `CompiledPipeline::run` returns buffers bit-identical to a fresh
    /// `Realizer::realize` — across different extents and across repeated
    /// runs, where the repeat executes the *cached* program (verified via the
    /// hit counter) rather than recompiling.
    #[test]
    fn compiled_pipeline_matches_fresh_realizer(
        p in pipeline_strategy(-2),
        schedule in schedule_strategy(),
        w in 5usize..20,
        h in 5usize..16,
        seed in any::<u64>(),
        lowered in any::<bool>(),
    ) {
        use helium_halide::CompileOptions;
        let backend = if lowered { ExecBackend::Lowered } else { ExecBackend::Interpret };
        let input = pseudo_random_image(w + 6, h + 6, seed);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let compiled = p
            .compile(&schedule, &CompileOptions { backend, ..CompileOptions::default() })
            .unwrap();
        // Two distinct extents, then a repeat of the first (a cache hit).
        for extents in [vec![w, h], vec![w + 1, h], vec![w, h]] {
            let fresh = Realizer::new(schedule.clone())
                .with_backend(backend)
                .realize(&p, &extents, &inputs)
                .unwrap();
            let ran = compiled.run(&inputs, &extents).unwrap();
            prop_assert_eq!(
                &ran, &fresh,
                "compiled run diverged from fresh realize ({:?}, [{}], {:?})",
                backend, schedule, extents
            );
        }
        let stats = compiled.cache_stats();
        prop_assert_eq!(stats.misses, 2, "one compile per distinct extents");
        prop_assert_eq!(stats.hits, 1, "the repeated run must use the cache");
    }

    /// The two backends also agree on reductions (pure init + update), where
    /// the lowered backend runs the pure stage compiled and the update stage
    /// through the shared reduction interpreter.
    #[test]
    fn lowered_backend_matches_interpreter_on_histograms(
        w in 3usize..16,
        h in 3usize..12,
        seed in any::<u64>(),
        parallel in any::<bool>(),
    ) {
        let img = ImageParam::new("input_1", ScalarType::UInt8, 2);
        let rdom = RDom::over_image("r_0", &img);
        let access = Expr::Image(
            "input_1".into(),
            vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
        );
        let update = UpdateDef {
            lhs: vec![access.clone()],
            value: Expr::cast(
                ScalarType::UInt64,
                Expr::add(Expr::FuncRef("hist".into(), vec![access]), Expr::int(1)),
            ),
            rdom,
        };
        let hist = Func::pure("hist", &["x_0"], ScalarType::UInt64, Expr::int(0))
            .with_update(update);
        let p = Pipeline::new(hist, vec![img]);
        let input = pseudo_random_image(w, h, seed);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let schedule = Schedule::naive().with_parallel(parallel).with_vector_width(8);
        let a = Realizer::new(schedule.clone())
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[256], &inputs)
            .unwrap();
        let b = Realizer::new(schedule)
            .with_backend(ExecBackend::Lowered)
            .realize(&p, &[256], &inputs)
            .unwrap();
        prop_assert_eq!(a, b);
    }
}
