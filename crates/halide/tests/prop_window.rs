//! Differential suite for the locality tier: sliding-window `compute_at`
//! reuse and multi-output fused loop nests.
//!
//! Both features are pure schedule transformations, so the acceptance
//! property is bit-identity: a sliding-window schedule must produce exactly
//! the bytes of the recompute-everything `compute_at` schedule and of the
//! interpreter oracle, and a `fuse_outputs` schedule must produce exactly
//! the bytes of its unfused counterpart — across prime extents,
//! border-clamping taps, vector widths and parallelism, under both pinned
//! execution tiers ([`Tier::Scalar`] / [`Tier::Simd`] via the [`Target`]
//! carried on [`CompileOptions`]; CI additionally runs the whole suite under
//! `HELIUM_FORCE_SCALAR=1`, `HELIUM_FORCE_SIMD=1` and `HELIUM_PORTABLE=1`
//! legs).
//!
//! Equality alone can be vacuous — a schedule that silently degrades to the
//! non-locality path also matches — so the deterministic tests guard with
//! the new counters: [`CounterSnapshot::delta`]'s `window_rows_reused` /
//! `multi_output_nests` and the [`CompiledPipeline::sliding_windows`] /
//! [`CompiledPipeline::multi_output_nests`] accessors prove the rolling
//! window and the shared nest actually fire.

use helium_halide::prelude::*;
use proptest::prelude::*;

/// Prime-ish extents: attach loops and shared outer loops never divide
/// evenly into vector chunks or thread chunks.
const EXTENTS: [usize; 5] = [5, 13, 23, 31, 47];

fn image(w: usize, h: usize, seed: u64) -> Buffer {
    let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
    let mut s = seed | 1;
    for c in b.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        b.set(&c, Value::Int(((s >> 33) % 256) as i64));
    }
    b
}

/// A widened tap on image `in`.
fn in_tap(dx: i64, dy: i64) -> Expr {
    Expr::cast(
        ScalarType::UInt32,
        Expr::Image(
            "in".into(),
            vec![
                Expr::add(Expr::var("x_0"), Expr::int(dx)),
                Expr::add(Expr::var("x_1"), Expr::int(dy)),
            ],
        ),
    )
}

/// A tap on func `f`.
fn func_tap(f: &str, dx: i64, dy: i64) -> Expr {
    Expr::FuncRef(
        f.into(),
        vec![
            Expr::add(Expr::var("x_0"), Expr::int(dx)),
            Expr::add(Expr::var("x_1"), Expr::int(dy)),
        ],
    )
}

/// Two-stage vertical stencil: `blur_x` horizontally blurs `in`, `out` sums
/// `vert_taps` consecutive `blur_x` rows starting at `y + dy0`. With
/// `compute_at(blur_x, x_1)` the inferred region translates by one row per
/// attach iteration — the shape the sliding window rides.
fn two_stage_vertical(vert_taps: i64, dy0: i64) -> Pipeline {
    let blur_x = Func::pure(
        "blur_x",
        &["x_0", "x_1"],
        ScalarType::UInt16,
        Expr::cast(
            ScalarType::UInt16,
            Expr::bin(
                BinOp::Shr,
                Expr::cast(
                    ScalarType::UInt32,
                    Expr::add(Expr::add(in_tap(0, 0), in_tap(1, 0)), in_tap(2, 0)),
                ),
                Expr::uint(1),
            ),
        ),
    );
    let mut sum = Expr::cast(ScalarType::UInt32, func_tap("blur_x", 0, dy0));
    for t in 1..vert_taps {
        sum = Expr::add(
            sum,
            Expr::cast(ScalarType::UInt32, func_tap("blur_x", 0, dy0 + t)),
        );
    }
    let out = Func::pure(
        "out",
        &["x_0", "x_1"],
        ScalarType::UInt8,
        Expr::cast(ScalarType::UInt8, sum),
    );
    Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]).with_func(blur_x)
}

/// Realize `p` on the interpreter backend — the oracle.
fn oracle(
    p: &Pipeline,
    schedule: &Schedule,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
) -> Buffer {
    Realizer::new(schedule.clone())
        .with_backend(ExecBackend::Interpret)
        .realize(p, extents, inputs)
        .expect("interpreter oracle")
}

/// Compile `p` under `schedule` on the lowered backend pinned to `target`
/// (resolved once at compile time) and run it once.
fn run_lowered(
    p: &Pipeline,
    schedule: &Schedule,
    target: Target,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
) -> (CompiledPipeline, Buffer) {
    let compiled = p
        .compile(
            schedule,
            &CompileOptions {
                backend: ExecBackend::Lowered,
                target: Some(target),
                ..CompileOptions::default()
            },
        )
        .expect("compile");
    let out = compiled.run(inputs, extents).expect("lowered run");
    (compiled, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Sliding-window acceptance property: for random vertical stencils
    /// (border-clamping `dy0 < 0` included) over prime extents, the sliding
    /// schedule is bit-identical to the recompute-everything `compute_at`
    /// schedule and to the interpreter oracle, in both forced modes, serial
    /// and parallel.
    #[test]
    fn sliding_window_matches_recompute_and_oracle(
        vert_taps in 2i64..5,
        dy0 in -2i64..2,
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..EXTENTS.len(),
        width in prop::sample::select(vec![1usize, 8]),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let p = two_stage_vertical(vert_taps, dy0);
        let input = image(w + 4, h + vert_taps as usize + 2, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let base = Schedule::naive()
            .with_parallel(parallel)
            .with_vector_width(width)
            .with_compute_at("blur_x", "x_1");
        let sliding = base.clone().with_store_sliding("blur_x");
        let expect = oracle(&p, &base, &[w, h], &inputs);
        for mode in [
        Target::detect().with_tier(Tier::Scalar),
        Target::detect().with_tier(Tier::Simd),
    ] {
            let (_, plain) = run_lowered(&p, &base, mode, &[w, h], &inputs);
            let (_, slid) = run_lowered(&p, &sliding, mode, &[w, h], &inputs);
            prop_assert_eq!(&plain, &expect, "compute_at diverged ({:?})", mode);
            prop_assert_eq!(&slid, &expect, "sliding window diverged ({:?})", mode);
        }
    }

    /// Multi-output fusion acceptance property: a three-stage chain whose
    /// cross-stage reads look back `lag` rows (lag 0 = pointwise) fused into
    /// shared nests is bit-identical to the unfused schedule and the oracle.
    /// Positive-lag variants and parallel+lag variants are inadmissible and
    /// must silently keep separate nests — also value-identical.
    #[test]
    fn fused_outputs_match_unfused_and_oracle(
        lag in -2i64..2,
        dx in -2i64..3,
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..EXTENTS.len(),
        width in prop::sample::select(vec![1usize, 8]),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let s1 = Func::pure(
            "s1",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::cast(
                ScalarType::UInt16,
                Expr::bin(BinOp::Xor, Expr::int(255), in_tap(0, 0)),
            ),
        );
        // s2 reads s1 at the current row AND at (x+dx, y+lag): the lagged
        // tap decides fused admissibility, the current-row tap keeps the
        // sized extents equal so the group stays a fusion candidate.
        let s2 = Func::pure(
            "s2",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::cast(
                ScalarType::UInt16,
                Expr::add(
                    Expr::cast(ScalarType::UInt32, func_tap("s1", 0, 0)),
                    Expr::cast(ScalarType::UInt32, func_tap("s1", dx, lag.min(0))),
                ),
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::add(
                    Expr::cast(ScalarType::UInt32, func_tap("s2", 0, 0)),
                    Expr::cast(ScalarType::UInt32, func_tap("s2", 0, lag)),
                ),
            ),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)])
            .with_func(s1)
            .with_func(s2);
        let input = image(w + 4, h + 4, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let unfused = Schedule::naive()
            .with_parallel(parallel)
            .with_vector_width(width)
            .with_compute_root("s1")
            .with_compute_root("s2");
        let fused = unfused.clone().with_fuse_outputs(true);
        let expect = oracle(&p, &unfused, &[w, h], &inputs);
        for mode in [
        Target::detect().with_tier(Tier::Scalar),
        Target::detect().with_tier(Tier::Simd),
    ] {
            let (_, plain) = run_lowered(&p, &unfused, mode, &[w, h], &inputs);
            let (_, shared) = run_lowered(&p, &fused, mode, &[w, h], &inputs);
            prop_assert_eq!(&plain, &expect, "unfused diverged ({:?})", mode);
            prop_assert_eq!(&shared, &expect, "fused nest diverged ({:?})", mode);
        }
    }
}

/// The fig7 shape the benchmark times: a two-stage blur with sliding-window
/// `compute_at` must compile exactly one rolling window, actually reuse rows
/// at run time (the counter guard makes the differential tests above
/// non-vacuous), and agree with the oracle in both pinned modes.
#[test]
fn fig7_blur_sliding_window_reuses_rows() {
    let p = two_stage_vertical(3, 0);
    let (w, h) = (61, 47);
    let input = image(w + 4, h + 4, 0xCAFE);
    let inputs = RealizeInputs::new().with_image("in", &input);
    let base = Schedule::naive()
        .with_vector_width(8)
        .with_compute_at("blur_x", "x_1");
    let sliding = base.clone().with_store_sliding("blur_x");
    let expect = oracle(&p, &base, &[w, h], &inputs);
    for mode in [
        Target::detect().with_tier(Tier::Scalar),
        Target::detect().with_tier(Tier::Simd),
    ] {
        let counters = CounterSnapshot::take();
        let (compiled, out) = run_lowered(&p, &sliding, mode, &[w, h], &inputs);
        assert_eq!(
            out, expect,
            "sliding window diverged from oracle ({mode:?})"
        );
        assert_eq!(
            compiled.sliding_windows(&inputs, &[w, h]).expect("program"),
            1,
            "the schedule must compile exactly one rolling window"
        );
        let reused = counters.delta().window_rows_reused;
        // Rows h-1 iterations could reuse, 2 warm rows each (extent 3,
        // shift 1): the serial attach loop must reuse every one of them.
        assert_eq!(
            reused,
            2 * (h as u64 - 1),
            "every attach iteration after the first must reuse 2 rows ({mode:?})"
        );
        // The recompute-everything schedule compiles no window.
        let (plain, _) = run_lowered(&p, &base, mode, &[w, h], &inputs);
        assert_eq!(plain.sliding_windows(&inputs, &[w, h]).expect("program"), 0);
    }
}

/// A parallel sliding-window attach loop goes cold per worker chunk but must
/// still reuse rows inside each chunk — and stay bit-identical.
#[test]
fn parallel_sliding_window_stays_exact_and_reuses_within_chunks() {
    let p = two_stage_vertical(4, -1);
    let (w, h) = (31, 97);
    let input = image(w + 4, h + 6, 0xBEEF);
    let inputs = RealizeInputs::new().with_image("in", &input);
    let base = Schedule::naive()
        .with_parallel(true)
        .with_threads(4)
        .with_vector_width(8)
        .with_compute_at("blur_x", "x_1");
    let sliding = base.clone().with_store_sliding("blur_x");
    let expect = oracle(&p, &base, &[w, h], &inputs);
    let counters = CounterSnapshot::take();
    let (_, out) = run_lowered(
        &p,
        &sliding,
        Target::detect().with_tier(Tier::Simd),
        &[w, h],
        &inputs,
    );
    assert_eq!(out, expect, "parallel sliding window diverged from oracle");
    // 4 workers × ~24 rows: all but the first iteration of each chunk reuse.
    assert!(
        counters.delta().window_rows_reused > 0,
        "workers must reuse rows within their chunks"
    );
}

/// A `compose_after` chain — two independently lifted pointwise filters
/// composed into one pipeline — must compile into ONE shared multi-output
/// nest, execute it (run-time counter), keep per-store lane kernels for
/// every member, and agree bit-for-bit with the unfused schedule and oracle.
#[test]
fn compose_after_chain_compiles_into_one_shared_nest() {
    let invert = |out_name: &str, img: &str| {
        let tap = Expr::cast(
            ScalarType::UInt32,
            Expr::Image(img.into(), vec![Expr::var("x_0"), Expr::var("x_1")]),
        );
        let f = Func::pure(
            out_name,
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::bin(BinOp::Xor, Expr::int(255), tap),
            ),
        );
        Pipeline::new(f, vec![ImageParam::new(img, ScalarType::UInt8, 2)])
    };
    let first = invert("output_1", "input_1");
    let second = invert("output_2", "input_1");
    let chain = second.compose_after(&first, "input_1");

    let (w, h) = (53, 37);
    let input = image(w, h, 0xD00D);
    let inputs = RealizeInputs::new().with_image("input_1", &input);
    let unfused = Schedule::naive()
        .with_vector_width(8)
        .with_compute_root("output_1");
    let fused = unfused.clone().with_fuse_outputs(true);
    let expect = oracle(&chain, &unfused, &[w, h], &inputs);

    for mode in [
        Target::detect().with_tier(Tier::Scalar),
        Target::detect().with_tier(Tier::Simd),
    ] {
        let counters = CounterSnapshot::take();
        let (compiled, out) = run_lowered(&chain, &fused, mode, &[w, h], &inputs);
        assert_eq!(out, expect, "fused chain diverged from oracle ({mode:?})");
        assert_eq!(
            compiled
                .multi_output_nests(&inputs, &[w, h])
                .expect("program"),
            1,
            "the chain must compile into one shared nest"
        );
        assert_eq!(
            counters.delta().multi_output_nests,
            1,
            "the shared nest must execute once per run ({mode:?})"
        );
        // Fusion shares the loop, not the kernels: both members keep their
        // compiled lane kernels.
        let counts = compiled
            .fused_store_counts(&inputs, &[w, h])
            .expect("counts");
        assert_eq!(counts.lanes_i32, 2, "each member keeps its lane kernel");
        // The unfused schedule compiles two separate nests.
        let (plain, _) = run_lowered(&chain, &unfused, mode, &[w, h], &inputs);
        assert_eq!(
            plain.multi_output_nests(&inputs, &[w, h]).expect("program"),
            0
        );
    }
}

/// The fused nest shows up in `dry_run` with one profiled stage per member
/// (output last), so cost models see the same stage list either way.
#[test]
fn fused_profile_keeps_one_stage_per_member() {
    let p = {
        let s1 = Func::pure(
            "s1",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::cast(ScalarType::UInt16, in_tap(1, 0)),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::cast(ScalarType::UInt32, func_tap("s1", 0, 0)),
            ),
        );
        Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]).with_func(s1)
    };
    let input = image(20, 16, 0xFACE);
    let inputs = RealizeInputs::new().with_image("in", &input);
    let fused = Schedule::naive()
        .with_vector_width(8)
        .with_compute_root("s1")
        .with_fuse_outputs(true);
    let compiled = p
        .compile(
            &fused,
            &CompileOptions {
                backend: ExecBackend::Lowered,
                ..CompileOptions::default()
            },
        )
        .expect("compile");
    assert_eq!(
        compiled
            .multi_output_nests(&inputs, &[16, 12])
            .expect("program"),
        1
    );
    let profile = compiled.dry_run(&inputs, &[16, 12]).expect("dry run");
    assert_eq!(profile.stages.len(), 2, "one profiled stage per member");
    assert_eq!(profile.stages[0].name, "s1");
    assert_eq!(profile.output().name, "out");
    assert!(profile.stages.iter().all(|s| s.lowered));
    assert!(
        profile.stages.iter().all(|s| s.stores.len() == 1),
        "each member owns exactly its own store profile"
    );
}
