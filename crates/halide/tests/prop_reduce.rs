//! Differential property suite for lowered update (reduction) definitions.
//!
//! The compiled engine now executes update definitions — guarded
//! `ReduceStore` nests with a privatized-vs-sequential accumulation strategy
//! and a fused integer tree-reduce for loop-invariant accumulators — while
//! `run_update`, the reduction interpreter, remains as the differential
//! oracle. This suite pins the compiled init+update nests bit-identical to
//! that oracle:
//!
//! * across every [`ScalarType`] as the accumulator element type (float
//!   accumulators stay on the sequential per-op path — float addition is not
//!   associative — and must still match bit-for-bit);
//! * on prime extents and prime reduction-domain bounds, so fused
//!   accumulation chunks always leave remainders for the per-element peel;
//! * on RDoms overlapping pure dims, including self-referencing accumulators
//!   like `f(x) = f(x) + r` (the privatized strategy: rdom loops hoisted,
//!   pure lanes vectorized) and order-sensitive scans reading `f(r - 1)`
//!   (the sequential strategy);
//! * on data-dependent histogram LHS indices, whose destinations clamp
//!   exactly like `Buffer::set`;
//! * under both forced execution tiers via [`CompileOptions::simd`] (CI runs
//!   the whole file under `HELIUM_FORCE_SCALAR=1` and `HELIUM_FORCE_SIMD=1`
//!   as the `reductions` matrix leg).

use helium_halide::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Element types an accumulator can carry.
const TYPES: [ScalarType; 7] = [
    ScalarType::UInt8,
    ScalarType::UInt16,
    ScalarType::UInt32,
    ScalarType::UInt64,
    ScalarType::Int32,
    ScalarType::Float32,
    ScalarType::Float64,
];

/// Prime extents: fused reduce chunks (16/32 lanes) never divide evenly, so
/// every case exercises the per-element peel around the chunked interior.
const EXTENTS: [usize; 5] = [5, 11, 17, 37, 61];

fn image(w: usize, h: usize, seed: u64) -> Buffer {
    let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
    let mut s = seed | 1;
    for c in b.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        b.set(&c, Value::Int(((s >> 33) % 256) as i64));
    }
    b
}

/// Compare the interpreter oracle (whose updates run through `run_update`)
/// with the lowered backend pinned to the per-op tier and the fused tier.
fn assert_update_tiers_match_oracle(
    p: &Pipeline,
    schedule: &Schedule,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
) -> Result<(), TestCaseError> {
    let oracle = Realizer::new(schedule.clone())
        .with_backend(ExecBackend::Interpret)
        .realize(p, extents, inputs)
        .expect("interpreter realize");
    // Explicit pins cover both tiers in any environment; the unpinned
    // (`None`) compile follows the process-wide target, so the CI legs
    // running this suite under HELIUM_FORCE_SCALAR=1 / HELIUM_FORCE_SIMD=1 /
    // HELIUM_PORTABLE=1 each exercise a genuinely different default path.
    for mode in [
        None,
        Some(Target::detect().with_tier(Tier::Scalar)),
        Some(Target::detect().with_tier(Tier::Simd)),
        Some(Target::portable().with_tier(Tier::Simd)),
    ] {
        let compiled = p
            .compile(
                schedule,
                &CompileOptions {
                    backend: ExecBackend::Lowered,
                    target: mode,
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let out = compiled.run(inputs, extents).expect("lowered run");
        prop_assert_eq!(
            &out,
            &oracle,
            "{:?} tier diverged from run_update under [{}] over {:?}",
            mode,
            schedule,
            extents
        );
    }
    Ok(())
}

/// A stencil tap over the reduction variables, widened like lifted code.
fn rtap(dx: i64, dy: i64) -> Expr {
    Expr::cast(
        ScalarType::UInt32,
        Expr::Image(
            "in".into(),
            vec![
                Expr::add(Expr::RVar("r_0.x".into()), Expr::int(dx)),
                Expr::add(Expr::RVar("r_0.y".into()), Expr::int(dy)),
            ],
        ),
    )
}

/// Added-term expressions `g` for accumulators `F[c] = F[c] + g`: rdom taps,
/// squares, shifted sums, rdom-variable ramps — the shapes residual norms
/// and weighted histogram bins take.
fn accum_term_strategy() -> impl Strategy<Value = Expr> {
    let off = 0i64..3;
    let leaf = prop_oneof![
        (off.clone(), off.clone()).prop_map(|(dx, dy)| rtap(dx, dy)),
        Just(Expr::RVar("r_0.x".into())),
        Just(Expr::RVar("r_0.y".into())),
        (1i64..300).prop_map(Expr::int),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            (inner.clone(), 0i64..5).prop_map(|(a, s)| Expr::bin(
                BinOp::Shr,
                Expr::cast(ScalarType::UInt32, a),
                Expr::uint(s)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Min, a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Loop-invariant accumulators (`norm[0] = norm[0] + g(r)`) across every
    /// accumulator type and prime rdom bounds: the integer ones ride the
    /// fused tree-reduce under ForceSimd, floats stay per-op — all must be
    /// bit-identical to `run_update`.
    #[test]
    fn invariant_accumulators_match_oracle(
        ty in prop::sample::select(TYPES.to_vec()),
        g in accum_term_strategy(),
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..3,
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let img = ImageParam::new("in", ScalarType::UInt8, 2);
        let update = UpdateDef {
            lhs: vec![Expr::int(1)],
            value: Expr::cast(
                ty,
                Expr::add(Expr::FuncRef("norm".into(), vec![Expr::int(1)]), g),
            ),
            rdom: RDom::with_constant_bounds("r_0", &[(0, w as i64), (0, h as i64)]),
        };
        let norm = Func::pure("norm", &["x_0"], ty, Expr::int(0)).with_update(update);
        let p = Pipeline::new(norm, vec![img]);
        let input = image(w + 2, h + 2, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        assert_update_tiers_match_oracle(&p, &Schedule::stencil_default(), &[3], &inputs)?;
    }

    /// Histogram-style updates with data-dependent LHS indices (including
    /// out-of-range bins, which clamp like `Buffer::set`) match the oracle
    /// for every accumulator type.
    #[test]
    fn histogram_updates_match_oracle(
        ty in prop::sample::select(TYPES.to_vec()),
        bins in prop::sample::select(vec![7usize, 61, 256]),
        scale in 1i64..4,
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..3,
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let img = ImageParam::new("in", ScalarType::UInt8, 2);
        let rdom = RDom::over_image("r_0", &img);
        // Scaled bins overflow small `bins` extents: the clamped guarded
        // store and `Buffer::set` must agree on where they land.
        let lhs = Expr::mul(
            Expr::Image(
                "in".into(),
                vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
            ),
            Expr::int(scale),
        );
        let update = UpdateDef {
            lhs: vec![lhs.clone()],
            value: Expr::cast(
                ty,
                Expr::add(Expr::FuncRef("hist".into(), vec![lhs]), Expr::int(1)),
            ),
            rdom,
        };
        let hist = Func::pure("hist", &["x_0"], ty, Expr::int(0)).with_update(update);
        let p = Pipeline::new(hist, vec![img]);
        let input = image(w, h, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::naive().with_parallel(parallel).with_vector_width(8);
        assert_update_tiers_match_oracle(&p, &schedule, &[bins], &inputs)?;
    }

    /// RDoms overlapping pure dims: the self-referencing accumulator
    /// `f(x, y) = f(x, y) + in(x + r.x, y)` takes the privatized strategy
    /// (vectorized pure lanes under hoisted rdom loops) and must match the
    /// oracle's pure-outer/rdom-inner order bit-for-bit, every type, every
    /// width.
    #[test]
    fn privatized_pure_dim_accumulators_match_oracle(
        ty in prop::sample::select(TYPES.to_vec()),
        width in prop::sample::select(vec![1usize, 8, 32]),
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..3,
        r_extent in 1i64..6,
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let img = ImageParam::new("in", ScalarType::UInt8, 2);
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let update = UpdateDef {
            lhs: vec![x.clone(), y.clone()],
            value: Expr::cast(
                ty,
                Expr::add(
                    Expr::FuncRef("f".into(), vec![x.clone(), y.clone()]),
                    Expr::add(
                        Expr::Image(
                            "in".into(),
                            vec![Expr::add(x.clone(), Expr::RVar("r_0.x".into())), y.clone()],
                        ),
                        Expr::RVar("r_0.x".into()),
                    ),
                ),
            ),
            rdom: RDom::with_constant_bounds("r_0", &[(0, r_extent)]),
        };
        let f = Func::pure(
            "f",
            &["x_0", "x_1"],
            ty,
            Expr::cast(ty, Expr::add(x, Expr::mul(y, Expr::int(3)))),
        )
        .with_update(update);
        let p = Pipeline::new(f, vec![img]);
        let input = image(w + 8, h + 2, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::naive()
            .with_parallel(parallel)
            .with_vector_width(width);
        assert_update_tiers_match_oracle(&p, &schedule, &[w, h], &inputs)?;
    }

    /// Order-sensitive scans (`f(r) = f(r - 1) + in(r)`) take the sequential
    /// strategy; the compiled per-element order must replicate the oracle's
    /// exactly — any reordering would change every prefix.
    #[test]
    fn sequential_scans_match_oracle(
        ty in prop::sample::select(TYPES.to_vec()),
        wi in 0usize..EXTENTS.len(),
        seed in any::<u64>(),
    ) {
        let w = EXTENTS[wi];
        let img = ImageParam::new("in", ScalarType::UInt8, 2);
        let r = Expr::RVar("r_0.x".into());
        let update = UpdateDef {
            lhs: vec![r.clone()],
            value: Expr::cast(
                ty,
                Expr::add(
                    Expr::FuncRef("f".into(), vec![Expr::add(r.clone(), Expr::int(-1))]),
                    Expr::cast(
                        ScalarType::UInt32,
                        Expr::Image("in".into(), vec![r, Expr::int(0)]),
                    ),
                ),
            ),
            rdom: RDom::with_constant_bounds("r_0", &[(0, w as i64)]),
        };
        let f = Func::pure("f", &["x_0"], ty, Expr::int(0)).with_update(update);
        let p = Pipeline::new(f, vec![img]);
        let input = image(w, 3, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        assert_update_tiers_match_oracle(&p, &Schedule::stencil_default(), &[w], &inputs)?;
    }

    /// Multiple update definitions apply in declaration order: a histogram
    /// pass followed by a scan over the bins (the lifted equalize shape).
    #[test]
    fn chained_updates_apply_in_order(
        ty in prop::sample::select(vec![
            ScalarType::UInt32,
            ScalarType::UInt64,
            ScalarType::Int32,
        ]),
        wi in 0usize..EXTENTS.len(),
        seed in any::<u64>(),
    ) {
        let w = EXTENTS[wi];
        let img = ImageParam::new("h", ScalarType::UInt8, 2);
        let binning = {
            let lhs = Expr::Image(
                "h".into(),
                vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
            );
            UpdateDef {
                lhs: vec![lhs.clone()],
                value: Expr::cast(
                    ty,
                    Expr::add(Expr::FuncRef("cdf".into(), vec![lhs]), Expr::int(1)),
                ),
                rdom: RDom::over_image("r_0", &img),
            }
        };
        let prefix = {
            let r = Expr::RVar("r_1.x".into());
            UpdateDef {
                lhs: vec![r.clone()],
                value: Expr::cast(
                    ty,
                    Expr::add(
                        Expr::FuncRef("cdf".into(), vec![Expr::add(r.clone(), Expr::int(-1))]),
                        Expr::FuncRef("cdf".into(), vec![r]),
                    ),
                ),
                rdom: RDom::with_constant_bounds("r_1", &[(1, 255)]),
            }
        };
        let cdf = Func::pure("cdf", &["x_0"], ty, Expr::int(0))
            .with_update(binning)
            .with_update(prefix);
        let p = Pipeline::new(cdf, vec![img]);
        let input = image(w, 5, seed);
        let inputs = RealizeInputs::new().with_image("h", &input);
        assert_update_tiers_match_oracle(&p, &Schedule::stencil_default(), &[256], &inputs)?;
    }
}

/// Non-vacuity guard for the differential legs: the reductions above must
/// actually execute through the compiled engine (`interpreted == 0`) and,
/// under the fused tier, advance the tree-reduce chunk counter.
#[test]
fn reduction_suite_is_not_vacuous() {
    let img = ImageParam::new("in", ScalarType::UInt8, 2);
    let g = Expr::cast(
        ScalarType::UInt64,
        Expr::Image(
            "in".into(),
            vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
        ),
    );
    let update = UpdateDef {
        lhs: vec![Expr::int(0)],
        value: Expr::add(
            Expr::FuncRef("norm".into(), vec![Expr::int(0)]),
            Expr::mul(g.clone(), g),
        ),
        rdom: RDom::over_image("r_0", &img),
    };
    let norm = Func::pure("norm", &["x_0"], ScalarType::UInt64, Expr::int(0)).with_update(update);
    let p = Pipeline::new(norm, vec![img]);
    let input = image(131, 7, 0xACC);
    let inputs = RealizeInputs::new().with_image("in", &input);
    let counters = CounterSnapshot::take();
    let compiled = p
        .compile(
            &Schedule::stencil_default(),
            &CompileOptions {
                target: Some(Target::detect().with_tier(Tier::Simd)),
                ..CompileOptions::default()
            },
        )
        .expect("compile");
    let out = compiled.run(&inputs, &[1]).expect("run");
    assert_eq!(
        compiled.update_counts(&inputs, &[1]).expect("counts"),
        UpdateCounts {
            compiled: 1,
            interpreted: 0
        },
        "the suite must exercise compiled reductions, not the interpreter"
    );
    assert!(
        counters.delta().reduce_chunks > 0,
        "the fused tree-reduce must have executed"
    );
    let oracle = Realizer::new(Schedule::stencil_default())
        .with_backend(ExecBackend::Interpret)
        .realize(&p, &[1], &inputs)
        .expect("oracle");
    assert_eq!(out, oracle);
}
