//! Differential property suite for the fused SIMD execution tier.
//!
//! The compiled executor has three tiers (fused SIMD lane kernels, per-op
//! typed lane dispatch, per-element fallback — see `exec`'s module docs).
//! This suite pins the lowered backend to each tier via
//! [`CompileOptions::simd`] — no global state, so cases can run in parallel —
//! and asserts the outputs are bit-identical to the interpreter oracle:
//!
//! * across every [`ScalarType`] as both input and output element type;
//! * on odd/prime extents, so interior chunks always leave tail peels;
//! * on border-clamping stencils (negative and past-the-end tap offsets);
//! * on the u32 wrap-around idioms lifted binaries use (`4294967295 * x`
//!   negative taps, `255 ^ x` inversion, logical shifts of wrapped sums).
//!
//! The `HELIUM_FORCE_SCALAR=1` / `HELIUM_FORCE_SIMD=1` environment variables
//! apply the same pinning process-wide; CI runs the whole test suite under
//! each as separate matrix legs.

use helium_halide::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Element types a buffer can carry.
const TYPES: [ScalarType; 7] = [
    ScalarType::UInt8,
    ScalarType::UInt16,
    ScalarType::UInt32,
    ScalarType::UInt64,
    ScalarType::Int32,
    ScalarType::Float32,
    ScalarType::Float64,
];

/// Odd and prime extents: interiors never divide evenly into 8/16/32-lane
/// chunks, so every case exercises the pre/post peels and the sub-width tail.
const EXTENTS: [usize; 6] = [5, 7, 11, 13, 23, 31];

fn image(ty: ScalarType, w: usize, h: usize, seed: u64) -> Buffer {
    let mut b = Buffer::new(ty, &[w, h]);
    let mut s = seed | 1;
    for c in b.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (s >> 29) as i64;
        let value = if ty.is_float() {
            Value::Float((v % 4096) as f64 / 8.0 - 128.0)
        } else {
            Value::Int(v)
        };
        // Buffer::set casts to the element type, so every type sees its full
        // value range.
        b.set(&c, value);
    }
    b
}

/// A stencil tap on `in` with the given offsets, widened like lifted code.
fn tap(dx: i64, dy: i64) -> Expr {
    Expr::cast(
        ScalarType::UInt32,
        Expr::Image(
            "in".into(),
            vec![
                Expr::add(Expr::var("x_0"), Expr::int(dx)),
                Expr::add(Expr::var("x_1"), Expr::int(dy)),
            ],
        ),
    )
}

/// Stencil value expressions shaped like the lifted Fig. 7 filters plus the
/// shapes that stress the 32-bit lane invariant: u32 wrap-around negative
/// taps, xor-inversion, clamps, selects, ramps and shifted sums.
fn value_strategy() -> impl Strategy<Value = Expr> {
    let off = -3i64..4;
    let leaf = prop_oneof![
        (off.clone(), off.clone()).prop_map(|(dx, dy)| tap(dx, dy)),
        // u32 wrap-around "negative" tap, as lifted sharpen encodes -x.
        (off.clone(), off.clone()).prop_map(|(dx, dy)| Expr::cast(
            ScalarType::UInt32,
            Expr::mul(Expr::int(4294967295), tap(dx, dy))
        )),
        (-300i64..301).prop_map(Expr::int),
        Just(Expr::var("x_0")),
        Just(Expr::var("x_1")),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), -9i64..10).prop_map(|(a, c)| Expr::mul(a, Expr::int(c))),
            // Inversion idiom: 255 ^ x.
            inner
                .clone()
                .prop_map(|a| Expr::bin(BinOp::Xor, Expr::int(255), a)),
            (inner.clone(), 0i64..6).prop_map(|(a, s)| Expr::bin(
                BinOp::Shr,
                Expr::cast(ScalarType::UInt32, a),
                Expr::uint(s)
            )),
            (inner.clone(), 0i64..5).prop_map(|(a, s)| Expr::bin(BinOp::Shl, a, Expr::int(s))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Min, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Max, a, b)),
            (inner.clone(), inner.clone(), inner.clone(), -200i64..201)
                .prop_map(|(c, t, f, k)| Expr::select(Expr::cmp(CmpOp::Lt, c, Expr::int(k)), t, f)),
            inner
                .clone()
                .prop_map(|a| Expr::cast(ScalarType::UInt16, a)),
        ]
    })
}

/// Compare the interpreter oracle with the lowered backend pinned to the
/// per-op tier and to the fused tier, for the given schedule.
fn assert_tiers_match_oracle(
    p: &Pipeline,
    schedule: &Schedule,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
) -> Result<(), TestCaseError> {
    let oracle = Realizer::new(schedule.clone())
        .with_backend(ExecBackend::Interpret)
        .realize(p, extents, inputs)
        .expect("interpreter realize");
    for mode in [SimdMode::ForceScalar, SimdMode::ForceSimd] {
        let compiled = p
            .compile(
                schedule,
                &CompileOptions {
                    backend: ExecBackend::Lowered,
                    simd: Some(mode),
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let out = compiled.run(inputs, extents).expect("lowered run");
        prop_assert_eq!(
            &out,
            &oracle,
            "{:?} tier diverged from the interpreter under [{}] over {:?}",
            mode,
            schedule,
            extents
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance property of the fused SIMD tier: random border-clamping
    /// stencils over every input/output element type, on prime extents, are
    /// bit-identical to the interpreter in both forced modes and across the
    /// vector widths that select different fused chunk sizes.
    #[test]
    fn fused_and_scalar_tiers_match_interpreter(
        in_ty in prop::sample::select(TYPES.to_vec()),
        out_ty in prop::sample::select(TYPES.to_vec()),
        value in value_strategy(),
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..EXTENTS.len(),
        width in prop::sample::select(vec![1usize, 4, 8, 16, 32]),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            out_ty,
            Expr::cast(out_ty, value),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("in", in_ty, 2)]);
        let input = image(in_ty, w + 2, h + 2, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::naive()
            .with_parallel(parallel)
            .with_vector_width(width);
        assert_tiers_match_oracle(&p, &schedule, &[w, h], &inputs)?;
    }

    /// Tiling adds symbolic tail extents to the vectorized loop; the interior
    /// derivation must stay exact under them.
    #[test]
    fn fused_tier_is_exact_under_tiling(
        value in value_strategy(),
        tile in prop::sample::select(vec![(4usize, 4usize), (8, 8), (16, 4), (5, 3)]),
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..EXTENTS.len(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(ScalarType::UInt8, value),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]);
        let input = image(ScalarType::UInt8, w + 3, h + 3, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::naive()
            .with_tile(Some(tile))
            .with_vector_width(8);
        assert_tiers_match_oracle(&p, &schedule, &[w, h], &inputs)?;
    }
}

/// The exact lifted filter idioms (invert's xor, blur's shifted sum,
/// sharpen's u32 wrap-around negative taps) must run on the fused tier —
/// this is the speedup the benchmarks claim — and agree with the oracle.
#[test]
fn lifted_filter_idioms_run_fused_and_agree() {
    let u32c = |e: Expr| Expr::cast(ScalarType::UInt32, e);
    let neg = |e: Expr| u32c(Expr::mul(Expr::int(4294967295), e));
    let shapes: Vec<(&str, Expr)> = vec![
        (
            "invert",
            Expr::cast(
                ScalarType::UInt8,
                u32c(Expr::bin(BinOp::Xor, Expr::int(255), tap(0, 0))),
            ),
        ),
        (
            "blur",
            Expr::cast(
                ScalarType::UInt8,
                u32c(Expr::bin(
                    BinOp::Shr,
                    u32c(Expr::add(
                        u32c(Expr::add(
                            u32c(Expr::add(
                                Expr::int(4),
                                u32c(Expr::mul(Expr::int(4), tap(1, 1))),
                            )),
                            tap(0, 1),
                        )),
                        tap(2, 1),
                    )),
                    Expr::uint(3),
                )),
            ),
        ),
        (
            "sharpen",
            Expr::cast(
                ScalarType::UInt8,
                u32c(Expr::bin(
                    BinOp::Shr,
                    u32c(Expr::add(
                        u32c(Expr::add(
                            u32c(Expr::add(
                                Expr::int(2),
                                u32c(Expr::mul(Expr::int(8), tap(1, 1))),
                            )),
                            neg(tap(0, 1)),
                        )),
                        neg(tap(2, 1)),
                    )),
                    Expr::uint(2),
                )),
            ),
        ),
    ];
    for (name, value) in shapes {
        let out = Func::pure("out", &["x_0", "x_1"], ScalarType::UInt8, value);
        let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]);
        let input = image(ScalarType::UInt8, 37, 19, 0xF00D);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::stencil_default();

        let before = helium_halide::fused_rows_executed();
        let compiled = p
            .compile(
                &schedule,
                &CompileOptions {
                    backend: ExecBackend::Lowered,
                    simd: Some(SimdMode::ForceSimd),
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let fused = compiled.run(&inputs, &[37, 19]).expect("fused run");
        assert!(
            helium_halide::fused_rows_executed() > before,
            "{name}: the fused tier must actually execute"
        );

        let oracle = Realizer::new(schedule)
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[37, 19], &inputs)
            .expect("oracle");
        assert_eq!(fused, oracle, "{name}: fused tier diverged from oracle");
    }
}
