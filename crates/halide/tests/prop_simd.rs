//! Cross-target differential matrix for the fused SIMD execution tier.
//!
//! The compiled executor has three tiers (fused SIMD lane kernels in four
//! lane families — `[i32; W]`, `[i64; W/2]`, `[f32; W]`, `[f64; W/2]` —
//! per-op typed lane dispatch, per-element fallback — see `exec`'s module
//! docs). This suite pins the lowered backend to a matrix of [`Target`]s via
//! [`CompileOptions::target`] — no global state, so cases can run in
//! parallel — and asserts the outputs are bit-identical to the interpreter
//! oracle:
//!
//! * across every [`ScalarType`] as both input and output element type
//!   (`UInt64` outputs ride the `[i64; W/2]` family, `Float32` outputs the
//!   `[f32; W]` family, `Float64` outputs the `[f64; W/2]` family);
//! * across ISAs: the pinned-scalar tier, the portable lane kernels, and —
//!   on hosts whose detected target carries AVX2 — the hand-written
//!   `core::arch` evaluators, which must be bit-identical to the portable
//!   lanes (on non-AVX2 hosts the arch column degrades to portable and the
//!   dedicated differential test below prints a skip notice);
//! * on odd/prime extents, so interior chunks always leave sub-width tails
//!   (executed as masked or overlapping fused chunks) and border peels;
//! * on border-clamping stencils (negative and past-the-end tap offsets);
//! * on the u32 wrap-around idioms lifted binaries use (`4294967295 * x`
//!   negative taps, `255 ^ x` inversion, logical shifts of wrapped sums);
//! * for the f32 family: on NaN, ±Inf, subnormal and rounding-sensitive
//!   inputs, with rounding-disciplined expressions (every op under a
//!   `cast<float>`, the shape lifted single-precision SSE code takes);
//! * for the f64 family: the same special values with *unrounded*
//!   expressions — f64 lanes are the reference representation, so exactness
//!   comes free.
//!
//! The `HELIUM_FORCE_SCALAR=1` / `HELIUM_FORCE_SIMD=1` / `HELIUM_PORTABLE=1`
//! environment variables apply the same pinning process-wide (read once by
//! [`Target::from_env`]); CI runs the whole test suite under each as
//! separate matrix legs, plus float- and 64-bit-filtered legs that
//! concentrate on the newer lane families.

use helium_halide::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Element types a buffer can carry.
const TYPES: [ScalarType; 7] = [
    ScalarType::UInt8,
    ScalarType::UInt16,
    ScalarType::UInt32,
    ScalarType::UInt64,
    ScalarType::Int32,
    ScalarType::Float32,
    ScalarType::Float64,
];

/// Odd and prime extents: interiors never divide evenly into 8/16/32-lane
/// chunks, so every case exercises the pre/post peels and the sub-width tail.
const EXTENTS: [usize; 6] = [5, 7, 11, 13, 23, 31];

/// Float values that stress the `[f32; W]` family's invariant: NaN
/// propagation, infinities, a value that becomes subnormal after the f32
/// narrowing, the signed zero pair, and f32-rounding-sensitive fractions.
const FLOAT_SPECIALS: [f64; 8] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    1e-40,
    -0.0,
    0.1,
    1.0 / 3.0,
    16_777_217.0, // 2^24 + 1: rounds under f32
];

fn image(ty: ScalarType, w: usize, h: usize, seed: u64) -> Buffer {
    let mut b = Buffer::new(ty, &[w, h]);
    let mut s = seed | 1;
    for (i, c) in b.coords().collect::<Vec<_>>().into_iter().enumerate() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (s >> 29) as i64;
        let value = if ty.is_float() {
            // Sprinkle NaN/Inf/subnormal/rounding-sensitive values among
            // ordinary data so every float case exercises them.
            if i % 7 == 4 {
                Value::Float(FLOAT_SPECIALS[(s >> 33) as usize % FLOAT_SPECIALS.len()])
            } else {
                Value::Float((v % 4096) as f64 / 8.0 - 128.0)
            }
        } else {
            Value::Int(v)
        };
        // Buffer::set casts to the element type, so every type sees its full
        // value range.
        b.set(&c, value);
    }
    b
}

/// A stencil tap on `in` with the given offsets, widened like lifted code.
fn tap(dx: i64, dy: i64) -> Expr {
    Expr::cast(
        ScalarType::UInt32,
        Expr::Image(
            "in".into(),
            vec![
                Expr::add(Expr::var("x_0"), Expr::int(dx)),
                Expr::add(Expr::var("x_1"), Expr::int(dy)),
            ],
        ),
    )
}

/// Stencil value expressions shaped like the lifted Fig. 7 filters plus the
/// shapes that stress the 32-bit lane invariant: u32 wrap-around negative
/// taps, xor-inversion, clamps, selects, ramps and shifted sums.
fn value_strategy() -> impl Strategy<Value = Expr> {
    let off = -3i64..4;
    let leaf = prop_oneof![
        (off.clone(), off.clone()).prop_map(|(dx, dy)| tap(dx, dy)),
        // u32 wrap-around "negative" tap, as lifted sharpen encodes -x.
        (off.clone(), off.clone()).prop_map(|(dx, dy)| Expr::cast(
            ScalarType::UInt32,
            Expr::mul(Expr::int(4294967295), tap(dx, dy))
        )),
        (-300i64..301).prop_map(Expr::int),
        Just(Expr::var("x_0")),
        Just(Expr::var("x_1")),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), -9i64..10).prop_map(|(a, c)| Expr::mul(a, Expr::int(c))),
            // Inversion idiom: 255 ^ x.
            inner
                .clone()
                .prop_map(|a| Expr::bin(BinOp::Xor, Expr::int(255), a)),
            (inner.clone(), 0i64..6).prop_map(|(a, s)| Expr::bin(
                BinOp::Shr,
                Expr::cast(ScalarType::UInt32, a),
                Expr::uint(s)
            )),
            (inner.clone(), 0i64..5).prop_map(|(a, s)| Expr::bin(BinOp::Shl, a, Expr::int(s))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Min, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Max, a, b)),
            (inner.clone(), inner.clone(), inner.clone(), -200i64..201)
                .prop_map(|(c, t, f, k)| Expr::select(Expr::cmp(CmpOp::Lt, c, Expr::int(k)), t, f)),
            inner
                .clone()
                .prop_map(|a| Expr::cast(ScalarType::UInt16, a)),
        ]
    })
}

/// A raw tap on `in` (no widening cast), for float-typed inputs whose loads
/// are bit-exact as-is.
fn ftap(dx: i64, dy: i64) -> Expr {
    Expr::Image(
        "in".into(),
        vec![
            Expr::add(Expr::var("x_0"), Expr::int(dx)),
            Expr::add(Expr::var("x_1"), Expr::int(dy)),
        ],
    )
}

/// Rounding-disciplined float stencils for the `[f32; W]` lane family:
/// every arithmetic op sits under a `cast<float>` — the shape regenerated
/// single-precision SSE code has, since each instruction rounds at f32 —
/// plus the exact-without-rounding ops (min/max, compares, selects) and
/// f32-exact constants.
fn f32_value_strategy() -> impl Strategy<Value = Expr> {
    let f32c = |e: Expr| Expr::cast(ScalarType::Float32, e);
    let off = -2i64..3;
    // All exactly representable in f32; includes the weights miniGMG's
    // smooth uses and the signed-zero/negative cases.
    let consts = [0.5f64, (1.0f32 / 12.0) as f64, 3.25, -2.5, 1.0, -0.0, 255.0];
    let leaf = prop_oneof![
        (off.clone(), off.clone()).prop_map(|(dx, dy)| ftap(dx, dy)),
        prop::sample::select(consts.to_vec())
            .prop_map(|v| Expr::ConstFloat(v, ScalarType::Float32)),
        Just(Expr::var("x_0")),
    ];
    leaf.prop_recursive(3, 20, 2, move |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(move |(a, b)| f32c(Expr::add(a, b))),
            (inner.clone(), inner.clone()).prop_map(move |(a, b)| f32c(Expr::bin(
                BinOp::Sub,
                a,
                b
            ))),
            (inner.clone(), inner.clone()).prop_map(move |(a, b)| f32c(Expr::mul(a, b))),
            (inner.clone(), inner.clone()).prop_map(move |(a, b)| f32c(Expr::bin(
                BinOp::Div,
                a,
                b
            ))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Min, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Max, a, b)),
            inner
                .clone()
                .prop_map(move |a| f32c(Expr::Call(ExternCall::Sqrt, vec![a]))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::select(
                Expr::cmp(CmpOp::Lt, c, Expr::ConstFloat(0.0, ScalarType::Float32)),
                t,
                f
            )),
        ]
    })
}

/// The pinned-target matrix every differential case runs under: the scalar
/// tier, the portable lane kernels, and the detected target's lane kernels
/// (the hand-written AVX2 evaluators on hosts that have them; identical to
/// the portable column elsewhere).
fn target_matrix() -> [(&'static str, Target); 3] {
    [
        ("scalar", Target::portable().with_tier(Tier::Scalar)),
        ("portable-simd", Target::portable().with_tier(Tier::Simd)),
        ("arch-simd", Target::detect().with_tier(Tier::Simd)),
    ]
}

/// Unrounded float stencils for the `[f64; W/2]` lane family: f64 lanes are
/// the reference representation, so no rounding discipline is needed — raw
/// adds, multiplies, divides, square roots, compares and selects over
/// Float64 taps and constants are exact by construction.
fn f64_value_strategy() -> impl Strategy<Value = Expr> {
    let off = -2i64..3;
    let consts = [
        0.5f64,
        1.0 / 12.0,
        3.25,
        -2.5,
        1.0,
        -0.0,
        255.0,
        0.1,
        1.0 / 3.0,
    ];
    let leaf = prop_oneof![
        (off.clone(), off.clone()).prop_map(|(dx, dy)| ftap(dx, dy)),
        prop::sample::select(consts.to_vec())
            .prop_map(|v| Expr::ConstFloat(v, ScalarType::Float64)),
        Just(Expr::var("x_0")),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Div, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Min, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Max, a, b)),
            inner
                .clone()
                .prop_map(|a| Expr::Call(ExternCall::Sqrt, vec![a])),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::select(
                Expr::cmp(CmpOp::Lt, c, Expr::ConstFloat(0.0, ScalarType::Float64)),
                t,
                f
            )),
        ]
    })
}

/// Compare the interpreter oracle with the lowered backend pinned to every
/// target in the matrix, for the given schedule.
fn assert_tiers_match_oracle(
    p: &Pipeline,
    schedule: &Schedule,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
) -> Result<(), TestCaseError> {
    let oracle = Realizer::new(schedule.clone())
        .with_backend(ExecBackend::Interpret)
        .realize(p, extents, inputs)
        .expect("interpreter realize");
    for (name, target) in target_matrix() {
        let compiled = p
            .compile(
                schedule,
                &CompileOptions {
                    backend: ExecBackend::Lowered,
                    target: Some(target),
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let out = compiled.run(inputs, extents).expect("lowered run");
        prop_assert_eq!(
            &out,
            &oracle,
            "{} target diverged from the interpreter under [{}] over {:?}",
            name,
            schedule,
            extents
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance property of the fused SIMD tier: random border-clamping
    /// stencils over every input/output element type, on prime extents, are
    /// bit-identical to the interpreter in both forced modes and across the
    /// vector widths that select different fused chunk sizes.
    #[test]
    fn fused_and_scalar_tiers_match_interpreter(
        in_ty in prop::sample::select(TYPES.to_vec()),
        out_ty in prop::sample::select(TYPES.to_vec()),
        value in value_strategy(),
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..EXTENTS.len(),
        width in prop::sample::select(vec![1usize, 4, 8, 16, 32]),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            out_ty,
            Expr::cast(out_ty, value),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("in", in_ty, 2)]);
        let input = image(in_ty, w + 2, h + 2, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::naive()
            .with_parallel(parallel)
            .with_vector_width(width);
        assert_tiers_match_oracle(&p, &schedule, &[w, h], &inputs)?;
    }

    /// Tiling adds symbolic tail extents to the vectorized loop; the interior
    /// derivation must stay exact under them.
    #[test]
    fn fused_tier_is_exact_under_tiling(
        value in value_strategy(),
        tile in prop::sample::select(vec![(4usize, 4usize), (8, 8), (16, 4), (5, 3)]),
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..EXTENTS.len(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(ScalarType::UInt8, value),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]);
        let input = image(ScalarType::UInt8, w + 3, h + 3, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::naive()
            .with_tile(Some(tile))
            .with_vector_width(8);
        assert_tiers_match_oracle(&p, &schedule, &[w, h], &inputs)?;
    }

    /// The `[f32; W]` lane family's acceptance property: random
    /// rounding-disciplined float stencils over Float32 (and integer-widened)
    /// inputs seeded with NaN/±Inf/subnormal/rounding-sensitive values are
    /// bit-identical to the interpreter in both forced modes, on prime
    /// extents, across widths and under parallelism.
    #[test]
    fn f32_family_matches_interpreter(
        in_ty in prop::sample::select(vec![
            ScalarType::Float32,
            ScalarType::UInt8,
            ScalarType::UInt16,
        ]),
        value in f32_value_strategy(),
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..EXTENTS.len(),
        width in prop::sample::select(vec![1usize, 8, 16, 32]),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::Float32,
            value,
        );
        let p = Pipeline::new(out, vec![ImageParam::new("in", in_ty, 2)]);
        let input = image(in_ty, w + 2, h + 2, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::naive()
            .with_parallel(parallel)
            .with_vector_width(width);
        assert_tiers_match_oracle(&p, &schedule, &[w, h], &inputs)?;
    }

    /// The `[f32; W]` family under tiling: symbolic tail extents drive the
    /// masked/overlapping tail chunks, which must stay bit-exact.
    #[test]
    fn f32_family_is_exact_under_tiling(
        value in f32_value_strategy(),
        tile in prop::sample::select(vec![(4usize, 4usize), (8, 8), (5, 3)]),
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..EXTENTS.len(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let out = Func::pure("out", &["x_0", "x_1"], ScalarType::Float32, value);
        let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::Float32, 2)]);
        let input = image(ScalarType::Float32, w + 3, h + 3, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::naive()
            .with_tile(Some(tile))
            .with_vector_width(8);
        assert_tiers_match_oracle(&p, &schedule, &[w, h], &inputs)?;
    }

    /// The `[i64; W/2]` lane family's acceptance property: the integer
    /// strategy (wrap-around taps, shifted sums, clamps, selects) with
    /// 64-bit outputs — where the i32 wrap proofs are vacuous — stays
    /// bit-identical to the interpreter across widths and extents.
    #[test]
    fn i64_family_matches_interpreter(
        in_ty in prop::sample::select(vec![
            ScalarType::UInt8,
            ScalarType::UInt32,
            ScalarType::UInt64,
            ScalarType::Int32,
        ]),
        value in value_strategy(),
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..EXTENTS.len(),
        width in prop::sample::select(vec![1usize, 8, 16, 32]),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt64,
            Expr::cast(ScalarType::UInt64, value),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("in", in_ty, 2)]);
        let input = image(in_ty, w + 2, h + 2, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::naive()
            .with_parallel(parallel)
            .with_vector_width(width);
        assert_tiers_match_oracle(&p, &schedule, &[w, h], &inputs)?;
    }

    /// The `[f64; W/2]` lane family's acceptance property: random unrounded
    /// double-precision stencils over Float64 (and integer-widened) inputs
    /// seeded with NaN/±Inf/signed-zero values are bit-identical to the
    /// interpreter across the whole target matrix, on prime extents, across
    /// widths and under parallelism.
    #[test]
    fn f64_family_matches_interpreter(
        in_ty in prop::sample::select(vec![
            ScalarType::Float64,
            ScalarType::UInt8,
            ScalarType::UInt16,
        ]),
        value in f64_value_strategy(),
        wi in 0usize..EXTENTS.len(),
        hi in 0usize..EXTENTS.len(),
        width in prop::sample::select(vec![1usize, 8, 16, 32]),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (w, h) = (EXTENTS[wi], EXTENTS[hi]);
        let out = Func::pure("out", &["x_0", "x_1"], ScalarType::Float64, value);
        let p = Pipeline::new(out, vec![ImageParam::new("in", in_ty, 2)]);
        let input = image(in_ty, w + 2, h + 2, seed);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::naive()
            .with_parallel(parallel)
            .with_vector_width(width);
        assert_tiers_match_oracle(&p, &schedule, &[w, h], &inputs)?;
    }
}

/// The exact lifted filter idioms (invert's xor, blur's shifted sum,
/// sharpen's u32 wrap-around negative taps) must run on the fused tier —
/// this is the speedup the benchmarks claim — and agree with the oracle.
#[test]
fn lifted_filter_idioms_run_fused_and_agree() {
    let u32c = |e: Expr| Expr::cast(ScalarType::UInt32, e);
    let neg = |e: Expr| u32c(Expr::mul(Expr::int(4294967295), e));
    let shapes: Vec<(&str, Expr)> = vec![
        (
            "invert",
            Expr::cast(
                ScalarType::UInt8,
                u32c(Expr::bin(BinOp::Xor, Expr::int(255), tap(0, 0))),
            ),
        ),
        (
            "blur",
            Expr::cast(
                ScalarType::UInt8,
                u32c(Expr::bin(
                    BinOp::Shr,
                    u32c(Expr::add(
                        u32c(Expr::add(
                            u32c(Expr::add(
                                Expr::int(4),
                                u32c(Expr::mul(Expr::int(4), tap(1, 1))),
                            )),
                            tap(0, 1),
                        )),
                        tap(2, 1),
                    )),
                    Expr::uint(3),
                )),
            ),
        ),
        (
            "sharpen",
            Expr::cast(
                ScalarType::UInt8,
                u32c(Expr::bin(
                    BinOp::Shr,
                    u32c(Expr::add(
                        u32c(Expr::add(
                            u32c(Expr::add(
                                Expr::int(2),
                                u32c(Expr::mul(Expr::int(8), tap(1, 1))),
                            )),
                            neg(tap(0, 1)),
                        )),
                        neg(tap(2, 1)),
                    )),
                    Expr::uint(2),
                )),
            ),
        ),
    ];
    for (name, value) in shapes {
        let out = Func::pure("out", &["x_0", "x_1"], ScalarType::UInt8, value);
        let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]);
        let input = image(ScalarType::UInt8, 37, 19, 0xF00D);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::stencil_default();

        let counters = CounterSnapshot::take();
        let compiled = p
            .compile(
                &schedule,
                &CompileOptions {
                    backend: ExecBackend::Lowered,
                    target: Some(Target::detect().with_tier(Tier::Simd)),
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let fused = compiled.run(&inputs, &[37, 19]).expect("fused run");
        assert!(
            counters.delta().fused_rows > 0,
            "{name}: the fused tier must actually execute"
        );

        let oracle = Realizer::new(schedule)
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[37, 19], &inputs)
            .expect("oracle");
        assert_eq!(fused, oracle, "{name}: fused tier diverged from oracle");
    }
}

/// The miniGMG-smooth idiom — a rounding-disciplined Float32 weighted
/// stencil — must run on the `[f32; W]` lane family (this is the speedup the
/// float benchmark column claims) and agree with the oracle bit-for-bit on
/// inputs including NaN/Inf/subnormals.
#[test]
fn f32_smooth_idiom_runs_fused_and_agrees() {
    let f32c = |e: Expr| Expr::cast(ScalarType::Float32, e);
    let wn = Expr::ConstFloat((1.0f32 / 12.0) as f64, ScalarType::Float32);
    let wc = Expr::ConstFloat(0.5, ScalarType::Float32);
    // nsum rounds after every add, exactly like the regenerated SSE code.
    let nsum = f32c(Expr::add(
        f32c(Expr::add(
            f32c(Expr::add(ftap(-1, 0), ftap(1, 0))),
            ftap(0, -1),
        )),
        ftap(0, 1),
    ));
    let value = f32c(Expr::add(
        f32c(Expr::mul(nsum, wn)),
        f32c(Expr::mul(ftap(0, 0), wc)),
    ));
    let out = Func::pure("out", &["x_0", "x_1"], ScalarType::Float32, value);
    let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::Float32, 2)]);
    let input = image(ScalarType::Float32, 39, 21, 0x5EED);
    let inputs = RealizeInputs::new().with_image("in", &input);
    let schedule = Schedule::stencil_default();

    let compiled = p
        .compile(
            &schedule,
            &CompileOptions {
                backend: ExecBackend::Lowered,
                target: Some(Target::detect().with_tier(Tier::Simd)),
                ..CompileOptions::default()
            },
        )
        .expect("compile");
    let counters = CounterSnapshot::take();
    let fused = compiled.run(&inputs, &[37, 19]).expect("fused run");
    assert!(
        counters.delta().fused_rows > 0,
        "the f32 fused tier must actually execute"
    );
    let counts = compiled
        .fused_store_counts(&inputs, &[37, 19])
        .expect("counts");
    assert_eq!(counts.lanes_f32, 1, "smooth must fuse on f32 lanes");
    assert!(counts.total() > 0);

    let oracle = Realizer::new(schedule)
        .with_backend(ExecBackend::Interpret)
        .realize(&p, &[37, 19], &inputs)
        .expect("oracle");
    assert_eq!(fused, oracle, "f32 smooth diverged from oracle");
}

/// The histogram-binning idiom — 64-bit weighted accumulation over narrow
/// taps — must run on the `[i64; W/2]` lane family and agree with the
/// oracle.
#[test]
fn i64_histogram_idiom_runs_fused_and_agrees() {
    let u64c = |e: Expr| Expr::cast(ScalarType::UInt64, e);
    // Bin-weighted sum exceeding 32 bits: tap * (2^32 + 1) + (tap' << 33).
    let value = u64c(Expr::add(
        Expr::mul(tap(0, 0), Expr::int(0x1_0000_0001)),
        Expr::bin(BinOp::Shl, u64c(tap(1, 1)), Expr::int(33)),
    ));
    let out = Func::pure("out", &["x_0", "x_1"], ScalarType::UInt64, value);
    let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]);
    let input = image(ScalarType::UInt8, 39, 21, 0xB16B);
    let inputs = RealizeInputs::new().with_image("in", &input);
    let schedule = Schedule::stencil_default();

    let compiled = p
        .compile(
            &schedule,
            &CompileOptions {
                backend: ExecBackend::Lowered,
                target: Some(Target::detect().with_tier(Tier::Simd)),
                ..CompileOptions::default()
            },
        )
        .expect("compile");
    let counters = CounterSnapshot::take();
    let fused = compiled.run(&inputs, &[37, 19]).expect("fused run");
    // 37 does not divide any chunk width: the sub-width interior tail must
    // have run as a fused (masked or overlapping) chunk, not a scalar peel.
    assert!(
        counters.delta().fused_tails > 0,
        "sub-width tails must stay on tier 1"
    );
    let counts = compiled
        .fused_store_counts(&inputs, &[37, 19])
        .expect("counts");
    assert_eq!(
        counts.lanes_i64, 1,
        "histogram binning must fuse on i64 lanes"
    );

    let oracle = Realizer::new(schedule)
        .with_backend(ExecBackend::Interpret)
        .realize(&p, &[37, 19], &inputs)
        .expect("oracle");
    assert_eq!(fused, oracle, "i64 histogram diverged from oracle");
}

/// The dedicated arch differential: on AVX2 hosts, pipelines compiled with
/// an explicit [`Feature::Avx2`] target must execute the hand-written
/// `core::arch` kernels (run-time counter guard — equality alone would be
/// vacuous if dispatch silently fell back) and produce bytes identical to
/// the portable lane kernels, across all four lane families on prime
/// extents. On hosts without AVX2 the test prints a skip notice and passes.
#[test]
fn arch_kernels_match_portable_lanes_bit_for_bit() {
    if !Target::detect().has(Feature::Avx2) {
        eprintln!("skipping arch differential: host does not report AVX2");
        return;
    }
    let u32c = |e: Expr| Expr::cast(ScalarType::UInt32, e);
    let neg = |e: Expr| u32c(Expr::mul(Expr::int(4294967295), e));
    let shapes: Vec<(&str, ScalarType, ScalarType, Expr)> = vec![
        (
            "i32-sharpen",
            ScalarType::UInt8,
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                u32c(Expr::bin(
                    BinOp::Shr,
                    u32c(Expr::add(
                        u32c(Expr::add(
                            u32c(Expr::add(
                                Expr::int(2),
                                u32c(Expr::mul(Expr::int(8), tap(1, 1))),
                            )),
                            neg(tap(0, 1)),
                        )),
                        neg(tap(2, 1)),
                    )),
                    Expr::uint(2),
                )),
            ),
        ),
        (
            "i64-binning",
            ScalarType::UInt8,
            ScalarType::UInt64,
            Expr::cast(
                ScalarType::UInt64,
                Expr::add(
                    Expr::mul(tap(0, 0), Expr::int(0x1_0000_0001)),
                    Expr::bin(
                        BinOp::Shl,
                        Expr::cast(ScalarType::UInt64, tap(1, 1)),
                        Expr::int(33),
                    ),
                ),
            ),
        ),
        ("f32-smooth", ScalarType::Float32, ScalarType::Float32, {
            let f32c = |e: Expr| Expr::cast(ScalarType::Float32, e);
            let wn = Expr::ConstFloat((1.0f32 / 12.0) as f64, ScalarType::Float32);
            f32c(Expr::add(
                f32c(Expr::mul(
                    f32c(Expr::add(
                        f32c(Expr::add(ftap(-1, 0), ftap(1, 0))),
                        ftap(0, -1),
                    )),
                    wn,
                )),
                ftap(0, 0),
            ))
        }),
        (
            "f64-smooth",
            ScalarType::Float64,
            ScalarType::Float64,
            Expr::add(
                Expr::mul(
                    Expr::add(Expr::add(ftap(-1, 0), ftap(1, 0)), ftap(0, -1)),
                    Expr::ConstFloat(1.0 / 12.0, ScalarType::Float64),
                ),
                Expr::mul(ftap(0, 0), Expr::ConstFloat(0.5, ScalarType::Float64)),
            ),
        ),
    ];
    for (name, in_ty, out_ty, value) in shapes {
        let out = Func::pure("out", &["x_0", "x_1"], out_ty, value);
        let p = Pipeline::new(out, vec![ImageParam::new("in", in_ty, 2)]);
        let input = image(in_ty, 41, 23, 0xA5A5);
        let inputs = RealizeInputs::new().with_image("in", &input);
        for (w, h) in [(37usize, 19usize), (31, 13), (8, 8)] {
            let run = |target: Target| {
                let compiled = p
                    .compile(
                        &Schedule::stencil_default(),
                        &CompileOptions {
                            backend: ExecBackend::Lowered,
                            target: Some(target),
                            ..CompileOptions::default()
                        },
                    )
                    .expect("compile");
                compiled.run(&inputs, &[w, h]).expect("run")
            };
            let portable = run(Target::portable().with_tier(Tier::Simd));
            let before = helium_halide::arch_rows_executed();
            let arch = run(Target::with_features(&[Feature::Avx2]).with_tier(Tier::Simd));
            assert!(
                helium_halide::arch_rows_executed() > before,
                "{name} ({w}x{h}): the AVX2 kernels must actually execute"
            );
            assert_eq!(
                arch, portable,
                "{name} ({w}x{h}): arch kernels diverged from portable lanes"
            );
        }
    }
}
