//! Fuzz-style soundness suite for the interval analysis the fused SIMD lane
//! kernels' exactness proofs stand on.
//!
//! Two properties, both of the form "random expression tree, evaluated
//! concretely, must agree with the static analysis":
//!
//! * **`combine` / `expr_interval` soundness.** For every random integer
//!   expression tree and every random assignment of the free variables
//!   within their declared bounds, the concretely evaluated value must land
//!   inside the derived interval. An under-approximation here would let the
//!   `[i32; W]` kernel compiler emit a value-sensitive op (shift, min/max,
//!   compare, select) whose 32-bit result silently differs from the
//!   reference — exactly the class of bug the sound `Or`/`Xor`/`Shl`/`Div`/
//!   `Mod`/`Shr` rules (and the narrowing-cast rule) fixed.
//! * **`affine_decompose` faithfulness.** When decomposition succeeds, the
//!   affine form `konst + Σ coeff·var` must reproduce the concrete value of
//!   the expression at every assignment — the fused tier uses these
//!   coefficients to classify loads as contiguous/broadcast and to derive
//!   the in-range interior, so a wrong coefficient mis-addresses whole rows.
//!
//! Expressions deliberately include the extreme constants (±2^62, i64
//! bounds) that drive the wrap-around and saturation corners of every
//! `combine` rule.

use helium_halide::bounds::{affine_decompose, expr_interval, Interval};
use helium_halide::expr::{eval_binop, BinOp, Expr};
use helium_halide::types::{ScalarType, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Variables the trees may reference, with their declared bounds.
const VARS: [(&str, i64, i64); 3] = [("x", 0, 95), ("y", -7, 63), ("z", -1000, 1000)];

/// Constants that stress every `combine` rule's wrap/saturation corners.
const EXTREME: [i64; 12] = [
    i64::MIN,
    i64::MAX,
    -(1 << 62),
    1 << 62,
    -(1 << 40),
    (1 << 40) + 7,
    u32::MAX as i64,
    -1,
    0,
    1,
    63,
    255,
];

fn var_bounds() -> BTreeMap<String, Interval> {
    VARS.iter()
        .map(|(n, lo, hi)| (n.to_string(), Interval::new(*lo, *hi)))
        .collect()
}

fn params() -> BTreeMap<String, Value> {
    [("k".to_string(), Value::Int(37))].into_iter().collect()
}

/// Concretely evaluate an integer expression tree with the exact reference
/// semantics ([`eval_binop`], [`Value::cast`], strict select). Returns `None`
/// only for the one case where the reference itself panics (`i64::MIN / -1`
/// and the matching `%`), which the property skips.
fn eval(e: &Expr, env: &BTreeMap<String, i64>) -> Option<i64> {
    Some(match e {
        Expr::Var(n) | Expr::RVar(n) => env[n.as_str()],
        Expr::ConstInt(v, _) => *v,
        Expr::Param(n, _) => match params()[n.as_str()] {
            Value::Int(v) => v,
            Value::Float(f) => f as i64,
        },
        Expr::Cast(ty, inner) => Value::Int(eval(inner, env)?).cast(*ty).as_i64(),
        Expr::Binary(op, a, b) => {
            let (x, y) = (eval(a, env)?, eval(b, env)?);
            if matches!(op, BinOp::Div | BinOp::Mod) && x == i64::MIN && y == -1 {
                return None; // the reference panics on this overflow
            }
            eval_binop(*op, Value::Int(x), Value::Int(y)).as_i64()
        }
        Expr::Cmp(op, a, b) => {
            helium_halide::expr::eval_cmp(*op, Value::Int(eval(a, env)?), Value::Int(eval(b, env)?))
                .as_i64()
        }
        Expr::Select(c, t, f) => {
            let (c, t, f) = (eval(c, env)?, eval(t, env)?, eval(f, env)?);
            if c != 0 {
                t
            } else {
                f
            }
        }
        _ => unreachable!("strategy emits integer leaves and operators only"),
    })
}

/// Random integer expression trees over the declared variables, every binary
/// operator (including the wrap-prone shifts and division), narrowing casts
/// and comparisons/selects.
fn int_expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop::sample::select(VARS.to_vec()).prop_map(|(n, _, _)| Expr::var(n)),
        prop::sample::select(EXTREME.to_vec()).prop_map(Expr::int),
        (-300i64..301).prop_map(Expr::int),
        Just(Expr::Param("k".into(), ScalarType::Int32)),
    ];
    let ops = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Shr,
        BinOp::Shl,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Min,
        BinOp::Max,
    ];
    let casts = [
        ScalarType::UInt8,
        ScalarType::UInt16,
        ScalarType::UInt32,
        ScalarType::Int32,
        ScalarType::UInt64,
    ];
    leaf.prop_recursive(4, 32, 2, move |inner| {
        prop_oneof![
            (
                prop::sample::select(ops.to_vec()),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (prop::sample::select(casts.to_vec()), inner.clone())
                .prop_map(|(ty, e)| Expr::cast(ty, e)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::select(
                Expr::cmp(helium_halide::expr::CmpOp::Lt, c, Expr::int(7)),
                t,
                f
            )),
        ]
    })
}

/// Affine-friendly trees: add/sub/mul-by-const chains over variables, params
/// and modest constants, under value-preserving casts — the shapes index
/// expressions actually take. Constants stay small enough that the affine
/// evaluation cannot overflow (indices in practice are buffer-sized).
fn affine_expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop::sample::select(VARS.to_vec()).prop_map(|(n, _, _)| Expr::var(n)),
        (-1000i64..1001).prop_map(Expr::int),
        Just(Expr::Param("k".into(), ScalarType::Int32)),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), -16i64..17).prop_map(|(a, c)| Expr::mul(a, Expr::int(c))),
            (inner.clone(), -16i64..17).prop_map(|(a, c)| Expr::mul(Expr::int(c), a)),
            inner.clone().prop_map(|a| Expr::cast(ScalarType::Int32, a)),
            inner
                .clone()
                .prop_map(|a| Expr::cast(ScalarType::UInt64, a)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Soundness: the concrete value always lands inside the derived
    /// interval, for every assignment of the variables within their bounds.
    #[test]
    fn expr_interval_contains_every_concrete_value(
        e in int_expr_strategy(),
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
        fz in 0.0f64..1.0,
    ) {
        let bounds = var_bounds();
        let iv = expr_interval(&e, &bounds, &params());
        let mut env = BTreeMap::new();
        for ((name, lo, hi), f) in VARS.iter().zip([fx, fy, fz]) {
            let v = lo + ((hi - lo) as f64 * f) as i64;
            env.insert(name.to_string(), v.clamp(*lo, *hi));
        }
        if let Some(v) = eval(&e, &env) {
            prop_assert!(
                iv.contains(v),
                "{e} = {v} at {env:?}, outside derived interval [{}, {}]",
                iv.min,
                iv.max
            );
        }
    }

    /// Faithfulness: a successful affine decomposition reproduces the
    /// concrete value exactly at every assignment.
    #[test]
    fn affine_decompose_matches_concrete_evaluation(
        e in affine_expr_strategy(),
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
        fz in 0.0f64..1.0,
    ) {
        if let Some((coeffs, konst)) = affine_decompose(&e, &params()) {
            let mut env = BTreeMap::new();
            for ((name, lo, hi), f) in VARS.iter().zip([fx, fy, fz]) {
                let v = lo + ((hi - lo) as f64 * f) as i64;
                env.insert(name.to_string(), v.clamp(*lo, *hi));
            }
            let affine_value = konst
                + coeffs
                    .iter()
                    .map(|(v, c)| c * env[v.as_str()])
                    .sum::<i64>();
            let concrete = eval(&e, &env).expect("affine shapes cannot hit the div corner");
            prop_assert_eq!(
                affine_value,
                concrete,
                "{} decomposed to {:?} + {} but evaluates to {} at {:?}",
                e,
                coeffs,
                konst,
                concrete,
                env
            );
        }
    }
}
