//! Unified backend-selection API: which execution *tier* the runner may use
//! (fused lane kernels vs per-op lanes vs per-element fallback) and which
//! *ISA features* the fused kernels may exploit (explicit AVX2 `core::arch`
//! paths vs the portable constant-trip lane loops).
//!
//! A [`Target`] is resolved **once at compile time** — [`Pipeline::compile`]
//! stores the resolved value on the [`CompiledPipeline`] — and every dispatch
//! site (tier selection, fused builders, reduce kernels, the `arch` module's
//! AVX2 chunk evaluators) reads that one value. This replaces the previous
//! tangle of `SimdMode` + `HELIUM_FORCE_SCALAR` / `HELIUM_FORCE_SIMD` env
//! reads + `CompileOptions::simd`, each consulted in a different place.
//!
//! [`Pipeline::compile`]: crate::func::Pipeline::compile
//! [`CompiledPipeline`]: crate::compile::CompiledPipeline
//!
//! Construction:
//!
//! - [`Target::detect`] — the host's best target: `Auto` tier plus every ISA
//!   feature the running CPU reports (AVX2 via `is_x86_feature_detected!`).
//! - [`Target::portable`] — `Auto` tier, no ISA features: fused kernels run
//!   the portable lane loops only. The bit-exactness oracle configuration.
//! - [`Target::with_features`] — `Auto` tier with an explicit feature list
//!   (requested features absent from the host fall back safely at run time;
//!   see [`Target::effective_isa`]).
//! - [`Target::from_env`] — [`Target::detect`] adjusted by the environment
//!   pins. This is the **only** place in the workspace that reads
//!   `HELIUM_FORCE_SCALAR` / `HELIUM_FORCE_SIMD` / `HELIUM_PORTABLE`.
//! - [`Target::current`] — the process-wide override (set via
//!   [`set_target_override`], used by benchmarks to time tiers from one
//!   process) if present, else [`Target::from_env`]. This is what
//!   `CompileOptions { target: None, .. }` resolves to.
//!
//! All targets produce bit-identical buffers; the knob exists for
//! differential testing, benchmarking, and honest fallback on older hosts.

use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::OnceLock;

/// Which execution tiers the runner may use for stores that have a fused
/// SIMD kernel. All tiers produce bit-identical buffers; the knob exists for
/// differential testing and benchmarking of the tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tier {
    /// Fused kernels run under vectorized loops; everything else uses the
    /// per-op tier.
    #[default]
    Auto,
    /// Never use fused kernels (the per-op lane tier handles every store).
    Scalar,
    /// Use fused kernels wherever one was compiled, even under serial
    /// innermost loops.
    Simd,
}

/// An ISA feature a [`Target`] may carry. Fused kernels only use a feature
/// when the running CPU also reports it (see [`Target::effective_isa`]), so
/// requesting one on an older host degrades to portable lanes, never UB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feature {
    /// 256-bit AVX2 integer + float vectors (`core::arch::x86_64`).
    Avx2,
}

const FEATURE_AVX2: u8 = 1 << 0;

/// The instruction-set family a fused chunk actually executes on, resolved
/// from a [`Target`] by [`Target::effective_isa`] at run time. Reported per
/// store by `StoreProfile::selected_isa` so the tuner can score it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Isa {
    /// Portable constant-trip lane loops (LLVM auto-vectorized).
    #[default]
    Portable,
    /// Hand-written AVX2 `core::arch` chunk evaluators.
    Avx2,
}

impl Isa {
    /// Stable lowercase tag, used in profiles and bench reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Isa::Portable => "portable",
            Isa::Avx2 => "avx2",
        }
    }
}

/// A resolved backend selection: execution [`Tier`] plus the set of ISA
/// [`Feature`]s the fused kernels may exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Target {
    tier: Tier,
    features: u8,
}

/// Process-wide override set by [`set_target_override`]: bit 15 = set, bits
/// 0..2 = tier, bits 4..12 = feature bitset.
static TARGET_OVERRIDE: AtomicU16 = AtomicU16::new(0);

const OVERRIDE_SET: u16 = 1 << 15;

fn host_features() -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return FEATURE_AVX2;
        }
    }
    0
}

impl Target {
    /// The host's best target: `Auto` tier plus every ISA feature the
    /// running CPU reports.
    pub fn detect() -> Target {
        Target {
            tier: Tier::Auto,
            features: host_features(),
        }
    }

    /// `Auto` tier with no ISA features: fused kernels run the portable lane
    /// loops only. This is the bit-exactness oracle configuration the
    /// differential matrix compares arch kernels against.
    pub fn portable() -> Target {
        Target {
            tier: Tier::Auto,
            features: 0,
        }
    }

    /// `Auto` tier with exactly the given ISA features. Features the host
    /// lacks are carried but never executed ([`Target::effective_isa`]
    /// re-checks runtime detection), so this is safe on any machine.
    pub fn with_features(features: &[Feature]) -> Target {
        let mut bits = 0u8;
        for f in features {
            bits |= match f {
                Feature::Avx2 => FEATURE_AVX2,
            };
        }
        Target {
            tier: Tier::Auto,
            features: bits,
        }
    }

    /// This target with its execution tier replaced.
    pub fn with_tier(self, tier: Tier) -> Target {
        Target { tier, ..self }
    }

    /// The execution tier this target pins (or `Auto`).
    pub fn tier(self) -> Tier {
        self.tier
    }

    /// Whether this target carries the given ISA feature.
    pub fn has(self, feature: Feature) -> bool {
        let bit = match feature {
            Feature::Avx2 => FEATURE_AVX2,
        };
        self.features & bit != 0
    }

    /// The carried ISA features, in a stable order.
    pub fn features(self) -> Vec<Feature> {
        let mut out = Vec::new();
        if self.features & FEATURE_AVX2 != 0 {
            out.push(Feature::Avx2);
        }
        out
    }

    /// Stable `+`-joined lowercase tag of the carried features (empty when
    /// none), used to key schedule caches and trial logs so tuned schedules
    /// never migrate across ISAs: `"avx2"`, or `""` for portable.
    pub fn feature_tag(self) -> String {
        let mut parts = Vec::new();
        if self.features & FEATURE_AVX2 != 0 {
            parts.push("avx2");
        }
        parts.join("+")
    }

    /// The ISA the fused chunk evaluators will actually execute on: a
    /// carried feature only counts when the running CPU also reports it,
    /// which makes dispatching into `#[target_feature]` code sound and gives
    /// automatic portable fallback on older hosts.
    pub fn effective_isa(self) -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if self.features & FEATURE_AVX2 != 0 && std::arch::is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        Isa::Portable
    }

    /// [`Target::detect`] adjusted by the environment pins, computed once
    /// per process. The only reader of the `HELIUM_*` selection variables:
    ///
    /// - `HELIUM_PORTABLE=1` — drop all ISA features (portable lanes only).
    /// - `HELIUM_FORCE_SCALAR=1` — pin the `Scalar` tier.
    /// - `HELIUM_FORCE_SIMD=1` — pin the `Simd` tier (`FORCE_SCALAR` wins
    ///   if both are set, matching the historical precedence).
    pub fn from_env() -> Target {
        static ENV_TARGET: OnceLock<Target> = OnceLock::new();
        *ENV_TARGET.get_or_init(|| {
            let truthy = |name: &str| std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0");
            let mut t = Target::detect();
            if truthy("HELIUM_PORTABLE") {
                t.features = 0;
            }
            if truthy("HELIUM_FORCE_SCALAR") {
                t.tier = Tier::Scalar;
            } else if truthy("HELIUM_FORCE_SIMD") {
                t.tier = Tier::Simd;
            }
            t
        })
    }

    /// The target `CompileOptions { target: None, .. }` resolves to: the
    /// process-wide override if one is set, else [`Target::from_env`].
    pub fn current() -> Target {
        let v = TARGET_OVERRIDE.load(Ordering::Relaxed);
        if v & OVERRIDE_SET != 0 {
            Target::decode(v)
        } else {
            Target::from_env()
        }
    }

    fn encode(self) -> u16 {
        let tier = match self.tier {
            Tier::Auto => 0u16,
            Tier::Scalar => 1,
            Tier::Simd => 2,
        };
        OVERRIDE_SET | tier | ((self.features as u16) << 4)
    }

    fn decode(v: u16) -> Target {
        let tier = match v & 0b11 {
            1 => Tier::Scalar,
            2 => Tier::Simd,
            _ => Tier::Auto,
        };
        Target {
            tier,
            features: ((v >> 4) & 0xff) as u8,
        }
    }
}

/// Override (or with `None`, un-override) the process-wide [`Target`] that
/// [`Target::current`] returns. Benchmarks use this to time the scalar,
/// portable-SIMD and arch tiers from one process; per-pipeline control is
/// available via `CompileOptions::target`.
pub fn set_target_override(target: Option<Target>) {
    let v = match target {
        None => 0,
        Some(t) => t.encode(),
    };
    TARGET_OVERRIDE.store(v, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_target_has_no_features_and_auto_tier() {
        let t = Target::portable();
        assert_eq!(t.tier(), Tier::Auto);
        assert!(!t.has(Feature::Avx2));
        assert_eq!(t.feature_tag(), "");
        assert_eq!(t.effective_isa(), Isa::Portable);
    }

    #[test]
    fn with_features_round_trips_and_tags() {
        let t = Target::with_features(&[Feature::Avx2]);
        assert!(t.has(Feature::Avx2));
        assert_eq!(t.features(), vec![Feature::Avx2]);
        assert_eq!(t.feature_tag(), "avx2");
    }

    #[test]
    fn detect_effective_isa_matches_carried_features() {
        let t = Target::detect();
        // On AVX2 hosts detect() carries the feature and resolves to the
        // arch ISA; elsewhere both sides are portable. Either way they agree.
        let expect = if t.has(Feature::Avx2) {
            Isa::Avx2
        } else {
            Isa::Portable
        };
        assert_eq!(t.effective_isa(), expect);
    }

    #[test]
    fn with_tier_overrides_only_the_tier() {
        let t = Target::with_features(&[Feature::Avx2]).with_tier(Tier::Scalar);
        assert_eq!(t.tier(), Tier::Scalar);
        assert!(t.has(Feature::Avx2));
    }

    #[test]
    fn override_encode_decode_round_trips() {
        for tier in [Tier::Auto, Tier::Scalar, Tier::Simd] {
            for feats in [&[][..], &[Feature::Avx2][..]] {
                let t = Target::with_features(feats).with_tier(tier);
                assert_eq!(Target::decode(t.encode()), t);
            }
        }
    }
}
