//! Interval-based bounds inference for affine (and mildly non-affine) index
//! expressions, used to size intermediate buffers when a producer func is
//! scheduled `compute_root`.

use crate::expr::{BinOp, Expr};
use crate::types::Value;
use std::collections::BTreeMap;

/// A closed integer interval `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub min: i64,
    /// Inclusive upper bound.
    pub max: i64,
}

impl Interval {
    /// A single-point interval.
    pub fn point(v: i64) -> Interval {
        Interval { min: v, max: v }
    }

    /// Construct an interval, normalizing the bound order.
    pub fn new(a: i64, b: i64) -> Interval {
        Interval {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Union of two intervals.
    pub fn union(self, other: Interval) -> Interval {
        Interval {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Width of the interval (number of integers it contains).
    pub fn extent(self) -> i64 {
        self.max - self.min + 1
    }
}

/// Compute the interval of possible values of `expr` given intervals for the
/// free variables (pure vars and reduction vars) and concrete values for
/// scalar parameters.
///
/// Unknown sub-expressions (image loads, func references) are treated
/// conservatively as `[0, i32::MAX]`, which is adequate for sizing buffers of
/// stencil pipelines where index expressions are affine in the loop variables.
pub fn expr_interval(
    expr: &Expr,
    var_bounds: &BTreeMap<String, Interval>,
    params: &BTreeMap<String, Value>,
) -> Interval {
    match expr {
        Expr::Var(name) | Expr::RVar(name) => var_bounds.get(name).copied().unwrap_or(Interval {
            min: 0,
            max: i32::MAX as i64,
        }),
        Expr::ConstInt(v, _) => Interval::point(*v),
        Expr::ConstFloat(v, _) => Interval::point(*v as i64),
        Expr::Param(name, _) => params
            .get(name)
            .map(|v| Interval::point(v.as_i64()))
            .unwrap_or(Interval {
                min: 0,
                max: i32::MAX as i64,
            }),
        Expr::Cast(_, e) => expr_interval(e, var_bounds, params),
        Expr::Binary(op, a, b) => {
            let ia = expr_interval(a, var_bounds, params);
            let ib = expr_interval(b, var_bounds, params);
            combine(*op, ia, ib)
        }
        Expr::Cmp(..) => Interval { min: 0, max: 1 },
        Expr::Select(_, t, e) => {
            expr_interval(t, var_bounds, params).union(expr_interval(e, var_bounds, params))
        }
        Expr::Call(..) | Expr::Image(..) | Expr::FuncRef(..) => Interval {
            min: 0,
            max: i32::MAX as i64,
        },
    }
}

fn combine(op: BinOp, a: Interval, b: Interval) -> Interval {
    let corners = |f: &dyn Fn(i64, i64) -> i64| {
        let cs = [
            f(a.min, b.min),
            f(a.min, b.max),
            f(a.max, b.min),
            f(a.max, b.max),
        ];
        Interval {
            min: *cs.iter().min().expect("non-empty"),
            max: *cs.iter().max().expect("non-empty"),
        }
    };
    match op {
        BinOp::Add => Interval {
            min: a.min.saturating_add(b.min),
            max: a.max.saturating_add(b.max),
        },
        BinOp::Sub => Interval {
            min: a.min.saturating_sub(b.max),
            max: a.max.saturating_sub(b.min),
        },
        BinOp::Mul => corners(&|x, y| x.saturating_mul(y)),
        BinOp::Div => corners(&|x, y| if y == 0 { 0 } else { x / y }),
        BinOp::Min => Interval {
            min: a.min.min(b.min),
            max: a.max.min(b.max),
        },
        BinOp::Max => Interval {
            min: a.min.max(b.min),
            max: a.max.max(b.max),
        },
        BinOp::Shr => corners(&|x, y| if y < 0 { x } else { x >> (y.min(63)) }),
        BinOp::Shl => corners(&|x, y| {
            if y < 0 {
                x
            } else {
                x.saturating_shl(y.min(63) as u32)
            }
        }),
        // Bitwise/mod results are hard to bound tightly; be conservative but
        // keep the result non-negative when both inputs are.
        BinOp::Mod | BinOp::And | BinOp::Or | BinOp::Xor => {
            if a.min >= 0 && b.min >= 0 {
                Interval {
                    min: 0,
                    max: a.max.max(b.max),
                }
            } else {
                Interval {
                    min: i32::MIN as i64,
                    max: i32::MAX as i64,
                }
            }
        }
    }
}

trait SaturatingShl {
    fn saturating_shl(self, s: u32) -> i64;
}

impl SaturatingShl for i64 {
    fn saturating_shl(self, s: u32) -> i64 {
        self.checked_shl(s)
            .unwrap_or(if self >= 0 { i64::MAX } else { i64::MIN })
    }
}

/// For every func referenced by `expr`, union the intervals of each of its
/// index arguments under the given variable bounds, accumulating into `out`.
pub fn accumulate_func_bounds(
    expr: &Expr,
    var_bounds: &BTreeMap<String, Interval>,
    params: &BTreeMap<String, Value>,
    out: &mut BTreeMap<String, Vec<Interval>>,
) {
    expr.visit(&mut |e| {
        if let Expr::FuncRef(name, args) = e {
            let entry = out
                .entry(name.clone())
                .or_insert_with(|| vec![Interval::point(0); args.len()]);
            for (d, arg) in args.iter().enumerate() {
                let i = expr_interval(arg, var_bounds, params);
                if d < entry.len() {
                    entry[d] = entry[d].union(i);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(pairs: &[(&str, i64, i64)]) -> BTreeMap<String, Interval> {
        pairs
            .iter()
            .map(|(n, a, b)| (n.to_string(), Interval::new(*a, *b)))
            .collect()
    }

    #[test]
    fn affine_interval() {
        // x + 2 over x in [0, 9] => [2, 11]
        let e = Expr::add(Expr::var("x"), Expr::int(2));
        let i = expr_interval(&e, &bounds(&[("x", 0, 9)]), &BTreeMap::new());
        assert_eq!(i, Interval { min: 2, max: 11 });
        assert_eq!(i.extent(), 10);
    }

    #[test]
    fn multiplication_corners() {
        // 3*x - 1 over x in [0, 4] => [-1, 11]
        let e = Expr::bin(
            BinOp::Sub,
            Expr::mul(Expr::int(3), Expr::var("x")),
            Expr::int(1),
        );
        let i = expr_interval(&e, &bounds(&[("x", 0, 4)]), &BTreeMap::new());
        assert_eq!(i, Interval { min: -1, max: 11 });
    }

    #[test]
    fn select_unions_branches() {
        let e = Expr::select(
            Expr::cmp(crate::expr::CmpOp::Lt, Expr::var("x"), Expr::int(2)),
            Expr::int(0),
            Expr::int(255),
        );
        let i = expr_interval(&e, &bounds(&[("x", 0, 9)]), &BTreeMap::new());
        assert_eq!(i, Interval { min: 0, max: 255 });
    }

    #[test]
    fn params_are_points() {
        let e = Expr::add(
            Expr::Param("w".into(), crate::types::ScalarType::Int32),
            Expr::int(1),
        );
        let mut params = BTreeMap::new();
        params.insert("w".to_string(), Value::Int(100));
        let i = expr_interval(&e, &BTreeMap::new(), &params);
        assert_eq!(i, Interval::point(101));
    }

    #[test]
    fn func_bounds_accumulate_across_references() {
        // g(x) + g(x+3) over x in [0, 7] => g needs [0, 10]
        let e = Expr::add(
            Expr::FuncRef("g".into(), vec![Expr::var("x")]),
            Expr::FuncRef("g".into(), vec![Expr::add(Expr::var("x"), Expr::int(3))]),
        );
        let mut out = BTreeMap::new();
        accumulate_func_bounds(&e, &bounds(&[("x", 0, 7)]), &BTreeMap::new(), &mut out);
        assert_eq!(out["g"], vec![Interval { min: 0, max: 10 }]);
    }

    #[test]
    fn interval_helpers() {
        assert_eq!(Interval::new(5, 2), Interval { min: 2, max: 5 });
        assert_eq!(
            Interval::point(3).union(Interval::point(7)),
            Interval { min: 3, max: 7 }
        );
    }
}
