//! Interval-based bounds inference for affine (and mildly non-affine) index
//! expressions.
//!
//! Two consumers depend on it:
//!
//! * buffer sizing — intermediate buffers for `compute_root`/`compute_at`
//!   producers are allocated over the inferred access intervals;
//! * kernel specialization — the fused SIMD lane compiler in [`crate::exec`]
//!   proves casts transparent and narrow (32-bit) arithmetic bit-exact by
//!   bounding every sub-expression, and derives the in-range interior of
//!   vectorized loops from the affine decomposition of load indices.
//!
//! Every rule in [`combine`] must therefore be *sound* (the true value is
//! always inside the returned interval) under the exact [`eval_binop`]
//! semantics — including i64 wrap-around, logical right shift and
//! division-by-zero-yields-zero.
//!
//! [`eval_binop`]: crate::expr::eval_binop

use crate::expr::{BinOp, Expr};
use crate::types::{ScalarType, Value};
use std::collections::BTreeMap;

/// A closed integer interval `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub min: i64,
    /// Inclusive upper bound.
    pub max: i64,
}

impl Interval {
    /// A single-point interval.
    pub fn point(v: i64) -> Interval {
        Interval { min: v, max: v }
    }

    /// Construct an interval, normalizing the bound order.
    pub fn new(a: i64, b: i64) -> Interval {
        Interval {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Union of two intervals.
    pub fn union(self, other: Interval) -> Interval {
        Interval {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Width of the interval (number of integers it contains).
    pub fn extent(self) -> i64 {
        self.max - self.min + 1
    }

    /// The full `i64` range (the "don't know" interval).
    pub fn everything() -> Interval {
        Interval {
            min: i64::MIN,
            max: i64::MAX,
        }
    }

    /// The value range of `i32` — values for which 32-bit signed lanes carry
    /// the exact value.
    pub fn i32_range() -> Interval {
        Interval {
            min: i32::MIN as i64,
            max: i32::MAX as i64,
        }
    }

    /// The value range of `u32` — values for which 32-bit lanes reinterpreted
    /// as unsigned carry the exact value.
    pub fn u32_range() -> Interval {
        Interval {
            min: 0,
            max: u32::MAX as i64,
        }
    }

    /// The identity range of an integer [`ScalarType`], if it has one.
    pub fn of_type(ty: ScalarType) -> Option<Interval> {
        ty.int_value_range().map(|(min, max)| Interval { min, max })
    }

    /// Integers exactly representable in `f32`: `[-2^24, 2^24]`. An integer
    /// value inside this range survives `as f64` → `as f32` (the reference
    /// path's promotion followed by the store/cast rounding) without loss, so
    /// the `[f32; W]` fused lane family may carry it as an `f32` lane. The
    /// bound is conservative (larger even multiples are also exact) but every
    /// value inside it is exact, which is the direction soundness needs.
    pub fn f32_exact_int_range() -> Interval {
        Interval {
            min: -(1 << 24),
            max: 1 << 24,
        }
    }

    /// Integers exactly representable in `f64`: `[-2^53, 2^53]`. Inside this
    /// range `i64 → f64` promotion is exact, injective and order-preserving,
    /// so the `[f64; W/2]` fused lane family may carry an integer leaf as an
    /// `f64` lane: mixed int/float arithmetic sees exactly the reference
    /// promotion, and integer comparisons on the lanes agree with the
    /// reference's `i64` comparison. Same conservative direction as
    /// [`Interval::f32_exact_int_range`].
    pub fn f64_exact_int_range() -> Interval {
        Interval {
            min: -(1 << 53),
            max: 1 << 53,
        }
    }

    /// Whether every value of this interval lies within `other`.
    pub fn within(self, other: Interval) -> bool {
        other.min <= self.min && self.max <= other.max
    }

    /// Whether `v` lies within the interval.
    pub fn contains(self, v: i64) -> bool {
        self.min <= v && v <= self.max
    }
}

/// Compute the interval of possible values of `expr` given intervals for the
/// free variables (pure vars and reduction vars) and concrete values for
/// scalar parameters.
///
/// Unknown sub-expressions (image loads, func references) are treated
/// conservatively as `[0, i32::MAX]`, which is adequate for sizing buffers of
/// stencil pipelines where index expressions are affine in the loop variables.
pub fn expr_interval(
    expr: &Expr,
    var_bounds: &BTreeMap<String, Interval>,
    params: &BTreeMap<String, Value>,
) -> Interval {
    match expr {
        Expr::Var(name) | Expr::RVar(name) => var_bounds.get(name).copied().unwrap_or(Interval {
            min: 0,
            max: i32::MAX as i64,
        }),
        Expr::ConstInt(v, _) => Interval::point(*v),
        Expr::ConstFloat(v, _) => Interval::point(*v as i64),
        Expr::Param(name, _) => params
            .get(name)
            .map(|v| Interval::point(v.as_i64()))
            .unwrap_or(Interval {
                min: 0,
                max: i32::MAX as i64,
            }),
        // Casts apply Value::cast: a narrowing integer cast clamps the
        // interval to the type's identity range (the inner interval is only
        // kept when it already fits — `cast<u8>(300)` is 44, not 300), a
        // UInt64 cast keeps the i64 bits, and float casts round (which can
        // escape any integer bound near the i64 extremes, so: everything).
        // A possibly-float *inner* value was interval-analyzed with integer
        // `combine` semantics, so its interval cannot be trusted — clamp to
        // the target's full range (sound: Value::cast lands inside it) or
        // give up for the identity casts.
        Expr::Cast(ty, e) => {
            let inner = expr_interval(e, var_bounds, params);
            let float_inner = expr_may_be_float(e, params);
            match Interval::of_type(*ty) {
                Some(range) => {
                    if !float_inner && inner.within(range) {
                        inner
                    } else {
                        range
                    }
                }
                None if ty.is_float() => Interval::everything(),
                // UInt64: identity on the carried i64 (truncation for floats).
                None if float_inner => Interval::everything(),
                None => inner,
            }
        }
        Expr::Binary(op, a, b) => {
            // eval_binop takes its float branch when either operand is a
            // float Value — floating arithmetic, or bitwise ops truncating a
            // float — which the integer combine rules do not model. A
            // structurally float operand therefore widens to everything
            // (`cast<u8>(0.5f / 0.25f)` is 2, not inside the integer-derived
            // [0, 0]).
            if expr_may_be_float(a, params) || expr_may_be_float(b, params) {
                Interval::everything()
            } else {
                let ia = expr_interval(a, var_bounds, params);
                let ib = expr_interval(b, var_bounds, params);
                combine(*op, ia, ib)
            }
        }
        Expr::Cmp(..) => Interval { min: 0, max: 1 },
        Expr::Select(_, t, e) => {
            expr_interval(t, var_bounds, params).union(expr_interval(e, var_bounds, params))
        }
        Expr::Call(..) | Expr::Image(..) | Expr::FuncRef(..) => Interval {
            min: 0,
            max: i32::MAX as i64,
        },
    }
}

/// Whether `e` may *structurally* evaluate to a `Value::Float` — in which
/// case any interval derived for it with the integer `combine` rules must
/// not be trusted (the cast and binary rules widen instead). Extern calls
/// always yield floats; loads are deliberately *not* flagged: their element
/// types are unknown here and they already carry the documented
/// `[0, i32::MAX]` sizing approximation, which flagging them would replace
/// with `everything()` and blow up bounds-inferred allocations. Bitwise
/// operators and comparisons produce integers for any operands
/// ([`crate::expr::eval_binop`]'s float branch returns `Value::Int` for
/// them), so only their *own* interval is integer — their float operands are
/// handled by the binary rule's widening.
fn expr_may_be_float(e: &Expr, params: &BTreeMap<String, Value>) -> bool {
    match e {
        Expr::Var(..) | Expr::RVar(..) | Expr::Cmp(..) => false,
        Expr::ConstInt(_, ty) => ty.is_float(),
        Expr::ConstFloat(..) => true,
        Expr::Param(name, ty) => match params.get(name) {
            Some(Value::Float(_)) => true,
            Some(Value::Int(_)) => false,
            None => ty.is_float(),
        },
        Expr::Cast(ty, _) => ty.is_float(),
        Expr::Binary(op, a, b) => match op {
            // eval_binop's bitwise/shift branch yields Int for any operands.
            BinOp::Shr | BinOp::Shl | BinOp::And | BinOp::Or | BinOp::Xor => false,
            _ => expr_may_be_float(a, params) || expr_may_be_float(b, params),
        },
        Expr::Select(_, t, f) => expr_may_be_float(t, params) || expr_may_be_float(f, params),
        Expr::Call(..) => true,
        Expr::Image(..) | Expr::FuncRef(..) => false,
    }
}

/// Combine the intervals of two operands under one binary operator, with the
/// exact [`crate::expr::eval_binop`] integer semantics (i64 wrap-around,
/// logical right shift masked to 63, division by zero yields zero).
///
/// Soundness — the true result always lies inside the returned interval — is
/// load-bearing: the fused SIMD lane compiler uses these intervals to prove
/// 32-bit arithmetic bit-exact, so a rule that under-approximates would
/// silently corrupt results. Rules fall back to [`Interval::everything`]
/// rather than guess.
pub fn combine(op: BinOp, a: Interval, b: Interval) -> Interval {
    match op {
        BinOp::Add => {
            // Saturating bounds are sound only while no i64 wrap can occur.
            match (a.min.checked_add(b.min), a.max.checked_add(b.max)) {
                (Some(min), Some(max)) => Interval { min, max },
                _ => Interval::everything(),
            }
        }
        BinOp::Sub => match (a.min.checked_sub(b.max), a.max.checked_sub(b.min)) {
            (Some(min), Some(max)) => Interval { min, max },
            _ => Interval::everything(),
        },
        BinOp::Mul => {
            let cs = [
                a.min.checked_mul(b.min),
                a.min.checked_mul(b.max),
                a.max.checked_mul(b.min),
                a.max.checked_mul(b.max),
            ];
            if cs.iter().any(|c| c.is_none()) {
                return Interval::everything();
            }
            let cs = cs.map(|c| c.expect("checked above"));
            Interval {
                min: cs.into_iter().min().expect("non-empty"),
                max: cs.into_iter().max().expect("non-empty"),
            }
        }
        BinOp::Div => {
            // `x / y` is monotonic in `y` on each sign side, with extremes at
            // the y values of least magnitude; y == 0 contributes 0.
            let mut ys = vec![b.min, b.max];
            for y in [-1i64, 1] {
                if b.contains(y) {
                    ys.push(y);
                }
            }
            let mut vals = Vec::new();
            if b.contains(0) {
                vals.push(0);
            }
            for &x in &[a.min, a.max] {
                for &y in &ys {
                    if y != 0 {
                        // i64::MIN / -1 wraps (matching wrapping semantics).
                        vals.push(x.wrapping_div(y));
                    }
                }
            }
            Interval {
                min: vals.iter().copied().min().expect("non-empty"),
                max: vals.iter().copied().max().expect("non-empty"),
            }
        }
        BinOp::Mod => {
            // `x % y` keeps the dividend's sign with |result| <= |x|, and
            // y == 0 yields 0: always within [min(a.min,0), max(a.max,0)].
            Interval {
                min: a.min.min(0),
                max: a.max.max(0),
            }
        }
        BinOp::Min => Interval {
            min: a.min.min(b.min),
            max: a.max.min(b.max),
        },
        BinOp::Max => Interval {
            min: a.min.max(b.min),
            max: a.max.max(b.max),
        },
        BinOp::Shr => {
            // Logical shift: negative operands become huge positives, and a
            // shift count outside [0, 63] is masked — both escape any tight
            // bound.
            if a.min >= 0 && b.min >= 0 && b.max <= 63 {
                Interval {
                    min: a.min >> b.max,
                    max: a.max >> b.min,
                }
            } else {
                Interval::everything()
            }
        }
        BinOp::Shl => {
            // `wrapping_shl(y as u32)` masks the count by 63 and wraps the
            // value; only the overflow-free, in-range case is boundable
            // (note `checked_shl` validates the count, not value overflow).
            if a.min >= 0 && b.min >= 0 && b.max <= 63 && a.max <= (i64::MAX >> b.max) {
                Interval {
                    min: a.min << b.min,
                    max: a.max << b.max,
                }
            } else {
                Interval::everything()
            }
        }
        BinOp::And => {
            if a.min >= 0 && b.min >= 0 {
                // x & y <= min(x, y) for non-negative operands.
                Interval {
                    min: 0,
                    max: a.max.min(b.max),
                }
            } else {
                Interval::everything()
            }
        }
        BinOp::Or | BinOp::Xor => {
            if a.min >= 0 && b.min >= 0 {
                // The result fits in the bit width of the wider operand
                // (e.g. 4 | 3 = 7 exceeds max(4, 3) but not its mask).
                let bits = 64 - (a.max.max(b.max)).leading_zeros();
                let mask = if bits >= 63 {
                    i64::MAX
                } else {
                    (1i64 << bits) - 1
                };
                Interval { min: 0, max: mask }
            } else {
                Interval::everything()
            }
        }
    }
}

/// Whether an `f64` value is *bit-exactly* representable in `f32`: narrowing
/// and re-widening reproduces the original bit pattern.
///
/// This is the constant-admission test of the `[f32; W]` fused lane family:
/// the reference path ([`crate::eval`]) carries floats as `f64` and rounds at
/// explicit `cast<float>` points, so an `f32` lane kernel is bit-identical
/// only when every constant it folds in is already exact in `f32`. The
/// comparison is on bits, not values, so `-0.0` stays distinct from `0.0`,
/// and NaNs are admitted exactly when their payload survives the roundtrip —
/// the canonical quiet NaN does (and folding it is sound: the store performs
/// the identical narrowing), while payloads only `f64` can hold do not.
pub fn f64_is_f32_exact(v: f64) -> bool {
    let roundtrip = (v as f32) as f64;
    roundtrip.to_bits() == v.to_bits()
}

/// Structurally decompose `e` into an affine form `const + Σ coeff·var` over
/// the pure loop/output variables, resolving integer params to their values.
/// Returns `None` for anything non-affine (loads, selects, float math,
/// narrowing or sign-changing casts — which could wrap and diverge from the
/// affine model).
///
/// Shared by `compute_at` region inference ([`crate::lower`]) and the fused
/// SIMD kernel compiler ([`crate::exec`]), which uses it to classify loads as
/// contiguous or loop-invariant along the vectorized lane dimension.
pub fn affine_decompose(
    e: &Expr,
    params: &BTreeMap<String, Value>,
) -> Option<(BTreeMap<String, i64>, i64)> {
    match e {
        // Reduction variables are loop variables like any other once an
        // update definition is lowered: the rdom loops of `crate::lower`'s
        // update nests bind them, so the fused-kernel compiler's affine
        // machinery (tap classification, interior derivation) treats them
        // identically to pure vars.
        Expr::Var(n) | Expr::RVar(n) => {
            let mut m = BTreeMap::new();
            m.insert(n.clone(), 1i64);
            Some((m, 0))
        }
        Expr::ConstInt(v, ty) if !ty.is_float() => Some((BTreeMap::new(), *v)),
        Expr::Param(n, _) => match params.get(n) {
            Some(Value::Int(v)) => Some((BTreeMap::new(), *v)),
            _ => None,
        },
        // Int32/UInt64 casts of an i64 index are value-preserving for every
        // index magnitude a real buffer can have; narrower or unsigned-32
        // casts can wrap (e.g. `cast<u32>(x - 1)` at x = 0) and are rejected.
        Expr::Cast(ScalarType::Int32 | ScalarType::UInt64, inner) => {
            affine_decompose(inner, params)
        }
        Expr::Binary(op @ (BinOp::Add | BinOp::Sub), a, b) => {
            let (mut ca, ka) = affine_decompose(a, params)?;
            let (cb, kb) = affine_decompose(b, params)?;
            let sign = if *op == BinOp::Add { 1 } else { -1 };
            for (v, c) in cb {
                *ca.entry(v).or_insert(0) += sign * c;
            }
            Some((ca, ka + sign * kb))
        }
        Expr::Binary(BinOp::Mul, a, b) => {
            let (ca, ka) = affine_decompose(a, params)?;
            let (cb, kb) = affine_decompose(b, params)?;
            let (mut coeffs, scale, k) = if ca.values().all(|&c| c == 0) {
                (cb, ka, kb)
            } else if cb.values().all(|&c| c == 0) {
                (ca, kb, ka)
            } else {
                return None; // var × var: not affine
            };
            for c in coeffs.values_mut() {
                *c *= scale;
            }
            Some((coeffs, k * scale))
        }
        _ => None,
    }
}

/// For every func referenced by `expr`, union the intervals of each of its
/// index arguments under the given variable bounds, accumulating into `out`.
pub fn accumulate_func_bounds(
    expr: &Expr,
    var_bounds: &BTreeMap<String, Interval>,
    params: &BTreeMap<String, Value>,
    out: &mut BTreeMap<String, Vec<Interval>>,
) {
    expr.visit(&mut |e| {
        if let Expr::FuncRef(name, args) = e {
            let entry = out
                .entry(name.clone())
                .or_insert_with(|| vec![Interval::point(0); args.len()]);
            for (d, arg) in args.iter().enumerate() {
                let i = expr_interval(arg, var_bounds, params);
                if d < entry.len() {
                    entry[d] = entry[d].union(i);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(pairs: &[(&str, i64, i64)]) -> BTreeMap<String, Interval> {
        pairs
            .iter()
            .map(|(n, a, b)| (n.to_string(), Interval::new(*a, *b)))
            .collect()
    }

    #[test]
    fn affine_interval() {
        // x + 2 over x in [0, 9] => [2, 11]
        let e = Expr::add(Expr::var("x"), Expr::int(2));
        let i = expr_interval(&e, &bounds(&[("x", 0, 9)]), &BTreeMap::new());
        assert_eq!(i, Interval { min: 2, max: 11 });
        assert_eq!(i.extent(), 10);
    }

    #[test]
    fn multiplication_corners() {
        // 3*x - 1 over x in [0, 4] => [-1, 11]
        let e = Expr::bin(
            BinOp::Sub,
            Expr::mul(Expr::int(3), Expr::var("x")),
            Expr::int(1),
        );
        let i = expr_interval(&e, &bounds(&[("x", 0, 4)]), &BTreeMap::new());
        assert_eq!(i, Interval { min: -1, max: 11 });
    }

    #[test]
    fn select_unions_branches() {
        let e = Expr::select(
            Expr::cmp(crate::expr::CmpOp::Lt, Expr::var("x"), Expr::int(2)),
            Expr::int(0),
            Expr::int(255),
        );
        let i = expr_interval(&e, &bounds(&[("x", 0, 9)]), &BTreeMap::new());
        assert_eq!(i, Interval { min: 0, max: 255 });
    }

    #[test]
    fn params_are_points() {
        let e = Expr::add(
            Expr::Param("w".into(), crate::types::ScalarType::Int32),
            Expr::int(1),
        );
        let mut params = BTreeMap::new();
        params.insert("w".to_string(), Value::Int(100));
        let i = expr_interval(&e, &BTreeMap::new(), &params);
        assert_eq!(i, Interval::point(101));
    }

    #[test]
    fn func_bounds_accumulate_across_references() {
        // g(x) + g(x+3) over x in [0, 7] => g needs [0, 10]
        let e = Expr::add(
            Expr::FuncRef("g".into(), vec![Expr::var("x")]),
            Expr::FuncRef("g".into(), vec![Expr::add(Expr::var("x"), Expr::int(3))]),
        );
        let mut out = BTreeMap::new();
        accumulate_func_bounds(&e, &bounds(&[("x", 0, 7)]), &BTreeMap::new(), &mut out);
        assert_eq!(out["g"], vec![Interval { min: 0, max: 10 }]);
    }

    #[test]
    fn interval_helpers() {
        assert_eq!(Interval::new(5, 2), Interval { min: 2, max: 5 });
        assert_eq!(
            Interval::point(3).union(Interval::point(7)),
            Interval { min: 3, max: 7 }
        );
        assert!(Interval::new(0, 255).within(Interval::u32_range()));
        assert!(!Interval::new(-1, 255).within(Interval::u32_range()));
        assert!(Interval::i32_range().contains(-5));
        assert_eq!(
            Interval::of_type(crate::types::ScalarType::UInt8),
            Some(Interval { min: 0, max: 255 })
        );
        assert_eq!(Interval::of_type(crate::types::ScalarType::UInt64), None);
    }

    /// `combine` must be sound under exact eval_binop semantics; these cases
    /// were under-approximated before the fused-kernel work relied on them.
    #[test]
    fn combine_is_sound_on_bitwise_and_shift_edges() {
        use crate::expr::eval_binop;
        let iv = |a, b| Interval::new(a, b);
        // Or/Xor escape max(a.max, b.max): 4 | 3 = 7.
        for op in [BinOp::Or, BinOp::Xor] {
            let r = combine(op, iv(0, 4), iv(0, 3));
            let actual = eval_binop(op, Value::Int(4), Value::Int(3)).as_i64();
            assert!(r.contains(actual), "{op:?}: {actual} outside {r:?}");
        }
        // And of non-negatives is bounded by the smaller max.
        assert_eq!(combine(BinOp::And, iv(0, 300), iv(0, 7)).max, 7);
        // Logical Shr of a negative operand is a huge positive.
        let r = combine(BinOp::Shr, iv(-1, -1), iv(1, 1));
        let actual = eval_binop(BinOp::Shr, Value::Int(-1), Value::Int(1)).as_i64();
        assert!(r.contains(actual));
        // Shl that wraps i64 must not pretend to saturate.
        let r = combine(BinOp::Shl, iv(1, i64::MAX / 2), iv(0, 10));
        let actual = eval_binop(BinOp::Shl, Value::Int(i64::MAX / 2), Value::Int(10)).as_i64();
        assert!(r.contains(actual));
        // Division by a range crossing zero includes the y = ±1 extremes.
        let r = combine(BinOp::Div, iv(0, 100), iv(-2, 3));
        assert!(r.contains(100) && r.contains(-50) && r.contains(0));
        // Mod keeps the dividend's sign and magnitude bound.
        let r = combine(BinOp::Mod, iv(-7, 12), iv(-3, 5));
        for x in -7..=12i64 {
            for y in -3..=5i64 {
                let actual = eval_binop(BinOp::Mod, Value::Int(x), Value::Int(y)).as_i64();
                assert!(r.contains(actual), "{x} % {y} = {actual} outside {r:?}");
            }
        }
    }

    #[test]
    fn casts_of_float_values_clamp_to_the_type_range() {
        use crate::types::ScalarType;
        // cast<u8>(0.5f / 0.25f) evaluates to 2 via float division; the
        // integer combine rules cannot see that, so the cast must widen to
        // the full u8 range rather than trust the (integer-derived) inner
        // interval.
        let e = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Div,
                Expr::ConstFloat(0.5, ScalarType::Float32),
                Expr::ConstFloat(0.25, ScalarType::Float32),
            ),
        );
        let iv = expr_interval(&e, &BTreeMap::new(), &BTreeMap::new());
        assert!(iv.contains(2), "true value 2 must be inside {iv:?}");
        assert_eq!(iv, Interval { min: 0, max: 255 });
        // The float value can also re-enter integer land through a bitwise
        // op (eval_binop's float branch truncates and returns Int):
        // cast<u8>((0.5f / 0.25f) >> 0) is 2 as well — the binary rule must
        // widen rather than trust the integer-combined operand intervals.
        let e = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Shr,
                Expr::bin(
                    BinOp::Div,
                    Expr::ConstFloat(0.5, ScalarType::Float32),
                    Expr::ConstFloat(0.25, ScalarType::Float32),
                ),
                Expr::int(0),
            ),
        );
        let iv = expr_interval(&e, &BTreeMap::new(), &BTreeMap::new());
        assert!(iv.contains(2), "true value 2 must be inside {iv:?}");
        // Integer inners still keep their tight interval.
        let e = Expr::cast(ScalarType::UInt8, Expr::add(Expr::var("x"), Expr::int(2)));
        let iv = expr_interval(&e, &bounds(&[("x", 0, 9)]), &BTreeMap::new());
        assert_eq!(iv, Interval { min: 2, max: 11 });
        // A UInt64 cast of a possibly-float value gives up entirely.
        let e = Expr::cast(
            ScalarType::UInt64,
            Expr::mul(Expr::ConstFloat(1e18, ScalarType::Float64), Expr::var("x")),
        );
        let iv = expr_interval(&e, &bounds(&[("x", 0, 9)]), &BTreeMap::new());
        assert_eq!(iv, Interval::everything());
    }

    #[test]
    fn f32_exactness_predicates() {
        // Values representable in f32 roundtrip bit-exactly.
        for v in [
            0.0f64,
            -0.0,
            0.5,
            (1.0f32 / 12.0) as f64,
            3.25,
            -1e20f32 as f64,
        ] {
            assert!(f64_is_f32_exact(v), "{v} should be f32-exact");
        }
        // -0.0 and 0.0 are distinct bit patterns; both are exact, but the
        // check must be bitwise (a value comparison would conflate them).
        assert!(f64_is_f32_exact(-0.0) && f64_is_f32_exact(0.0));
        // Values needing f64 precision (or exceeding f32 range) are not.
        for v in [0.1f64, 1.0 / 12.0, 1e300, (1 << 25) as f64 + 1.0] {
            assert!(!f64_is_f32_exact(v), "{v} must not pass as f32-exact");
        }
        // The canonical quiet NaN roundtrips bit-exactly (its payload
        // survives widen/narrow), so it passes; a payload only f64 can hold
        // does not.
        assert!(f64_is_f32_exact(f64::NAN));
        assert!(!f64_is_f32_exact(f64::from_bits(0x7ff8_0000_0000_0001)));
        // Every integer in the f32-exact range converts without loss.
        let r = Interval::f32_exact_int_range();
        for v in [r.min, r.max, 0, -1, 12345, 1 << 20] {
            assert!(r.contains(v));
            assert_eq!((v as f64) as f32 as f64, v as f64);
            assert_eq!(((v as f64) as f32 as f64) as i64, v);
        }
        // Just outside the range sits the first integer f32 cannot hold.
        assert_ne!(((r.max + 1) as f64) as f32 as f64, (r.max + 1) as f64);
    }

    #[test]
    fn f64_exact_int_range_round_trips_at_its_corners() {
        // Every integer within ±2^53 promotes to f64 and back without loss —
        // the admissibility bound the [f64; W/2] lane family uses to carry
        // integer leaves as f64 lanes.
        let r = Interval::f64_exact_int_range();
        assert_eq!(r.min, -(1 << 53));
        assert_eq!(r.max, 1 << 53);
        for v in [r.min, r.max, 0, -1, 12345, (1 << 52) + 1] {
            assert!(r.contains(v));
            assert_eq!((v as f64) as i64, v);
        }
        // Just outside, f64's 53-bit mantissa rounds to even: 2^53 + 1 is
        // the first integer f64 cannot hold.
        assert_eq!(((r.max + 1) as f64) as i64, r.max);
        // And the range is strictly wider than the f32 one it mirrors.
        let f32r = Interval::f32_exact_int_range();
        assert!(r.min < f32r.min && f32r.max < r.max);
    }

    #[test]
    fn affine_decompose_handles_params_and_casts() {
        use crate::types::ScalarType;
        let mut params = BTreeMap::new();
        params.insert("k".to_string(), Value::Int(6));
        // 2*x + k - 1 under cast<i32>
        let e = Expr::Cast(
            ScalarType::Int32,
            Box::new(Expr::bin(
                BinOp::Sub,
                Expr::add(
                    Expr::mul(Expr::int(2), Expr::var("x")),
                    Expr::Param("k".into(), ScalarType::Int32),
                ),
                Expr::int(1),
            )),
        );
        let (coeffs, k) = affine_decompose(&e, &params).expect("affine");
        assert_eq!(coeffs.get("x"), Some(&2));
        assert_eq!(k, 5);
        // Narrowing casts and var*var products are rejected.
        assert!(affine_decompose(
            &Expr::Cast(ScalarType::UInt8, Box::new(Expr::var("x"))),
            &params
        )
        .is_none());
        assert!(affine_decompose(&Expr::mul(Expr::var("x"), Expr::var("y")), &params).is_none());
    }
}
