//! Expression AST of the miniature Halide DSL.

use crate::types::{ScalarType, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Binary arithmetic/bitwise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division for integer operands).
    Div,
    /// Remainder.
    Mod,
    /// Logical shift right.
    Shr,
    /// Shift left.
    Shl,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinOp {
    /// Returns `true` if the operator is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Min | BinOp::Max
        )
    }
}

/// Comparison operators (produce 0/1 integer values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

/// Recognized external calls, mapped to Halide intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExternCall {
    /// Square root.
    Sqrt,
    /// Floor.
    Floor,
    /// Ceiling.
    Ceil,
    /// Absolute value.
    Abs,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Power.
    Pow,
}

impl ExternCall {
    /// Halide/C name of the intrinsic.
    pub fn name(self) -> &'static str {
        match self {
            ExternCall::Sqrt => "sqrt",
            ExternCall::Floor => "floor",
            ExternCall::Ceil => "ceil",
            ExternCall::Abs => "abs",
            ExternCall::Exp => "exp",
            ExternCall::Log => "log",
            ExternCall::Pow => "pow",
        }
    }

    /// Evaluate on concrete arguments.
    pub fn eval(self, args: &[Value]) -> Value {
        let a = args[0].as_f64();
        Value::Float(match self {
            ExternCall::Sqrt => a.sqrt(),
            ExternCall::Floor => a.floor(),
            ExternCall::Ceil => a.ceil(),
            ExternCall::Abs => a.abs(),
            ExternCall::Exp => a.exp(),
            ExternCall::Log => a.ln(),
            ExternCall::Pow => a.powf(args[1].as_f64()),
        })
    }
}

/// An expression in the DSL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A pure spatial variable (e.g. `x_0`).
    Var(String),
    /// A reduction-domain variable (e.g. `r_0.x`).
    RVar(String),
    /// An integer constant with a type.
    ConstInt(i64, ScalarType),
    /// A floating-point constant with a type.
    ConstFloat(f64, ScalarType),
    /// A named runtime scalar parameter.
    Param(String, ScalarType),
    /// A cast to another scalar type.
    Cast(ScalarType, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A comparison producing 0/1.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `select(cond, then, else)`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A call to a recognized external function.
    Call(ExternCall, Vec<Expr>),
    /// An access to an input image parameter: `input(args...)`.
    Image(String, Vec<Expr>),
    /// An access to another [`Func`](crate::func::Func): `f(args...)`.
    FuncRef(String, Vec<Expr>),
}

impl Expr {
    /// An `Int32` constant.
    pub fn int(v: i64) -> Expr {
        Expr::ConstInt(v, ScalarType::Int32)
    }

    /// An `UInt32` constant.
    pub fn uint(v: i64) -> Expr {
        Expr::ConstInt(v, ScalarType::UInt32)
    }

    /// A `Float64` constant.
    pub fn float(v: f64) -> Expr {
        Expr::ConstFloat(v, ScalarType::Float64)
    }

    /// A pure variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// A binary operation with boxed operands.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Addition helper.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// Multiplication helper.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// Cast helper.
    pub fn cast(ty: ScalarType, e: Expr) -> Expr {
        Expr::Cast(ty, Box::new(e))
    }

    /// `select` helper.
    pub fn select(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::Select(Box::new(cond), Box::new(then), Box::new(otherwise))
    }

    /// Comparison helper.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Visit all nodes of the expression tree (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Cast(_, e) => e.visit(f),
            Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Select(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Expr::Call(_, args) | Expr::Image(_, args) | Expr::FuncRef(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Names of all image parameters referenced by the expression.
    pub fn referenced_images(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::Image(name, _) = e {
                out.insert(name.clone());
            }
        });
        out
    }

    /// Names of all funcs referenced by the expression.
    pub fn referenced_funcs(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::FuncRef(name, _) = e {
                out.insert(name.clone());
            }
        });
        out
    }

    /// Substitute variables by expressions (used for inlining funcs and
    /// binding reduction variables).
    pub fn substitute(&self, subst: &dyn Fn(&str) -> Option<Expr>) -> Expr {
        match self {
            Expr::Var(name) | Expr::RVar(name) => subst(name).unwrap_or_else(|| self.clone()),
            Expr::ConstInt(..) | Expr::ConstFloat(..) | Expr::Param(..) => self.clone(),
            Expr::Cast(ty, e) => Expr::Cast(*ty, Box::new(e.substitute(subst))),
            Expr::Binary(op, a, b) => Expr::bin(*op, a.substitute(subst), b.substitute(subst)),
            Expr::Cmp(op, a, b) => Expr::cmp(*op, a.substitute(subst), b.substitute(subst)),
            Expr::Select(c, t, e) => Expr::select(
                c.substitute(subst),
                t.substitute(subst),
                e.substitute(subst),
            ),
            Expr::Call(c, args) => {
                Expr::Call(*c, args.iter().map(|a| a.substitute(subst)).collect())
            }
            Expr::Image(n, args) => Expr::Image(
                n.clone(),
                args.iter().map(|a| a.substitute(subst)).collect(),
            ),
            Expr::FuncRef(n, args) => Expr::FuncRef(
                n.clone(),
                args.iter().map(|a| a.substitute(subst)).collect(),
            ),
        }
    }

    /// Number of nodes in the expression tree.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

/// Evaluate a binary operation on concrete values.
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Value {
    let float = matches!(a, Value::Float(_)) || matches!(b, Value::Float(_));
    if float {
        let (x, y) = (a.as_f64(), b.as_f64());
        Value::Float(match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Mod => x % y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::Shr => return Value::Int((x as i64) >> (y as i64)),
            BinOp::Shl => return Value::Int((x as i64) << (y as i64)),
            BinOp::And => return Value::Int((x as i64) & (y as i64)),
            BinOp::Or => return Value::Int((x as i64) | (y as i64)),
            BinOp::Xor => return Value::Int((x as i64) ^ (y as i64)),
        })
    } else {
        let (x, y) = (a.as_i64(), b.as_i64());
        Value::Int(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    0
                } else {
                    x / y
                }
            }
            BinOp::Mod => {
                if y == 0 {
                    0
                } else {
                    x % y
                }
            }
            BinOp::Shr => ((x as u64) >> (y as u64 & 63)) as i64,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
        })
    }
}

/// Evaluate a comparison on concrete values, producing 0/1.
pub fn eval_cmp(op: CmpOp, a: Value, b: Value) -> Value {
    let result = if matches!(a, Value::Float(_)) || matches!(b, Value::Float(_)) {
        let (x, y) = (a.as_f64(), b.as_f64());
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    } else {
        let (x, y) = (a.as_i64(), b.as_i64());
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    };
    Value::Int(result as i64)
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Shr => ">>",
            BinOp::Shl => "<<",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(n) | Expr::RVar(n) => f.write_str(n),
            Expr::ConstInt(v, _) => write!(f, "{v}"),
            Expr::ConstFloat(v, _) => {
                if v.fract() == 0.0 {
                    write!(f, "{v:.1}f")
                } else {
                    write!(f, "{v}f")
                }
            }
            Expr::Param(n, _) => f.write_str(n),
            Expr::Cast(ty, e) => write!(f, "cast<{}>({e})", ty.c_name()),
            Expr::Binary(op @ (BinOp::Min | BinOp::Max), a, b) => write!(f, "{op}({a}, {b})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Select(c, t, e) => write!(f, "select({c}, {t}, {e})"),
            Expr::Call(c, args) => {
                write!(f, "{}(", c.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Image(n, args) | Expr::FuncRef(n, args) => {
                write!(f, "{n}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let e = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Shr,
                Expr::add(
                    Expr::mul(
                        Expr::uint(2),
                        Expr::Image("in".into(), vec![Expr::var("x")]),
                    ),
                    Expr::uint(2),
                ),
                Expr::uint(2),
            ),
        );
        assert_eq!(e.to_string(), "cast<uint8_t>((((2 * in(x)) + 2) >> 2))");
        assert_eq!(e.node_count(), 9);
        assert!(e.referenced_images().contains("in"));
        assert!(e.referenced_funcs().is_empty());
    }

    #[test]
    fn binop_eval_int_and_float() {
        assert_eq!(
            eval_binop(BinOp::Add, Value::Int(2), Value::Int(3)),
            Value::Int(5)
        );
        assert_eq!(
            eval_binop(BinOp::Shr, Value::Int(9), Value::Int(2)),
            Value::Int(2)
        );
        assert_eq!(
            eval_binop(BinOp::Div, Value::Int(7), Value::Int(0)),
            Value::Int(0)
        );
        assert_eq!(
            eval_binop(BinOp::Min, Value::Int(7), Value::Int(3)),
            Value::Int(3)
        );
        assert_eq!(
            eval_binop(BinOp::Mul, Value::Float(1.5), Value::Int(2)),
            Value::Float(3.0)
        );
        assert_eq!(
            eval_binop(BinOp::Max, Value::Float(1.5), Value::Float(2.5)),
            Value::Float(2.5)
        );
    }

    #[test]
    fn cmp_eval() {
        assert_eq!(
            eval_cmp(CmpOp::Lt, Value::Int(1), Value::Int(2)),
            Value::Int(1)
        );
        assert_eq!(
            eval_cmp(CmpOp::Ge, Value::Int(1), Value::Int(2)),
            Value::Int(0)
        );
        assert_eq!(
            eval_cmp(CmpOp::Eq, Value::Float(1.0), Value::Int(1)),
            Value::Int(1)
        );
    }

    #[test]
    fn substitution_inlines_vars() {
        let e = Expr::add(Expr::var("x"), Expr::var("y"));
        let s = e.substitute(&|name| {
            if name == "x" {
                Some(Expr::int(10))
            } else {
                None
            }
        });
        assert_eq!(s.to_string(), "(10 + y)");
    }

    #[test]
    fn commutativity_flags() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shr.is_commutative());
    }

    #[test]
    fn extern_call_eval() {
        assert_eq!(
            ExternCall::Sqrt.eval(&[Value::Float(16.0)]),
            Value::Float(4.0)
        );
        assert_eq!(
            ExternCall::Pow.eval(&[Value::Float(2.0), Value::Float(3.0)]),
            Value::Float(8.0)
        );
        assert_eq!(ExternCall::Sqrt.name(), "sqrt");
    }
}
