//! The single shared [`Value`] evaluator.
//!
//! Expression semantics used to live in three places that had to agree
//! bit-for-bit: the reduction interpreter in `realize`, the interpreter
//! backend's stack machine, and the compiled backend's per-element fallback in
//! `exec`. All three now route through [`eval_expr`], parameterized over a
//! [`EvalSources`] implementation that resolves variables, scalar parameters
//! and buffer loads — so a semantics change cannot make the backends drift.
//!
//! Semantics (shared by every backend):
//!
//! * integer arithmetic wraps, division/remainder by zero yield zero
//!   ([`eval_binop`]);
//! * comparisons yield 0/1 integers ([`eval_cmp`]);
//! * casts truncate like C casts ([`Value::cast`]);
//! * `select` evaluates **both** branches before choosing (the historical
//!   stack-machine behavior, also what the lane programs do), so an error in
//!   either branch surfaces regardless of the condition;
//! * out-of-range loads are clamped by the [`EvalSources`] implementation
//!   (buffer-backed sources clamp per `Buffer::get`).

use crate::expr::{eval_binop, eval_cmp, Expr};
use crate::realize::RealizeError;
use crate::types::Value;

/// Resolution of the free names of an expression: loop/reduction variables,
/// scalar parameters, and buffer-backed sources (input images and
/// materialized funcs).
pub trait EvalSources {
    /// The value of a pure or reduction variable, if bound.
    fn var(&self, name: &str) -> Option<i64>;

    /// The value of a scalar parameter, if bound.
    fn param(&self, name: &str) -> Option<Value>;

    /// Load from an input image at `indices` (clamped to the image bounds).
    ///
    /// # Errors
    /// Returns [`RealizeError::MissingInput`] if the image is not bound.
    fn load_image(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError>;

    /// Load from a func's backing buffer at `indices` (clamped).
    ///
    /// # Errors
    /// Returns [`RealizeError::UndefinedFunc`] if no buffer backs the func.
    fn load_func(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError>;
}

/// Evaluate `e` against `src` with the shared semantics described in the
/// module docs.
///
/// # Errors
/// Returns an error when a variable or parameter is unbound
/// ([`RealizeError::MissingParam`]) or a load cannot be resolved.
pub fn eval_expr<S: EvalSources + ?Sized>(e: &Expr, src: &S) -> Result<Value, RealizeError> {
    Ok(match e {
        Expr::Var(n) | Expr::RVar(n) => Value::Int(
            src.var(n)
                .ok_or_else(|| RealizeError::MissingParam(n.clone()))?,
        ),
        Expr::ConstInt(v, ty) => {
            if ty.is_float() {
                Value::Float(*v as f64)
            } else {
                Value::Int(*v)
            }
        }
        Expr::ConstFloat(v, _) => Value::Float(*v),
        Expr::Param(n, _) => src
            .param(n)
            .ok_or_else(|| RealizeError::MissingParam(n.clone()))?,
        Expr::Cast(ty, inner) => eval_expr(inner, src)?.cast(*ty),
        Expr::Binary(op, a, b) => eval_binop(*op, eval_expr(a, src)?, eval_expr(b, src)?),
        Expr::Cmp(op, a, b) => eval_cmp(*op, eval_expr(a, src)?, eval_expr(b, src)?),
        Expr::Select(c, t, o) => {
            // Strict select: both branches evaluate before the choice, exactly
            // like the lane programs and the historical stack machine.
            let cond = eval_expr(c, src)?;
            let then = eval_expr(t, src)?;
            let otherwise = eval_expr(o, src)?;
            if cond.is_true() {
                then
            } else {
                otherwise
            }
        }
        Expr::Call(c, args) => {
            let vals: Result<Vec<Value>, RealizeError> =
                args.iter().map(|a| eval_expr(a, src)).collect();
            c.eval(&vals?)
        }
        Expr::Image(name, args) => {
            let idx = eval_indices(args, src)?;
            src.load_image(name, &idx)?
        }
        Expr::FuncRef(name, args) => {
            let idx = eval_indices(args, src)?;
            src.load_func(name, &idx)?
        }
    })
}

fn eval_indices<S: EvalSources + ?Sized>(args: &[Expr], src: &S) -> Result<Vec<i64>, RealizeError> {
    args.iter()
        .map(|a| eval_expr(a, src).map(|v| v.as_i64()))
        .collect()
}

/// Pre-validate that every variable and scalar parameter `e` references can
/// be resolved, returning the same error kinds evaluation would. Used by the
/// compile step so unbound names surface at compilation (as the retired stack
/// machine did) rather than at the first evaluated element.
///
/// # Errors
/// Returns [`RealizeError::MissingParam`] for the first unbound name.
pub fn validate_bindings<S: EvalSources + ?Sized>(e: &Expr, src: &S) -> Result<(), RealizeError> {
    let mut err = None;
    e.visit(&mut |node| {
        if err.is_some() {
            return;
        }
        match node {
            Expr::Var(n) | Expr::RVar(n) if src.var(n).is_none() => {
                err = Some(RealizeError::MissingParam(n.clone()));
            }
            Expr::Param(n, _) if src.param(n).is_none() => {
                err = Some(RealizeError::MissingParam(n.clone()));
            }
            _ => {}
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::expr::BinOp;
    use crate::types::ScalarType;
    use std::collections::BTreeMap;

    struct MapSources<'a> {
        vars: BTreeMap<String, i64>,
        params: BTreeMap<String, Value>,
        images: BTreeMap<String, &'a Buffer>,
    }

    impl EvalSources for MapSources<'_> {
        fn var(&self, name: &str) -> Option<i64> {
            self.vars.get(name).copied()
        }
        fn param(&self, name: &str) -> Option<Value> {
            self.params.get(name).copied()
        }
        fn load_image(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
            self.images
                .get(name)
                .map(|b| b.get(indices))
                .ok_or_else(|| RealizeError::MissingInput(name.to_string()))
        }
        fn load_func(&self, name: &str, _indices: &[i64]) -> Result<Value, RealizeError> {
            Err(RealizeError::UndefinedFunc(name.to_string()))
        }
    }

    #[test]
    fn arithmetic_and_loads_resolve() {
        let mut img = Buffer::new(ScalarType::UInt8, &[4]);
        img.set(&[2], Value::Int(7));
        let src = MapSources {
            vars: [("x".to_string(), 2i64)].into_iter().collect(),
            params: [("k".to_string(), Value::Int(3))].into_iter().collect(),
            images: [("in".to_string(), &img)].into_iter().collect(),
        };
        let e = Expr::add(
            Expr::Image("in".into(), vec![Expr::var("x")]),
            Expr::Param("k".into(), ScalarType::Int32),
        );
        assert_eq!(eval_expr(&e, &src).unwrap(), Value::Int(10));
        // Out-of-range loads clamp per Buffer::get.
        let e = Expr::Image("in".into(), vec![Expr::int(99)]);
        assert_eq!(eval_expr(&e, &src).unwrap(), Value::Int(0));
    }

    #[test]
    fn select_is_strict_in_both_branches() {
        let src = MapSources {
            vars: BTreeMap::new(),
            params: BTreeMap::new(),
            images: BTreeMap::new(),
        };
        // The untaken branch references an unbound parameter: strict select
        // still surfaces the error (backends must agree on error behavior).
        let e = Expr::select(
            Expr::int(1),
            Expr::int(42),
            Expr::Param("missing".into(), ScalarType::Int32),
        );
        assert_eq!(
            eval_expr(&e, &src).unwrap_err(),
            RealizeError::MissingParam("missing".into())
        );
    }

    #[test]
    fn validate_bindings_reports_unbound_names() {
        let src = MapSources {
            vars: [("x".to_string(), 0i64)].into_iter().collect(),
            params: BTreeMap::new(),
            images: BTreeMap::new(),
        };
        assert!(validate_bindings(&Expr::var("x"), &src).is_ok());
        assert_eq!(
            validate_bindings(&Expr::bin(BinOp::Add, Expr::var("x"), Expr::var("y")), &src)
                .unwrap_err(),
            RealizeError::MissingParam("y".into())
        );
    }
}
