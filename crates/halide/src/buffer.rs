//! Dense multi-dimensional buffers used as realization targets and image
//! parameters.

use crate::types::{ScalarType, Value};
use serde::{Deserialize, Serialize};

/// Decode a scalar of type `ty` from little-endian `bytes`.
///
/// # Panics
/// Panics if `bytes` is shorter than `ty.bytes()`.
pub fn read_scalar(ty: ScalarType, bytes: &[u8]) -> Value {
    match ty {
        ScalarType::UInt8 => Value::Int(bytes[0] as i64),
        ScalarType::UInt16 => Value::Int(u16::from_le_bytes([bytes[0], bytes[1]]) as i64),
        ScalarType::UInt32 => {
            Value::Int(u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as i64)
        }
        ScalarType::UInt64 => {
            Value::Int(u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as i64)
        }
        ScalarType::Int32 => {
            Value::Int(i32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as i64)
        }
        ScalarType::Float32 => {
            Value::Float(f32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as f64)
        }
        ScalarType::Float64 => {
            Value::Float(f64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")))
        }
    }
}

/// Encode `value` as a scalar of type `ty` into little-endian `bytes`,
/// casting with C semantics first.
///
/// # Panics
/// Panics if `bytes` is shorter than `ty.bytes()`.
pub fn write_scalar(ty: ScalarType, value: Value, bytes: &mut [u8]) {
    let v = value.cast(ty);
    match ty {
        ScalarType::UInt8 => bytes[0] = v.as_i64() as u8,
        ScalarType::UInt16 => bytes[..2].copy_from_slice(&(v.as_i64() as u16).to_le_bytes()),
        ScalarType::UInt32 => bytes[..4].copy_from_slice(&(v.as_i64() as u32).to_le_bytes()),
        ScalarType::UInt64 => bytes[..8].copy_from_slice(&(v.as_i64() as u64).to_le_bytes()),
        ScalarType::Int32 => bytes[..4].copy_from_slice(&(v.as_i64() as i32).to_le_bytes()),
        ScalarType::Float32 => bytes[..4].copy_from_slice(&(v.as_f64() as f32).to_le_bytes()),
        ScalarType::Float64 => bytes[..8].copy_from_slice(&v.as_f64().to_le_bytes()),
    }
}

/// A dense, row-major-by-innermost-dimension buffer.
///
/// Dimension 0 is the innermost (contiguous) dimension, matching Halide's
/// convention where `f(x, y)` has `x` varying fastest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Buffer {
    ty: ScalarType,
    extents: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<u8>,
}

impl Buffer {
    /// Create a zero-filled buffer with the given element type and extents.
    ///
    /// # Panics
    /// Panics if `extents` is empty.
    pub fn new(ty: ScalarType, extents: &[usize]) -> Buffer {
        assert!(
            !extents.is_empty(),
            "buffers must have at least one dimension"
        );
        let mut strides = Vec::with_capacity(extents.len());
        let mut stride = 1;
        for &e in extents {
            strides.push(stride);
            stride *= e;
        }
        let total = stride;
        Buffer {
            ty,
            extents: extents.to_vec(),
            strides,
            data: vec![0; total * ty.bytes()],
        }
    }

    /// Element type of the buffer.
    pub fn scalar_type(&self) -> ScalarType {
        self.ty
    }

    /// Extent of each dimension.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.extents.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.extents.iter().product()
    }

    /// Returns `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw backing bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    fn offset(&self, indices: &[i64]) -> usize {
        debug_assert_eq!(indices.len(), self.extents.len(), "index arity mismatch");
        let mut off = 0usize;
        for (d, &i) in indices.iter().enumerate() {
            let i = i.clamp(0, self.extents[d] as i64 - 1) as usize;
            off += i * self.strides[d];
        }
        off
    }

    /// Read the element at `indices` (out-of-range indices are clamped, which
    /// mirrors Halide's boundary-condition-free debug behaviour and keeps
    /// lifted kernels total).
    pub fn get(&self, indices: &[i64]) -> Value {
        let off = self.offset(indices) * self.ty.bytes();
        read_scalar(self.ty, &self.data[off..off + self.ty.bytes()])
    }

    /// Write the element at `indices`, casting `value` to the buffer type.
    pub fn set(&mut self, indices: &[i64], value: Value) {
        let off = self.offset(indices) * self.ty.bytes();
        let ty = self.ty;
        write_scalar(ty, value, &mut self.data[off..off + ty.bytes()]);
    }

    /// Read the element at linear index `i` (memory order).
    pub fn get_linear(&self, i: usize) -> Value {
        let off = i * self.ty.bytes();
        read_scalar(self.ty, &self.data[off..off + self.ty.bytes()])
    }

    /// Strides (in elements) of each dimension.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Mutable access to the raw backing bytes (used by the parallel realizer
    /// to split the output into per-thread chunks).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Fill the buffer from a slice of `u8` values (only for `UInt8` buffers).
    ///
    /// # Panics
    /// Panics if the buffer is not `UInt8` or the length does not match.
    pub fn fill_from_u8(&mut self, src: &[u8]) {
        assert_eq!(
            self.ty,
            ScalarType::UInt8,
            "fill_from_u8 requires a UInt8 buffer"
        );
        assert_eq!(src.len(), self.len(), "source length mismatch");
        self.data.copy_from_slice(src);
    }

    /// View the buffer as a slice of `u8` values (only for `UInt8` buffers).
    ///
    /// # Panics
    /// Panics if the buffer is not `UInt8`.
    pub fn as_u8_slice(&self) -> &[u8] {
        assert_eq!(
            self.ty,
            ScalarType::UInt8,
            "as_u8_slice requires a UInt8 buffer"
        );
        &self.data
    }

    /// Iterate over all coordinate tuples of the buffer in memory order.
    pub fn coords(&self) -> CoordIter {
        CoordIter {
            extents: self.extents.clone(),
            current: vec![0; self.extents.len()],
            done: self.is_empty(),
        }
    }
}

/// Iterator over the coordinates of a buffer, innermost dimension fastest.
#[derive(Debug, Clone)]
pub struct CoordIter {
    extents: Vec<usize>,
    current: Vec<i64>,
    done: bool,
}

impl Iterator for CoordIter {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        if self.done {
            return None;
        }
        let result = self.current.clone();
        for d in 0..self.extents.len() {
            self.current[d] += 1;
            if (self.current[d] as usize) < self.extents[d] {
                return Some(result);
            }
            self.current[d] = 0;
        }
        self.done = true;
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        for ty in [
            ScalarType::UInt8,
            ScalarType::UInt16,
            ScalarType::UInt32,
            ScalarType::UInt64,
            ScalarType::Int32,
            ScalarType::Float32,
            ScalarType::Float64,
        ] {
            let mut b = Buffer::new(ty, &[4, 3]);
            assert_eq!(b.dims(), 2);
            assert_eq!(b.len(), 12);
            let v = if ty.is_float() {
                Value::Float(2.5)
            } else {
                Value::Int(200)
            };
            b.set(&[2, 1], v);
            assert_eq!(b.get(&[2, 1]), v.cast(ty));
            assert_eq!(
                b.get(&[0, 0]),
                if ty.is_float() {
                    Value::Float(0.0)
                } else {
                    Value::Int(0)
                }
            );
        }
    }

    #[test]
    fn uint8_wrapping_on_set() {
        let mut b = Buffer::new(ScalarType::UInt8, &[2]);
        b.set(&[0], Value::Int(300));
        assert_eq!(b.get(&[0]), Value::Int(44));
        b.set(&[1], Value::Int(-1));
        assert_eq!(b.get(&[1]), Value::Int(255));
    }

    #[test]
    fn out_of_range_indices_clamp() {
        let mut b = Buffer::new(ScalarType::UInt8, &[4, 4]);
        b.set(&[3, 3], Value::Int(9));
        assert_eq!(b.get(&[10, 10]), Value::Int(9));
        assert_eq!(b.get(&[-5, 0]), b.get(&[0, 0]));
    }

    #[test]
    fn fill_and_view_u8() {
        let mut b = Buffer::new(ScalarType::UInt8, &[2, 2]);
        b.fill_from_u8(&[1, 2, 3, 4]);
        assert_eq!(b.as_u8_slice(), &[1, 2, 3, 4]);
        assert_eq!(b.get(&[1, 0]), Value::Int(2));
        assert_eq!(b.get(&[0, 1]), Value::Int(3));
    }

    #[test]
    fn coord_iterator_order_and_count() {
        let b = Buffer::new(ScalarType::UInt8, &[2, 3]);
        let coords: Vec<_> = b.coords().collect();
        assert_eq!(coords.len(), 6);
        assert_eq!(coords[0], vec![0, 0]);
        assert_eq!(coords[1], vec![1, 0]);
        assert_eq!(coords[2], vec![0, 1]);
        assert_eq!(coords[5], vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dimensional_buffers_rejected() {
        Buffer::new(ScalarType::UInt8, &[]);
    }
}
