//! Lowering: turning a [`Pipeline`] + [`Schedule`] into loop-nest IR.
//!
//! This is the compilation step the interpreter never had: schedule decisions
//! (tiling, parallelism, vectorization, `compute_root`, `compute_at`) are
//! materialized as restructured [`Stmt`] loops *before* execution, so the
//! executor runs straight-line loop nests instead of re-deciding strategy per
//! element.
//!
//! The lowering of the output func proceeds in four steps:
//!
//! 1. **Inlining** — every producer not scheduled `compute_root`/`compute_at`
//!    (and without reductions) is substituted into the consumer expression.
//! 2. **Loop synthesis** — one loop per output dimension, outermost last
//!    dimension first; tiling splits the two innermost dimensions into
//!    outer/inner pairs with `min(tile, extent - outer*tile)` tails; the
//!    outermost loop is tagged parallel and the innermost vectorized per the
//!    schedule.
//! 3. **`compute_at` regions** — for each attached producer, bounds inference
//!    probes the consumer's accesses to derive a per-iteration region that is
//!    affine in the enclosing loop variables (`min = base + Σ cᵢ·loopᵢ`,
//!    constant extent). The producer is lowered into an [`Stmt::Allocate`] of
//!    that extent plus its own produce loops at the attach point, and consumer
//!    accesses are rebased into the local buffer. Producers whose regions are
//!    not affine (or absurdly large) *degrade to `compute_root`*, which is
//!    value-identical.
//! 4. **Simplification** — all synthesized index/bound expressions are
//!    constant-folded through [`crate::simplify`].
//!
//! **The locality tier** sits on top of those steps:
//!
//! * *Sliding-window `compute_at`* — when a producer's inferred region
//!   translates by exactly the attach loop (coefficient 1 on the last
//!   dimension, extent > 1, all other dimensions stationary) and the schedule
//!   opted in via [`Schedule::store_sliding`], the scoped allocation becomes
//!   a rolling window: a [`Stmt::SlideWindow`] node shifts the surviving rows
//!   in place at each attach iteration and the produce nest recomputes only
//!   the newly exposed ones (its sliding-dimension loop starts at the
//!   runtime-bound warm-row count). Regions that do not slide silently keep
//!   the recompute-everything placement, which is value-identical.
//! * *Multi-output fusion* — [`lower_fused_group`] lowers an ordered group of
//!   materialized stages into one shared outermost loop carrying a `Produce`
//!   block per stage, so `compose_after` chains and multi-plane filters walk
//!   the image once instead of once per stage (see its docs for the
//!   admissibility rules that keep it bit-identical).
//!
//! **Update (reduction) definitions** lower too, via [`lower_update`]: each
//! update becomes a nest of serial reduction-domain loops plus loops over the
//! update's free pure variables, around a guarded
//! [`crate::stmt::Stmt::ReduceStore`]. The nest order follows an accumulation
//! strategy chosen by [`update_strategy`] from the RDom/pure-dim dependence:
//!
//! * [`UpdateStrategy::Sequential`] replicates the reduction interpreter's
//!   order verbatim — free pure dims outermost, rdom dims inner (first rdom
//!   dimension innermost), one element at a time — and is always sound
//!   (scans, data-dependent histogram LHS).
//! * [`UpdateStrategy::Privatized`] applies when every free pure variable is
//!   its own LHS dimension and self-reads hit exactly the written point:
//!   pure iterations then own disjoint elements, so the pure loops move
//!   *inside* the rdom loops and the innermost one vectorizes.
//!
//! Reduction-domain bounds resolve through [`resolve_rdom_dims`], the same
//! helper the interpreter uses, so both paths iterate the identical domain.
//!
//! Bit-exactness: lowering only reorders the iteration space and rebases
//! producer storage; every value is computed by the same expression over the
//! same inputs as the interpreter, so both backends produce identical buffers
//! (enforced by the differential property suites in `tests/prop_halide.rs`
//! and `tests/prop_reduce.rs`).

use crate::bounds::{affine_decompose, expr_interval};
use crate::expr::{BinOp, Expr};
use crate::func::{Func, Pipeline, UpdateDef};
use crate::realize::RealizeError;
use crate::schedule::Schedule;
use crate::simplify::simplify;
use crate::stmt::{LoopKind, Stmt};
use crate::types::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Cap on the element count of a `compute_at` region; larger inferred regions
/// (typically from non-affine indexing) degrade the producer to
/// `compute_root` instead of allocating absurd scratch buffers.
const MAX_REGION_ELEMS: usize = 1 << 24;

/// One loop of the synthesized nest, outermost first.
#[derive(Debug, Clone)]
struct LoopLevel {
    /// Loop variable name (an output var, or `var.outer` / `var.inner`).
    name: String,
    /// Iteration count expression.
    extent: Expr,
    /// Execution strategy.
    kind: LoopKind,
    /// Original output dimension this loop iterates (innermost-first index).
    dim: usize,
    /// Split role of this loop within its dimension.
    role: LoopRole,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopRole {
    /// The whole dimension.
    Whole,
    /// Outer loop of a split with the given tile factor.
    Outer(usize),
    /// Inner loop of a split with the given tile factor.
    Inner(usize),
}

/// The inferred storage region of one `compute_at` producer dimension:
/// `min = max(0, base_min + Σ coeff·loop_var)`, constant `extent`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDim {
    /// Constant part of the region minimum.
    pub base_min: i64,
    /// Per-loop-variable multipliers of the region minimum.
    pub coeffs: Vec<(String, i64)>,
    /// Constant region extent.
    pub extent: usize,
}

impl RegionDim {
    /// The runtime region minimum as an expression over the enclosing loop
    /// variables, clamped at zero (matching `compute_root`'s `[0, max]`
    /// allocations so both placements clamp reads identically).
    pub fn min_expr(&self) -> Expr {
        let mut e = Expr::int(self.base_min);
        for (var, c) in &self.coeffs {
            e = Expr::add(e, Expr::mul(Expr::int(*c), Expr::var(var)));
        }
        simplify(&Expr::bin(BinOp::Max, e, Expr::int(0)))
    }
}

/// A planned `compute_at` placement for one producer func.
#[derive(Debug, Clone)]
pub struct ComputeAtPlan {
    /// Producer func name.
    pub func: String,
    /// Name of the loop at whose iterations the producer is recomputed.
    pub attach_loop: String,
    /// Storage region per producer dimension (innermost first).
    pub dims: Vec<RegionDim>,
    /// Keep the allocation as a sliding window across attach iterations:
    /// only rows of the last dimension newly exposed by the region
    /// translation are recomputed, the rest shift in place. Set only when
    /// the schedule opted the producer in via `store_sliding` *and* the
    /// region provably slides (last dimension translated by exactly the
    /// attach loop with coefficient 1, all other dimensions stationary).
    pub sliding: bool,
}

/// Result of planning `compute_at` placements: the plans that hold, and the
/// producers that degrade to `compute_root`.
#[derive(Debug, Clone, Default)]
pub struct ComputeAtOutcome {
    /// Producers lowered at a consumer loop.
    pub plans: Vec<ComputeAtPlan>,
    /// Producers that degrade to `compute_root` (value-identical).
    pub demoted: BTreeSet<String>,
}

/// Inline into `expr` every func of `pipeline` that is not named in `keep`
/// (and has a pure definition without reductions), iterating to a fixed
/// point.
pub fn inline_except(
    pipeline: &Pipeline,
    expr: &Expr,
    keep: &BTreeSet<String>,
) -> Result<Expr, RealizeError> {
    let mut result = expr.clone();
    for _ in 0..32 {
        let refs = result.referenced_funcs();
        let to_inline: Vec<String> = refs
            .into_iter()
            .filter(|n| !keep.contains(n) && *n != pipeline.output)
            .collect();
        if to_inline.is_empty() {
            return Ok(result);
        }
        for name in to_inline {
            let func = pipeline
                .funcs
                .get(&name)
                .ok_or_else(|| RealizeError::UndefinedFunc(name.clone()))?;
            if !func.updates.is_empty() || func.pure_def.is_none() {
                // Funcs with reductions cannot be inlined; they are
                // materialized by the realizer and read as sources.
                continue;
            }
            result = crate::realize::inline_one(&result, func);
        }
    }
    Ok(result)
}

fn split_names(var: &str) -> (String, String) {
    (format!("{var}.outer"), format!("{var}.inner"))
}

/// Synthesize the loop structure for `func` over `extents` under `schedule`.
fn build_levels(func: &Func, extents: &[usize], schedule: &Schedule) -> Vec<LoopLevel> {
    let dims = func.vars.len();
    let tiled = match schedule.tile {
        Some((tx, ty)) if dims >= 2 => Some((tx.max(1), ty.max(1))),
        _ => None,
    };
    let mut levels = Vec::new();
    // Plain loops over the dimensions above the tiled pair, outermost first.
    for d in (0..dims).rev() {
        if tiled.is_some() && d < 2 {
            continue;
        }
        levels.push(LoopLevel {
            name: func.vars[d].clone(),
            extent: Expr::int(extents[d] as i64),
            kind: LoopKind::Serial,
            dim: d,
            role: LoopRole::Whole,
        });
    }
    if let Some((tx, ty)) = tiled {
        let (x, y) = (&func.vars[0], &func.vars[1]);
        let (xo, xi) = split_names(x);
        let (yo, yi) = split_names(y);
        let (w, h) = (extents[0], extents[1]);
        levels.push(LoopLevel {
            name: yo,
            extent: Expr::int(h.div_ceil(ty) as i64),
            kind: LoopKind::Serial,
            dim: 1,
            role: LoopRole::Outer(ty),
        });
        levels.push(LoopLevel {
            name: xo.clone(),
            extent: Expr::int(w.div_ceil(tx) as i64),
            kind: LoopKind::Serial,
            dim: 0,
            role: LoopRole::Outer(tx),
        });
        levels.push(LoopLevel {
            name: yi,
            extent: simplify(&Expr::bin(
                BinOp::Min,
                Expr::int(ty as i64),
                Expr::bin(
                    BinOp::Sub,
                    Expr::int(h as i64),
                    Expr::mul(Expr::var(&split_names(y).0), Expr::int(ty as i64)),
                ),
            )),
            kind: LoopKind::Serial,
            dim: 1,
            role: LoopRole::Inner(ty),
        });
        levels.push(LoopLevel {
            name: xi,
            extent: simplify(&Expr::bin(
                BinOp::Min,
                Expr::int(tx as i64),
                Expr::bin(
                    BinOp::Sub,
                    Expr::int(w as i64),
                    Expr::mul(Expr::var(&xo), Expr::int(tx as i64)),
                ),
            )),
            kind: LoopKind::Serial,
            dim: 0,
            role: LoopRole::Inner(tx),
        });
    }
    if levels.is_empty() {
        // 1-D untiled func: a single loop over dimension 0.
        debug_assert!(dims >= 1);
    }
    if schedule.parallel {
        if let Some(first) = levels.first_mut() {
            first.kind = LoopKind::Parallel {
                threads: schedule.threads,
            };
        }
    }
    if schedule.vector_width > 1 {
        if let Some(last) = levels.last_mut() {
            if !matches!(last.kind, LoopKind::Parallel { .. }) {
                last.kind = LoopKind::Vectorized {
                    width: schedule.vector_width,
                };
            }
        }
    }
    levels
}

/// The expression each original output var takes in terms of the loop vars.
fn var_substitution(func: &Func, levels: &[LoopLevel]) -> BTreeMap<String, Expr> {
    let mut subst = BTreeMap::new();
    for level in levels {
        let var = &func.vars[level.dim];
        match level.role {
            LoopRole::Whole => {
                subst.insert(var.clone(), Expr::var(&level.name));
            }
            LoopRole::Outer(f) => {
                let (o, i) = split_names(var);
                subst.insert(
                    var.clone(),
                    Expr::add(Expr::mul(Expr::var(&o), Expr::int(f as i64)), Expr::var(&i)),
                );
            }
            LoopRole::Inner(_) => {}
        }
    }
    subst
}

/// How one loop of the nest participates in region inference.
struct LoopAxis {
    /// Loop variable name.
    name: String,
    /// Loops at or outside the attach level stay symbolic in the region
    /// expression; loops inside it span their full range.
    symbolic: bool,
    /// Upper bound on the loop variable (inclusive); tail-clamped inner tile
    /// loops use the full tile, a sound over-approximation.
    max_iter: i64,
}

/// Derive the storage region of `producer` under the consumer expression:
/// every access's index must be affine in the output variables, and all
/// accesses must share the same coefficients on the symbolic (attach-level
/// and outer) loops, so the region is a pure translation per iteration.
/// Returns `None` (degrade to `compute_root`) otherwise.
#[allow(clippy::too_many_arguments)]
fn infer_region(
    output: &Func,
    extents: &[usize],
    levels: &[LoopLevel],
    attach_idx: usize,
    consumer_expr: &Expr,
    producer: &str,
    producer_dims: usize,
    params: &BTreeMap<String, Value>,
) -> Option<Vec<RegionDim>> {
    // Collect every access to the producer.
    let mut accesses: Vec<&Vec<Expr>> = Vec::new();
    let mut arity_ok = true;
    consumer_expr.visit(&mut |e| {
        if let Expr::FuncRef(name, args) = e {
            if name == producer {
                if args.len() == producer_dims {
                    accesses.push(args);
                } else {
                    arity_ok = false;
                }
            }
        }
    });
    if !arity_ok || accesses.is_empty() {
        return None;
    }

    // Map each original output var to its loop axes: `x` iterated whole maps
    // to one axis with coefficient 1; a tiled `x` maps to `x.outer` with
    // coefficient `tile` and `x.inner` with coefficient 1.
    let axes: Vec<LoopAxis> = levels
        .iter()
        .enumerate()
        .map(|(idx, level)| LoopAxis {
            name: level.name.clone(),
            symbolic: idx <= attach_idx,
            max_iter: match level.role {
                LoopRole::Whole => extents[level.dim] as i64 - 1,
                LoopRole::Outer(t) => extents[level.dim].div_ceil(t) as i64 - 1,
                LoopRole::Inner(t) => t as i64 - 1,
            },
        })
        .collect();
    let axis_coeffs = |var: &str, c: i64| -> Vec<(String, i64)> {
        for level in levels {
            if output.vars[level.dim] != var {
                continue;
            }
            return match level.role {
                LoopRole::Whole => vec![(level.name.clone(), c)],
                LoopRole::Outer(t) => {
                    let (o, i) = split_names(var);
                    vec![(o, c * t as i64), (i, c)]
                }
                LoopRole::Inner(_) => Vec::new(), // covered by the Outer entry
            };
        }
        Vec::new()
    };

    let mut dims = Vec::with_capacity(producer_dims);
    for d in 0..producer_dims {
        let mut shared_sym: Option<BTreeMap<String, i64>> = None;
        let mut region_min = i64::MAX;
        let mut region_max = i64::MIN;
        for args in &accesses {
            let (var_coeffs, konst) = affine_decompose(&args[d], params)?;
            // Translate original-var coefficients to loop-axis coefficients.
            let mut per_axis: BTreeMap<String, i64> = BTreeMap::new();
            for (var, c) in &var_coeffs {
                if *c == 0 {
                    continue;
                }
                let translated = axis_coeffs(var, *c);
                if translated.is_empty() {
                    return None; // references a variable with no loop (free var)
                }
                for (axis, ac) in translated {
                    *per_axis.entry(axis).or_insert(0) += ac;
                }
            }
            // Split into the symbolic (translation) part and the inner span.
            let mut sym: BTreeMap<String, i64> = BTreeMap::new();
            let (mut lo, mut hi) = (konst, konst);
            for axis in &axes {
                let c = per_axis.get(&axis.name).copied().unwrap_or(0);
                if c == 0 {
                    continue;
                }
                if axis.symbolic {
                    sym.insert(axis.name.clone(), c);
                } else if c > 0 {
                    hi += c * axis.max_iter;
                } else {
                    lo += c * axis.max_iter;
                }
            }
            match &shared_sym {
                None => shared_sym = Some(sym),
                Some(prev) if *prev == sym => {}
                // Accesses translate differently per iteration (e.g. P(x)
                // and P(2x)): the union is not a fixed-extent translation.
                Some(_) => return None,
            }
            region_min = region_min.min(lo);
            region_max = region_max.max(hi);
        }
        let extent = (region_max - region_min + 1).max(1) as usize;
        dims.push(RegionDim {
            base_min: region_min,
            coeffs: shared_sym.unwrap_or_default().into_iter().collect(),
            extent,
        });
    }
    let total: usize = dims.iter().map(|d| d.extent).product();
    if total == 0 || total > MAX_REGION_ELEMS {
        return None;
    }
    Some(dims)
}

/// Whether an inferred region slides along its last dimension as the attach
/// loop advances: the last dimension's minimum must be translated by exactly
/// the attach loop with coefficient 1 (so consecutive iterations shift the
/// window by at most one row) with extent > 1, and every other dimension must
/// be stationary (no enclosing-loop coefficients), so the window's content is
/// a pure function of the last dimension's minimum.
fn region_slides(dims: &[RegionDim], attach_loop: &str) -> bool {
    let Some((last, rest)) = dims.split_last() else {
        return false;
    };
    last.extent > 1
        && last.coeffs.len() == 1
        && last.coeffs[0].0 == attach_loop
        && last.coeffs[0].1 == 1
        && rest.iter().all(|d| d.coeffs.is_empty())
}

/// Plan `compute_at` placements for the output func of `pipeline`.
///
/// `roots` are the funcs that will be materialized before the output runs
/// (`compute_root` plus funcs with reductions); they stay un-inlined during
/// planning. Any `compute_at` entry that cannot be honoured — unknown func,
/// reduction, the output itself, already `compute_root`, unknown attach var,
/// non-affine or oversized region — lands in
/// [`ComputeAtOutcome::demoted`] and degrades to `compute_root`.
///
/// # Errors
/// Returns an error if a referenced func is undefined.
pub fn plan_compute_at(
    pipeline: &Pipeline,
    schedule: &Schedule,
    output_extents: &[usize],
    params: &BTreeMap<String, Value>,
    roots: &BTreeSet<String>,
) -> Result<ComputeAtOutcome, RealizeError> {
    let output = pipeline.output_func();
    let mut outcome = ComputeAtOutcome::default();
    if schedule.compute_at.is_empty() {
        return Ok(outcome);
    }

    // Update definitions are interpreted against materialized buffers, so any
    // func an update expression references (of the output or of a func that
    // will itself be materialized) must exist as a buffer — such producers
    // cannot be scoped compute_at allocations.
    let mut update_refs: BTreeSet<String> = BTreeSet::new();
    let mut collect_update_refs = |f: &Func| {
        for u in &f.updates {
            for e in u.lhs.iter().chain(std::iter::once(&u.value)) {
                update_refs.extend(e.referenced_funcs());
            }
        }
    };
    collect_update_refs(output);
    for name in roots {
        if let Some(f) = pipeline.funcs.get(name) {
            collect_update_refs(f);
        }
    }

    let mut candidates: Vec<(String, String)> = Vec::new();
    for (func, var) in &schedule.compute_at {
        let eligible = pipeline.funcs.get(func).is_some_and(|f| {
            f.pure_def.is_some() && f.updates.is_empty() && *func != pipeline.output
        }) && !roots.contains(func)
            && !update_refs.contains(func)
            && output.vars.contains(var);
        if eligible {
            candidates.push((func.clone(), var.clone()));
        } else if pipeline.funcs.contains_key(func) && *func != pipeline.output {
            outcome.demoted.insert(func.clone());
        }
    }
    if candidates.is_empty() {
        return Ok(outcome);
    }

    // The consumer expression with roots and all candidates left as FuncRefs.
    let mut keep: BTreeSet<String> = roots.clone();
    keep.extend(candidates.iter().map(|(f, _)| f.clone()));
    let consumer = match &output.pure_def {
        Some(e) => inline_except(pipeline, e, &keep)?,
        None => return Ok(outcome),
    };

    let levels = build_levels(output, output_extents, schedule);
    for (func, var) in candidates {
        let attach_idx = levels
            .iter()
            .rposition(|l| output.vars[l.dim] == var)
            .expect("attach var has a loop");
        let producer_dims = pipeline.funcs[&func].dims();
        if !consumer.referenced_funcs().contains(&func) {
            // Not referenced (it may feed only other producers, which inline
            // it); treat as compute_root so it is still materialized once.
            outcome.demoted.insert(func);
            continue;
        }
        match infer_region(
            output,
            output_extents,
            &levels,
            attach_idx,
            &consumer,
            &func,
            producer_dims,
            params,
        ) {
            Some(dims) => {
                let attach_loop = levels[attach_idx].name.clone();
                let sliding =
                    schedule.store_sliding.contains(&func) && region_slides(&dims, &attach_loop);
                outcome.plans.push(ComputeAtPlan {
                    func,
                    attach_loop,
                    dims,
                    sliding,
                });
            }
            None => {
                outcome.demoted.insert(func);
            }
        }
    }
    Ok(outcome)
}

/// Rewrite accesses to a `compute_at` producer into its local region buffer:
/// `P(args...)` becomes `P(args - region_min...)`.
fn rebase_producer_refs(e: &Expr, plan: &ComputeAtPlan) -> Expr {
    match e {
        Expr::FuncRef(name, args) if *name == plan.func => {
            let rebased: Vec<Expr> = args
                .iter()
                .enumerate()
                .map(|(d, a)| {
                    let a = rebase_producer_refs(a, plan);
                    match plan.dims.get(d) {
                        Some(dim) => simplify(&Expr::bin(BinOp::Sub, a, dim.min_expr())),
                        None => a,
                    }
                })
                .collect();
            Expr::FuncRef(name.clone(), rebased)
        }
        Expr::FuncRef(name, args) => Expr::FuncRef(
            name.clone(),
            args.iter().map(|a| rebase_producer_refs(a, plan)).collect(),
        ),
        Expr::Image(name, args) => Expr::Image(
            name.clone(),
            args.iter().map(|a| rebase_producer_refs(a, plan)).collect(),
        ),
        Expr::Cast(ty, inner) => Expr::Cast(*ty, Box::new(rebase_producer_refs(inner, plan))),
        Expr::Binary(op, a, b) => Expr::bin(
            *op,
            rebase_producer_refs(a, plan),
            rebase_producer_refs(b, plan),
        ),
        Expr::Cmp(op, a, b) => Expr::cmp(
            *op,
            rebase_producer_refs(a, plan),
            rebase_producer_refs(b, plan),
        ),
        Expr::Select(c, t, o) => Expr::select(
            rebase_producer_refs(c, plan),
            rebase_producer_refs(t, plan),
            rebase_producer_refs(o, plan),
        ),
        Expr::Call(c, args) => Expr::Call(
            *c,
            args.iter().map(|a| rebase_producer_refs(a, plan)).collect(),
        ),
        _ => e.clone(),
    }
}

/// Build the produce loops for a `compute_at` producer at its attach point.
fn build_producer_nest(
    pipeline: &Pipeline,
    plan: &ComputeAtPlan,
    roots: &BTreeSet<String>,
    schedule: &Schedule,
    next_store_id: &mut usize,
) -> Result<Stmt, RealizeError> {
    let func = &pipeline.funcs[&plan.func];
    let def = func
        .pure_def
        .as_ref()
        .expect("compute_at producers are pure");
    let body_expr = inline_except(pipeline, def, roots)?;
    // Substitute the producer's vars with local coordinates offset by the
    // region minimum.
    let local_name = |d: usize| format!("{}.s{}", plan.func, d);
    let substituted = body_expr.substitute(&|var| {
        func.vars
            .iter()
            .position(|v| v == var)
            .map(|d| Expr::add(Expr::var(&local_name(d)), plan.dims[d].min_expr()))
    });
    let store = Stmt::Store {
        id: {
            let id = *next_store_id;
            *next_store_id += 1;
            id
        },
        buffer: plan.func.clone(),
        indices: (0..func.dims())
            .map(|d| Expr::var(&local_name(d)))
            .collect(),
        value: simplify(&substituted),
    };
    let mut body = store;
    let slide_dim = plan.sliding.then(|| func.dims() - 1);
    for d in 0..func.dims() {
        let kind = if d == 0 && schedule.vector_width > 1 && slide_dim != Some(d) {
            LoopKind::Vectorized {
                width: schedule.vector_width,
            }
        } else {
            LoopKind::Serial
        };
        // The sliding dimension's loop starts at the warm-row count bound by
        // the enclosing `SlideWindow` node: rows below it shifted in place
        // and are not recomputed.
        let (min, extent) = if slide_dim == Some(d) {
            let warm = Expr::var(&warm_var_name(&plan.func));
            (
                warm.clone(),
                simplify(&Expr::bin(
                    BinOp::Sub,
                    Expr::int(plan.dims[d].extent as i64),
                    warm,
                )),
            )
        } else {
            (Expr::int(0), Expr::int(plan.dims[d].extent as i64))
        };
        body = Stmt::For {
            var: local_name(d),
            min,
            extent,
            kind,
            body: Box::new(body),
        };
    }
    Ok(Stmt::Produce {
        func: plan.func.clone(),
        body: Box::new(body),
    })
}

/// Name of the pseudo-variable a [`Stmt::SlideWindow`] binds to the first
/// row the producer nest must recompute.
fn warm_var_name(func: &str) -> String {
    format!("{func}.warm")
}

/// Lower the pure definition of the output func of `pipeline` to loop-nest
/// IR.
///
/// `roots` names the funcs materialized as separate buffers before this
/// statement runs (read as sources); `outcome` carries the planned
/// `compute_at` placements from [`plan_compute_at`].
///
/// # Errors
/// Returns an error if a referenced func is undefined.
pub fn lower_pure(
    pipeline: &Pipeline,
    schedule: &Schedule,
    output_extents: &[usize],
    roots: &BTreeSet<String>,
    outcome: &ComputeAtOutcome,
) -> Result<Stmt, RealizeError> {
    let output = pipeline.output_func();
    let def = match &output.pure_def {
        Some(e) => e,
        None => return Ok(Stmt::Block(Vec::new())),
    };
    let mut keep: BTreeSet<String> = roots.clone();
    keep.extend(outcome.plans.iter().map(|p| p.func.clone()));
    let consumer = inline_except(pipeline, def, &keep)?;

    let levels = build_levels(output, output_extents, schedule);
    let subst = var_substitution(output, &levels);

    // Rewrite the consumer in terms of loop variables, then rebase accesses
    // to each compute_at producer into its local region buffer.
    let mut value = consumer.substitute(&|var| subst.get(var).cloned());
    for plan in &outcome.plans {
        value = rebase_producer_refs(&value, plan);
    }
    let value = simplify(&value);
    let indices: Vec<Expr> = output
        .vars
        .iter()
        .map(|v| {
            let e = subst.get(v).cloned().unwrap_or_else(|| Expr::var(v));
            simplify(&e)
        })
        .collect();

    let mut next_store_id = 0usize;
    let store = Stmt::Store {
        id: {
            let id = next_store_id;
            next_store_id += 1;
            id
        },
        buffer: output.name.clone(),
        indices,
        value,
    };

    // Assemble the nest from innermost to outermost, attaching compute_at
    // producers just inside their attach loop.
    let mut body = store;
    for level in levels.iter().rev() {
        // Allocations directly inside this loop's body, wrapping the loops
        // below (which include the consumer store).
        for plan in outcome.plans.iter().rev() {
            if plan.attach_loop == level.name {
                let produce =
                    build_producer_nest(pipeline, plan, roots, schedule, &mut next_store_id)?;
                let func = &pipeline.funcs[&plan.func];
                let produce = if plan.sliding {
                    let last = plan.dims.len() - 1;
                    Stmt::SlideWindow {
                        name: plan.func.clone(),
                        dim: last,
                        extent: plan.dims[last].extent,
                        min: plan.dims[last].min_expr(),
                        warm_var: warm_var_name(&plan.func),
                        body: Box::new(produce),
                    }
                } else {
                    produce
                };
                body = Stmt::Allocate {
                    name: plan.func.clone(),
                    ty: func.ty,
                    extents: plan.dims.iter().map(|d| d.extent).collect(),
                    body: Box::new(Stmt::block(vec![produce, body])),
                };
            }
        }
        body = Stmt::For {
            var: level.name.clone(),
            min: Expr::int(0),
            extent: level.extent.clone(),
            kind: level.kind,
            body: Box::new(body),
        };
    }
    Ok(Stmt::Produce {
        func: output.name.clone(),
        body: Box::new(body),
    })
}

// ---------------------------------------------------------------------------
// Multi-output fusion
// ---------------------------------------------------------------------------

/// Shared outermost loop variable of a multi-output fused nest.
pub const FUSED_LOOP_VAR: &str = "fused.outer";

/// Lower an ordered group of materialized stages into ONE shared loop nest
/// carrying a `Produce` block per stage, so a `compose_after` chain walks the
/// image once instead of once per stage.
///
/// Each member keeps its own full output buffer (fusion shares the *loop*,
/// not storage) and its own inner loops — the innermost still vectorizes — so
/// the per-store execution tiers engage unchanged. Only the outermost (last)
/// dimension is shared; it is tagged parallel when the schedule asks for it.
///
/// Returns `Ok(None)` when the group is not admissible, which the caller must
/// treat as "lower every stage separately" (value-identical). Admissibility:
///
/// * every member is pure (no updates), at least 2-D, untiled, with the same
///   outermost extent;
/// * every read of an earlier in-group member indexes that member's last
///   dimension as exactly `own_last_var + k` with `k <= 0` (`k == 0` when the
///   shared loop is parallel, since rows behind the current one may belong to
///   another worker's unfinished chunk) — so no member ever reads a row the
///   shared iteration has not produced yet;
/// * no member reads a *later* in-group member.
///
/// Under those rules every cross-member read sees exactly the bytes the
/// unfused schedule would have materialized, so fusion is bit-identical.
pub fn lower_fused_group(
    pipeline: &Pipeline,
    schedule: &Schedule,
    members: &[(String, Vec<usize>)],
    keep: &BTreeSet<String>,
    params: &BTreeMap<String, Value>,
) -> Result<Option<Stmt>, RealizeError> {
    if members.len() < 2 || !schedule.fuse_outputs || schedule.tile.is_some() {
        return Ok(None);
    }
    let outer_extent = match members[0].1.last() {
        Some(&e) => e,
        None => return Ok(None),
    };
    // Admissibility screen + per-member inlined values.
    let mut values = Vec::with_capacity(members.len());
    for (idx, (name, extents)) in members.iter().enumerate() {
        let func = match pipeline.funcs.get(name) {
            Some(f) => f,
            None => return Ok(None),
        };
        let def = match (&func.pure_def, func.updates.is_empty()) {
            (Some(d), true) => d,
            _ => return Ok(None),
        };
        if func.dims() < 2 || extents.len() != func.dims() || extents.last() != Some(&outer_extent)
        {
            return Ok(None);
        }
        let value = inline_except(pipeline, def, keep)?;
        let own_last = func.vars.last().expect("dims >= 2").clone();
        let mut ok = true;
        value.visit(&mut |e| {
            if let Expr::FuncRef(g, args) = e {
                let Some(gidx) = members.iter().position(|(m, _)| m == g) else {
                    return; // materialized before the group runs
                };
                if gidx >= idx {
                    ok = false; // reads a not-yet-produced group member
                    return;
                }
                let gdims = members[gidx].1.len();
                if args.len() != gdims {
                    ok = false;
                    return;
                }
                match affine_decompose(&args[gdims - 1], params) {
                    Some((coeffs, konst)) => {
                        let mut coeffs = coeffs;
                        let own = coeffs.remove(&own_last).unwrap_or(0);
                        let others_zero = coeffs.values().all(|&v| v == 0);
                        let lag_ok = if schedule.parallel {
                            konst == 0
                        } else {
                            konst <= 0
                        };
                        if own != 1 || !others_zero || !lag_ok {
                            ok = false;
                        }
                    }
                    None => ok = false,
                }
            }
        });
        if !ok {
            return Ok(None);
        }
        values.push(value);
    }

    // Emit: one shared outer loop carrying each member's Produce in order.
    let mut produces = Vec::with_capacity(members.len());
    for (store_id, ((name, extents), value)) in members.iter().zip(values).enumerate() {
        let func = &pipeline.funcs[name];
        let dims = func.dims();
        let local = |d: usize| format!("{name}.f{d}");
        let substituted = value.substitute(&|var| {
            func.vars.iter().position(|v| v == var).map(|d| {
                if d == dims - 1 {
                    Expr::var(FUSED_LOOP_VAR)
                } else {
                    Expr::var(&local(d))
                }
            })
        });
        let mut body = Stmt::Store {
            id: store_id,
            buffer: name.clone(),
            indices: (0..dims)
                .map(|d| {
                    if d == dims - 1 {
                        Expr::var(FUSED_LOOP_VAR)
                    } else {
                        Expr::var(&local(d))
                    }
                })
                .collect(),
            value: simplify(&substituted),
        };
        for (d, &extent) in extents.iter().enumerate().take(dims - 1) {
            let kind = if d == 0 && schedule.vector_width > 1 {
                LoopKind::Vectorized {
                    width: schedule.vector_width,
                }
            } else {
                LoopKind::Serial
            };
            body = Stmt::For {
                var: local(d),
                min: Expr::int(0),
                extent: Expr::int(extent as i64),
                kind,
                body: Box::new(body),
            };
        }
        produces.push(Stmt::Produce {
            func: name.clone(),
            body: Box::new(body),
        });
    }
    let kind = if schedule.parallel {
        LoopKind::Parallel {
            threads: schedule.threads,
        }
    } else {
        LoopKind::Serial
    };
    Ok(Some(Stmt::For {
        var: FUSED_LOOP_VAR.to_string(),
        min: Expr::int(0),
        extent: Expr::int(outer_extent as i64),
        kind,
        body: Box::new(Stmt::Block(produces)),
    }))
}

// ---------------------------------------------------------------------------
// Update (reduction) lowering
// ---------------------------------------------------------------------------

/// Resolve a reduction domain's dimensions to concrete `(var, min, extent)`
/// triples against the bound scalar parameters (image-extent params like
/// `input_1.extent.0` included).
///
/// This is the *only* bounds resolution both the reduction interpreter
/// ([`run_update`]'s oracle path in `crate::compile`) and the lowered update
/// nests use, so the two cannot disagree about the iteration space.
///
/// [`run_update`]: crate::compile
pub fn resolve_rdom_dims(
    rdom: &crate::func::RDom,
    params: &BTreeMap<String, Value>,
) -> Vec<(String, i64, i64)> {
    let empty = BTreeMap::new();
    rdom.dims
        .iter()
        .map(|(var, min_e, extent_e)| {
            let min = expr_interval(min_e, &empty, params).min;
            let extent = expr_interval(extent_e, &empty, params).min;
            (var.clone(), min, extent)
        })
        .collect()
}

/// The accumulation strategy chosen for one lowered update definition.
///
/// Both strategies iterate the reduction domain in the interpreter's order
/// (first rdom dimension innermost among the rdom loops) and are bit-identical
/// to [`run_update`]; they differ in where the free pure dimensions sit and
/// whether the innermost one may run in lanes.
///
/// [`run_update`]: crate::compile
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// *Privatized*: every free pure variable `v` is its own LHS dimension
    /// (`lhs[dim(v)] == v`) and every self-reference reads exactly the LHS
    /// point, so distinct pure iterations touch provably disjoint elements.
    /// The pure loops move *inside* the rdom loops and the innermost one
    /// (`lane_var`) is marked vectorized: lanes of the guarded store write
    /// disjoint cells and read only their own, so batching them is exact.
    Privatized {
        /// The pure loop variable executed in lanes.
        lane_var: String,
    },
    /// *Sequential*: the update's writes may collide or chain (data-dependent
    /// histogram LHS, scans reading `f(r-1)`), so the nest replicates the
    /// interpreter's order exactly — free pure dims outermost, rdom dims
    /// inner, every loop serial, one element at a time.
    Sequential,
}

/// Free pure variables of an update over an ordered var list: the vars
/// referenced (as [`Expr::Var`]) by the LHS or value, paired with their
/// dimension index, in dimension order.
///
/// This definition is load-bearing for the ordering contract between the
/// lowered nests and the reduction interpreter: both `lower_update` and
/// `run_update` (in `crate::compile`) derive their pure loops from this one
/// function, so they cannot disagree about which dims iterate.
pub(crate) fn free_pure_vars_in(vars: &[String], update: &UpdateDef) -> Vec<(usize, String)> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for e in update.lhs.iter().chain(std::iter::once(&update.value)) {
        e.visit(&mut |node| {
            if let Expr::Var(n) = node {
                seen.insert(n.clone());
            }
        });
    }
    vars.iter()
        .enumerate()
        .filter(|(_, v)| seen.contains(*v))
        .map(|(d, v)| (d, v.clone()))
        .collect()
}

/// [`free_pure_vars_in`] over a func's own vars.
fn free_pure_vars(func: &Func, update: &UpdateDef) -> Vec<(usize, String)> {
    free_pure_vars_in(&func.vars, update)
}

/// Choose the accumulation strategy for `update` (see [`UpdateStrategy`]).
pub fn update_strategy(func: &Func, update: &UpdateDef) -> UpdateStrategy {
    strategy_for(func, update, &free_pure_vars(func, update))
}

/// [`update_strategy`] against a precomputed free-pure-var list, so callers
/// that already hold one ([`lower_update`]) do not walk the expressions
/// twice — and there is exactly one free-var definition both decisions use.
fn strategy_for(func: &Func, update: &UpdateDef, free: &[(usize, String)]) -> UpdateStrategy {
    if free.is_empty() || update.lhs.len() != func.vars.len() {
        return UpdateStrategy::Sequential;
    }
    // Every free pure var must be its own LHS dimension, verbatim.
    for (d, v) in free {
        if update.lhs[*d] != Expr::var(v) {
            return UpdateStrategy::Sequential;
        }
    }
    // Every self-reference — in the value *or* inside an LHS index
    // expression — must read exactly the point being written. An LHS index
    // reading the func can never satisfy that (it is a sub-expression of the
    // point, not the point), so it forces the sequential order.
    let mut self_reads_ok = true;
    for e in update.lhs.iter().chain(std::iter::once(&update.value)) {
        e.visit(&mut |node| {
            if let Expr::FuncRef(name, args) = node {
                if *name == func.name && args.as_slice() != update.lhs.as_slice() {
                    self_reads_ok = false;
                }
            }
        });
    }
    if !self_reads_ok {
        return UpdateStrategy::Sequential;
    }
    let lane_var = free[0].1.clone();
    UpdateStrategy::Privatized { lane_var }
}

/// Lower one update definition of `func` into a loop nest over its reduction
/// domain (and free pure dimensions), producing a [`Stmt::ReduceStore`] per
/// element. Returns `None` when the update's shape is not lowerable (an LHS
/// arity mismatch, or variables that are neither rdom vars nor pure vars of
/// the func) — the caller keeps the reduction interpreter for it.
///
/// Ordering contract (the bit-exactness obligation against [`run_update`]):
///
/// * **Sequential** nests replicate the oracle exactly: free pure dims
///   outermost (highest dimension outermost), rdom dims inner (first rdom
///   dimension innermost), all serial.
/// * **Privatized** nests hoist the rdom loops outside the pure loops and
///   vectorize the innermost pure loop. This is exact because privatization
///   proved each pure iteration owns its output element: per element, the
///   rdom updates still apply in the oracle's rdom order.
///
/// [`run_update`]: crate::compile
pub fn lower_update(
    func: &Func,
    update: &UpdateDef,
    output_extents: &[usize],
    schedule: &Schedule,
    params: &BTreeMap<String, Value>,
    next_store_id: &mut usize,
) -> Option<Stmt> {
    if update.lhs.len() != func.dims() || output_extents.len() != func.dims() {
        return None;
    }
    // Every variable must resolve to an rdom dim or a pure var of the func.
    let rdom_dims = resolve_rdom_dims(&update.rdom, params);
    let rdom_names: BTreeSet<&str> = rdom_dims.iter().map(|(v, _, _)| v.as_str()).collect();
    let mut unknown = false;
    for e in update.lhs.iter().chain(std::iter::once(&update.value)) {
        e.visit(&mut |node| match node {
            Expr::Var(n) if !func.vars.contains(n) => unknown = true,
            Expr::RVar(n) if !rdom_names.contains(n.as_str()) => unknown = true,
            _ => {}
        });
    }
    if unknown {
        return None;
    }
    let free = free_pure_vars(func, update);
    let strategy = strategy_for(func, update, &free);

    let store = Stmt::ReduceStore {
        id: {
            let id = *next_store_id;
            *next_store_id += 1;
            id
        },
        buffer: func.name.clone(),
        indices: update.lhs.clone(),
        value: update.value.clone(),
    };

    // Wrap loops innermost-first. Pure loops iterate the full output extent
    // of their dimension; rdom loops iterate the resolved domain.
    let pure_loop = |d: usize, var: &str, kind: LoopKind, body: Stmt| Stmt::For {
        var: var.to_string(),
        min: Expr::int(0),
        extent: Expr::int(output_extents[d] as i64),
        kind,
        body: Box::new(body),
    };
    let rdom_loop = |(var, min, extent): &(String, i64, i64), body: Stmt| Stmt::For {
        var: var.clone(),
        min: Expr::int(*min),
        extent: Expr::int(*extent),
        kind: LoopKind::Serial,
        body: Box::new(body),
    };

    let mut body = store;
    match &strategy {
        UpdateStrategy::Privatized { lane_var } => {
            // Pure dims inside (dim 0 innermost, the lane loop vectorized),
            // rdom dims outside (dim 0 innermost among them).
            for (d, var) in &free {
                let kind = if var == lane_var && schedule.vector_width > 1 {
                    LoopKind::Vectorized {
                        width: schedule.vector_width,
                    }
                } else {
                    LoopKind::Serial
                };
                body = pure_loop(*d, var, kind, body);
            }
            for dim in &rdom_dims {
                body = rdom_loop(dim, body);
            }
        }
        UpdateStrategy::Sequential => {
            // The interpreter's order verbatim: rdom inner, pure dims outer.
            for dim in &rdom_dims {
                body = rdom_loop(dim, body);
            }
            for (d, var) in &free {
                body = pure_loop(*d, var, LoopKind::Serial, body);
            }
        }
    }
    // Parallel reduction accumulation: when the schedule asks for parallelism
    // and the nest's *outermost* loop is a reduction-domain loop (always true
    // for Privatized nests, and for Sequential nests with no free pure vars —
    // the histogram shape), tag it ParallelReduce. The executor splits that
    // domain across workers with private accumulator buffers merged by
    // wrapping adds, and degrades to serial whenever the stores are not
    // merge-admissible — so the tag never changes values. Sequential nests
    // with pure loops outermost are left untouched: splitting a pure loop
    // would privatize per output row, not per reduction chunk.
    if schedule.parallel {
        if let Stmt::For { var, kind, .. } = &mut body {
            if rdom_names.contains(var.as_str()) {
                *kind = LoopKind::ParallelReduce {
                    threads: schedule.threads,
                };
            }
        }
    }
    Some(Stmt::Produce {
        func: func.name.clone(),
        body: Box::new(body),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::func::ImageParam;
    use crate::realize::{ExecBackend, RealizeInputs, Realizer};
    use crate::types::ScalarType;

    /// out(x, y) = (bright(x, y) + bright(x+2, y+1)) with bright = in + 17.
    fn two_stage() -> Pipeline {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let bright = Func::pure(
            "bright",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::add(
                Expr::cast(
                    ScalarType::UInt16,
                    Expr::Image("input_1".into(), vec![x.clone(), y.clone()]),
                ),
                Expr::int(17),
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::add(
                    Expr::FuncRef("bright".into(), vec![x.clone(), y.clone()]),
                    Expr::FuncRef(
                        "bright".into(),
                        vec![Expr::add(x, Expr::int(2)), Expr::add(y, Expr::int(1))],
                    ),
                ),
            ),
        );
        Pipeline::new(out, vec![ImageParam::new("input_1", ScalarType::UInt8, 2)]).with_func(bright)
    }

    fn image(w: usize, h: usize) -> Buffer {
        let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
        let mut s = 3u64;
        for c in b.coords().collect::<Vec<_>>() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.set(&c, crate::types::Value::Int(((s >> 33) % 256) as i64));
        }
        b
    }

    #[test]
    fn lowered_nest_shape_untiled() {
        let p = two_stage();
        let schedule = Schedule::naive().with_parallel(true).with_vector_width(4);
        let stmt = lower_pure(
            &p,
            &schedule,
            &[8, 6],
            &BTreeSet::new(),
            &ComputeAtOutcome::default(),
        )
        .unwrap();
        assert_eq!(stmt.loop_count(), 2);
        assert_eq!(stmt.store_count(), 1);
        let text = stmt.to_string();
        assert!(text.contains("produce out:"), "{text}");
        assert!(text.contains("for[parallel] x_1"), "{text}");
        assert!(text.contains("for[vectorized(4)] x_0"), "{text}");
        // bright is fully inlined: the store reads the input directly.
        assert!(text.contains("input_1("), "{text}");
        assert!(!text.contains("bright"), "{text}");
    }

    #[test]
    fn lowered_nest_shape_tiled() {
        let p = two_stage();
        let schedule = Schedule::naive().with_tile(Some((4, 4)));
        let stmt = lower_pure(
            &p,
            &schedule,
            &[10, 6],
            &BTreeSet::new(),
            &ComputeAtOutcome::default(),
        )
        .unwrap();
        assert_eq!(
            stmt.loop_count(),
            4,
            "tiling splits both dimensions:\n{stmt}"
        );
        let text = stmt.to_string();
        assert!(text.contains("x_0.outer"), "{text}");
        assert!(text.contains("x_1.inner"), "{text}");
        // Tail handling: the inner extents are min(tile, remaining).
        assert!(text.contains("min("), "{text}");
    }

    #[test]
    fn compute_at_plans_row_region() {
        let p = two_stage();
        let schedule = Schedule::naive().with_compute_at("bright", "x_1");
        let params = BTreeMap::new();
        let outcome = plan_compute_at(&p, &schedule, &[8, 6], &params, &BTreeSet::new()).unwrap();
        assert!(outcome.demoted.is_empty(), "{outcome:?}");
        assert_eq!(outcome.plans.len(), 1);
        let plan = &outcome.plans[0];
        assert_eq!(plan.func, "bright");
        assert_eq!(plan.attach_loop, "x_1");
        // Per row: x spans [x, x+2] over the full width => extent 8+2+1=11...
        // accesses are bright(x, y) and bright(x+2, y+1): dim0 covers [0, 9].
        assert_eq!(plan.dims[0].extent, 10);
        assert_eq!(plan.dims[0].base_min, 0);
        assert!(plan.dims[0].coeffs.is_empty());
        // dim1 covers [y, y+1]: extent 2, min = 0 + 1*x_1.
        assert_eq!(plan.dims[1].extent, 2);
        assert_eq!(plan.dims[1].coeffs, vec![("x_1".to_string(), 1)]);

        let stmt = lower_pure(&p, &schedule, &[8, 6], &BTreeSet::new(), &outcome).unwrap();
        assert_eq!(stmt.allocated_buffers(), vec!["bright".to_string()]);
        assert_eq!(stmt.store_count(), 2, "{stmt}");
        let text = stmt.to_string();
        assert!(
            text.contains("allocate bright[uint16_t] extents=[10, 2]"),
            "{text}"
        );
        assert!(text.contains("produce bright:"), "{text}");
    }

    #[test]
    fn compute_at_matches_other_placements() {
        let p = two_stage();
        let input = image(12, 9);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let baseline = Realizer::new(Schedule::naive())
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[10, 8], &inputs)
            .unwrap();
        for schedule in [
            Schedule::naive().with_compute_at("bright", "x_1"),
            Schedule::naive().with_compute_at("bright", "x_0"),
            Schedule::naive()
                .with_compute_at("bright", "x_1")
                .with_tile(Some((4, 4))),
            Schedule::stencil_default().with_compute_at("bright", "x_1"),
            Schedule::naive().with_compute_root("bright"),
        ] {
            for backend in [ExecBackend::Interpret, ExecBackend::Lowered] {
                let out = Realizer::new(schedule.clone())
                    .with_backend(backend)
                    .realize(&p, &[10, 8], &inputs)
                    .unwrap();
                assert_eq!(out, baseline, "{backend:?} under [{schedule}] diverged");
            }
        }
    }

    #[test]
    fn update_strategy_classifies_privatized_and_sequential() {
        use crate::func::{RDom, UpdateDef};
        let mk = |lhs: Vec<Expr>, value: Expr| UpdateDef {
            lhs,
            value,
            rdom: RDom::with_constant_bounds("r_0", &[(0, 4)]),
        };
        let f = Func::pure("f", &["x_0"], ScalarType::UInt32, Expr::int(0));
        // f(x) = f(x) + r: every free pure var owns its LHS dim, self-read at
        // the LHS point — privatized.
        let jacobi = mk(
            vec![Expr::var("x_0")],
            Expr::add(
                Expr::FuncRef("f".into(), vec![Expr::var("x_0")]),
                Expr::RVar("r_0.x".into()),
            ),
        );
        assert_eq!(
            update_strategy(&f, &jacobi),
            UpdateStrategy::Privatized {
                lane_var: "x_0".into()
            }
        );
        // A scan reads f(r-1) ≠ LHS: sequential.
        let scan = mk(
            vec![Expr::RVar("r_0.x".into())],
            Expr::add(
                Expr::FuncRef(
                    "f".into(),
                    vec![Expr::add(Expr::RVar("r_0.x".into()), Expr::int(-1))],
                ),
                Expr::int(1),
            ),
        );
        assert_eq!(update_strategy(&f, &scan), UpdateStrategy::Sequential);
        // Data-dependent LHS (histogram): no free pure vars — sequential.
        let hist = mk(
            vec![Expr::Image("in".into(), vec![Expr::RVar("r_0.x".into())])],
            Expr::add(
                Expr::FuncRef(
                    "f".into(),
                    vec![Expr::Image("in".into(), vec![Expr::RVar("r_0.x".into())])],
                ),
                Expr::int(1),
            ),
        );
        assert_eq!(update_strategy(&f, &hist), UpdateStrategy::Sequential);
        // Free pure var that is NOT its own LHS dim (f(x*0) = ... x ...):
        // writes collide across pure iterations — sequential.
        let collide = mk(
            vec![Expr::mul(Expr::var("x_0"), Expr::int(0))],
            Expr::var("x_0"),
        );
        assert_eq!(update_strategy(&f, &collide), UpdateStrategy::Sequential);
    }

    /// A self-read hiding inside an *LHS index expression* (the func's own
    /// value used as a destination index) must force the sequential order:
    /// under the privatized (rdom-hoisted, vectorized) nest, a lane could
    /// read a cell another pure iteration already mutated, diverging from
    /// the interpreter's pure-outer order.
    #[test]
    fn lhs_self_read_forces_sequential_and_matches_oracle() {
        use crate::func::{RDom, UpdateDef};
        let x = Expr::var("x_0");
        let update = UpdateDef {
            lhs: vec![
                x.clone(),
                Expr::FuncRef(
                    "f".into(),
                    vec![Expr::add(x.clone(), Expr::int(1)), Expr::int(0)],
                ),
            ],
            value: Expr::cast(ScalarType::UInt32, Expr::add(Expr::RVar("r_0.x".into()), x)),
            rdom: RDom::with_constant_bounds("r_0", &[(0, 3)]),
        };
        let f = Func::pure(
            "f",
            &["x_0", "x_1"],
            ScalarType::UInt32,
            Expr::cast(ScalarType::UInt32, Expr::int(0)),
        )
        .with_update(update.clone());
        assert_eq!(
            update_strategy(&f, &update),
            UpdateStrategy::Sequential,
            "an LHS self-read must not privatize"
        );
        let p = Pipeline::new(f, Vec::new());
        let inputs = RealizeInputs::new();
        let oracle = Realizer::new(Schedule::stencil_default())
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[6, 6], &inputs)
            .unwrap();
        let compiled = Realizer::new(Schedule::stencil_default())
            .realize(&p, &[6, 6], &inputs)
            .unwrap();
        assert_eq!(compiled, oracle);
    }

    #[test]
    fn lower_update_emits_guarded_nests_in_strategy_order() {
        use crate::func::{RDom, UpdateDef};
        let img = ImageParam::new("in", ScalarType::UInt8, 2);
        let f = Func::pure("f", &["x_0"], ScalarType::UInt32, Expr::int(0));
        let params: BTreeMap<String, Value> = [
            ("in.extent.0".to_string(), Value::Int(12)),
            ("in.extent.1".to_string(), Value::Int(5)),
        ]
        .into_iter()
        .collect();
        // Privatized: f(x) += in(x, r.y) over the image rows — rdom loops
        // outside, vectorized pure lane loop inside.
        let jacobi = UpdateDef {
            lhs: vec![Expr::var("x_0")],
            value: Expr::cast(
                ScalarType::UInt32,
                Expr::add(
                    Expr::FuncRef("f".into(), vec![Expr::var("x_0")]),
                    Expr::Image(
                        "in".into(),
                        vec![Expr::var("x_0"), Expr::RVar("r_0.y".into())],
                    ),
                ),
            ),
            rdom: RDom::over_image("r_0", &img),
        };
        let mut next_id = 1usize;
        let stmt = lower_update(
            &f,
            &jacobi,
            &[32],
            &Schedule::naive().with_vector_width(8),
            &params,
            &mut next_id,
        )
        .expect("lowerable");
        assert_eq!(next_id, 2);
        assert_eq!(stmt.reduce_store_count(), 1);
        let text = stmt.to_string();
        // rdom extents resolved from the image-extent params; the pure lane
        // loop is innermost and vectorized.
        assert!(text.contains("for r_0.y in [0, 0 + 5):"), "{text}");
        assert!(text.contains("for r_0.x in [0, 0 + 12):"), "{text}");
        assert!(
            text.contains("for[vectorized(8)] x_0 in [0, 0 + 32):"),
            "{text}"
        );
        assert!(text.contains("reduce f[x_0]"), "{text}");
        let rdom_pos = text.find("for r_0.y").expect("rdom loop");
        let lane_pos = text.find("for[vectorized(8)] x_0").expect("lane loop");
        assert!(
            rdom_pos < lane_pos,
            "privatized nests hoist rdom loops:\n{text}"
        );

        // Sequential (scan): pure dims outer, rdom inner, all serial.
        let scan = UpdateDef {
            lhs: vec![Expr::RVar("r_0.x".into())],
            value: Expr::add(
                Expr::FuncRef(
                    "f".into(),
                    vec![Expr::add(Expr::RVar("r_0.x".into()), Expr::int(-1))],
                ),
                Expr::int(1),
            ),
            rdom: RDom::with_constant_bounds("r_0", &[(0, 7)]),
        };
        let mut next_id = 0usize;
        let stmt = lower_update(
            &f,
            &scan,
            &[32],
            &Schedule::naive().with_vector_width(8),
            &params,
            &mut next_id,
        )
        .expect("lowerable");
        let text = stmt.to_string();
        assert!(text.contains("for r_0.x in [0, 0 + 7):"), "{text}");
        assert!(!text.contains("vectorized"), "scans stay serial:\n{text}");

        // Unknown variables refuse lowering (the interpreter keeps them).
        let bogus = UpdateDef {
            lhs: vec![Expr::var("nope")],
            value: Expr::int(0),
            rdom: RDom::with_constant_bounds("r_0", &[(0, 2)]),
        };
        assert!(lower_update(&f, &bogus, &[32], &Schedule::naive(), &params, &mut 0).is_none());
    }

    #[test]
    fn resolve_rdom_dims_matches_interpreter_bounds() {
        use crate::func::RDom;
        let img = ImageParam::new("in", ScalarType::UInt8, 2);
        let r = RDom::over_image("r_0", &img);
        let params: BTreeMap<String, Value> = [
            ("in.extent.0".to_string(), Value::Int(9)),
            ("in.extent.1".to_string(), Value::Int(4)),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            resolve_rdom_dims(&r, &params),
            vec![("r_0.x".to_string(), 0, 9), ("r_0.y".to_string(), 0, 4)]
        );
        let c = RDom::with_constant_bounds("r_1", &[(-2, 6)]);
        assert_eq!(
            resolve_rdom_dims(&c, &BTreeMap::new()),
            vec![("r_1.x".to_string(), -2, 6)]
        );
    }

    #[test]
    fn invalid_compute_at_degrades_to_root() {
        let p = two_stage();
        // Unknown attach var: degrades to compute_root rather than erroring.
        let schedule = Schedule::naive().with_compute_at("bright", "nope");
        let outcome =
            plan_compute_at(&p, &schedule, &[8, 6], &BTreeMap::new(), &BTreeSet::new()).unwrap();
        assert!(outcome.plans.is_empty());
        assert!(outcome.demoted.contains("bright"));

        let input = image(10, 8);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let a = Realizer::new(schedule.clone())
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[8, 6], &inputs)
            .unwrap();
        let b = Realizer::new(schedule)
            .realize(&p, &[8, 6], &inputs)
            .unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod review_regressions {
    use super::*;
    use crate::buffer::Buffer;
    use crate::func::ImageParam;
    use crate::realize::{ExecBackend, RealizeInputs, Realizer};
    use crate::types::{ScalarType, Value};

    fn image(w: usize, h: usize) -> Buffer {
        let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
        let mut s = 41u64;
        for c in b.coords().collect::<Vec<_>>() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.set(&c, Value::Int(((s >> 33) % 256) as i64));
        }
        b
    }

    fn assert_all_match_naive(p: &Pipeline, schedule: Schedule, extents: &[usize], img: &Buffer) {
        let inputs = RealizeInputs::new().with_image("in", img);
        let naive = Realizer::new(Schedule::naive())
            .with_backend(ExecBackend::Interpret)
            .realize(p, extents, &inputs)
            .unwrap();
        for backend in [ExecBackend::Interpret, ExecBackend::Lowered] {
            let out = Realizer::new(schedule.clone())
                .with_backend(backend)
                .realize(p, extents, &inputs)
                .unwrap();
            assert_eq!(out, naive, "{backend:?} diverged under [{schedule}]");
        }
    }

    /// Non-affine consumer index (`bfun(x*y, y)`): the region is not a pure
    /// translation in the loop variables, so the placement must degrade to
    /// compute_root instead of silently mis-placing the region.
    #[test]
    fn non_affine_cross_variable_index_degrades() {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let bfun = Func::pure(
            "bfun",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::add(
                Expr::cast(
                    ScalarType::UInt16,
                    Expr::Image("in".into(), vec![x.clone(), y.clone()]),
                ),
                Expr::int(1),
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::FuncRef("bfun".into(), vec![Expr::mul(x, y.clone()), y]),
            ),
        );
        let p =
            Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]).with_func(bfun);
        for var in ["x_0", "x_1"] {
            let schedule = Schedule::naive().with_compute_at("bfun", var);
            let outcome =
                plan_compute_at(&p, &schedule, &[8, 8], &BTreeMap::new(), &BTreeSet::new())
                    .unwrap();
            assert!(
                outcome.plans.is_empty() && outcome.demoted.contains("bfun"),
                "x*y index must demote (attach {var}): {outcome:?}"
            );
            assert_all_match_naive(&p, schedule, &[8, 8], &image(64, 8));
        }
    }

    /// Accesses with different per-iteration translations (`P(x)` and
    /// `P(2x)`) are not a fixed-extent sliding region either.
    #[test]
    fn mismatched_access_strides_degrade() {
        let x = Expr::var("x_0");
        let bfun = Func::pure(
            "bfun",
            &["x_0"],
            ScalarType::UInt16,
            Expr::cast(
                ScalarType::UInt16,
                Expr::Image("in".into(), vec![x.clone(), Expr::int(0)]),
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::add(
                    Expr::FuncRef("bfun".into(), vec![x.clone()]),
                    Expr::FuncRef("bfun".into(), vec![Expr::mul(Expr::int(2), x)]),
                ),
            ),
        );
        let p =
            Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]).with_func(bfun);
        let schedule = Schedule::naive().with_compute_at("bfun", "x_0");
        let outcome =
            plan_compute_at(&p, &schedule, &[10], &BTreeMap::new(), &BTreeSet::new()).unwrap();
        assert!(outcome.demoted.contains("bfun"), "{outcome:?}");
        assert_all_match_naive(&p, schedule, &[10], &image(32, 4));
    }

    /// A producer referenced by the output's *update* definition must stay
    /// materialized (updates are interpreted against buffers), even when the
    /// schedule asks for compute_at — both backends must realize it and agree.
    #[test]
    fn compute_at_producer_read_by_update_is_demoted() {
        use crate::func::{RDom, UpdateDef};
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let bright = Func::pure(
            "bright",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::add(
                Expr::cast(
                    ScalarType::UInt16,
                    Expr::Image("in".into(), vec![x.clone(), y.clone()]),
                ),
                Expr::int(2),
            ),
        );
        let rdom = RDom::with_constant_bounds("r_0", &[(0, 4), (0, 3)]);
        let update = UpdateDef {
            lhs: vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
            value: Expr::cast(
                ScalarType::UInt8,
                Expr::FuncRef(
                    "bright".into(),
                    vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
                ),
            ),
            rdom,
        };
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::FuncRef("bright".into(), vec![x, y]),
            ),
        )
        .with_update(update);
        let p =
            Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]).with_func(bright);
        let schedule = Schedule::naive().with_compute_at("bright", "x_1");
        let outcome =
            plan_compute_at(&p, &schedule, &[8, 6], &BTreeMap::new(), &BTreeSet::new()).unwrap();
        assert!(
            outcome.plans.is_empty() && outcome.demoted.contains("bright"),
            "update-referenced producer must demote: {outcome:?}"
        );
        let img = image(10, 8);
        let inputs = RealizeInputs::new().with_image("in", &img);
        let a = Realizer::new(schedule.clone())
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[8, 6], &inputs)
            .unwrap();
        let b = Realizer::new(schedule)
            .realize(&p, &[8, 6], &inputs)
            .unwrap();
        assert_eq!(a, b);
    }

    /// A compute_root producer read only *through* a compute_at producer must
    /// be sized by the compute_at func's accesses (transitive bounds), and
    /// must be materialized before the func that reads it even though
    /// "bfun" < "cfun" alphabetically.
    #[test]
    fn transitive_sizing_and_dependency_order() {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let cfun = Func::pure(
            "cfun",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::cast(
                ScalarType::UInt16,
                Expr::Image("in".into(), vec![x.clone(), y.clone()]),
            ),
        );
        let bfun = Func::pure(
            "bfun",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::FuncRef(
                "cfun".into(),
                vec![Expr::add(x.clone(), Expr::int(5)), y.clone()],
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(ScalarType::UInt8, Expr::FuncRef("bfun".into(), vec![x, y])),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)])
            .with_func(bfun)
            .with_func(cfun);
        let img = image(32, 8);
        for schedule in [
            Schedule::naive()
                .with_compute_root("cfun")
                .with_compute_at("bfun", "x_1"),
            Schedule::naive()
                .with_compute_root("cfun")
                .with_compute_root("bfun"),
            Schedule::naive()
                .with_compute_at("cfun", "x_1")
                .with_compute_at("bfun", "x_1"),
        ] {
            assert_all_match_naive(&p, schedule, &[16, 8], &img);
        }
    }
}
