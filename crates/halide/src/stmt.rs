//! The loop-nest statement IR that pipelines are lowered into.
//!
//! The realizer's interpreter walks the output domain element by element; this
//! IR instead *materializes* schedule decisions as restructured loops, the way
//! the Halide compiler's lowering pass does. A lowered pipeline is a tree of:
//!
//! * [`Stmt::Allocate`] — a scoped intermediate buffer (sized by bounds
//!   inference) for a producer scheduled `compute_at`;
//! * [`Stmt::Produce`] — a marker delimiting the computation of one func;
//! * [`Stmt::For`] — a loop over one dimension, tagged [`LoopKind::Serial`],
//!   [`LoopKind::Parallel`] (iterations distributed across worker threads),
//!   [`LoopKind::ParallelReduce`] (a reduction domain whose accumulator
//!   stores run privatize-then-merge across workers) or
//!   [`LoopKind::Vectorized`] (iterations evaluated in lanes by the compiled
//!   executor);
//! * [`Stmt::Store`] — one element store, with index and value expressions
//!   over the enclosing loop variables.
//!
//! Loop bounds are [`Expr`]s so tile tails (`min(tile, W - xo*tile)`) and
//! `compute_at` region offsets stay symbolic until execution; the lowering
//! pass constant-folds them where possible via [`crate::simplify`].
//!
//! The IR pretty-prints in a Halide-like syntax (see the [`fmt::Display`]
//! impl), which the tests assert against:
//!
//! ```text
//! produce output_1:
//!   for[parallel] x_1 in [0, 32):
//!     for[vectorized(8)] x_0 in [0, 48):
//!       output_1[x_0, x_1] = cast<uint8_t>(...)
//! ```

use crate::bounds::affine_decompose;
use crate::expr::Expr;
use crate::types::{ScalarType, Value};
use std::collections::BTreeMap;
use std::fmt;

/// How the iterations of a [`Stmt::For`] loop are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// One iteration after another on the calling thread.
    Serial,
    /// Iterations split into contiguous chunks across worker threads
    /// (0 = use all available cores).
    Parallel {
        /// Worker thread cap (0 = all available cores).
        threads: usize,
    },
    /// A reduction-domain loop whose accumulator stores run privatize-then-
    /// merge: workers accumulate disjoint chunks of the domain into private
    /// per-thread buffers which are merged (wrapping adds) into the output
    /// afterwards. The executor verifies the nest is merge-admissible at run
    /// time and degrades to [`LoopKind::Serial`] otherwise, so tagging is
    /// always value-preserving.
    ParallelReduce {
        /// Worker thread cap (0 = all available cores).
        threads: usize,
    },
    /// Iterations evaluated `width` lanes at a time by the compiled executor.
    Vectorized {
        /// Number of lanes per batch.
        width: usize,
    },
}

/// The affine decomposition of one index expression over the enclosing loop
/// variables: `konst + Σ coeff·var`.
///
/// This is the bounds/contiguity metadata the compiled executor derives for
/// every load and store under a vectorized loop: a dimension whose index has
/// coefficient 1 on the lane variable (and 0 everywhere else in the access)
/// is *contiguous* — consecutive lanes touch consecutive elements, so the
/// interior of the loop can use straight slice loads/stores — while an index
/// with coefficient 0 on the lane variable is *lane-invariant* (a broadcast).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineIndex {
    /// Constant part of the index.
    pub konst: i64,
    /// Per-variable multipliers (zero coefficients omitted).
    pub coeffs: Vec<(String, i64)>,
}

impl AffineIndex {
    /// Decompose `e` into an affine index over loop variables, resolving
    /// integer params from `params`. Returns `None` for non-affine indices
    /// (which keep the clamped per-lane execution path).
    pub fn decompose(e: &Expr, params: &BTreeMap<String, Value>) -> Option<AffineIndex> {
        let (coeffs, konst) = affine_decompose(e, params)?;
        Some(AffineIndex {
            konst,
            coeffs: coeffs.into_iter().filter(|(_, c)| *c != 0).collect(),
        })
    }

    /// The coefficient of `var` (zero when absent).
    pub fn coeff_of(&self, var: &str) -> i64 {
        self.coeffs
            .iter()
            .find(|(v, _)| v == var)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Whether the index does not change with `var`.
    pub fn is_invariant_in(&self, var: &str) -> bool {
        self.coeff_of(var) == 0
    }

    /// Whether consecutive values of `var` index consecutive elements.
    pub fn is_contiguous_in(&self, var: &str) -> bool {
        self.coeff_of(var) == 1
    }
}

/// One load (image or func source) appearing in a store's value expression,
/// with the affine decomposition of each index dimension (`None` where the
/// index is not affine in the loop variables).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadAccess {
    /// Source buffer name.
    pub source: String,
    /// Per-dimension affine indices, innermost dimension first.
    pub args: Vec<Option<AffineIndex>>,
}

impl LoadAccess {
    /// Whether the access is contiguous along `var`: dimension 0 steps by one
    /// element per iteration and every other dimension is invariant.
    pub fn is_contiguous_in(&self, var: &str) -> bool {
        self.args.iter().all(|a| a.is_some())
            && access_contiguous_in(
                &self.args.iter().flatten().cloned().collect::<Vec<_>>(),
                var,
            )
    }

    /// Whether the access is invariant in `var` (a per-iteration broadcast).
    pub fn is_invariant_in(&self, var: &str) -> bool {
        self.args.iter().all(|a| a.is_some())
            && access_invariant_in(
                &self.args.iter().flatten().cloned().collect::<Vec<_>>(),
                var,
            )
    }
}

/// Whether an access with the given per-dimension affine indices is
/// contiguous along `var`: dimension 0 steps by one element per iteration of
/// `var` and every other dimension is invariant. This is the classification
/// the compiled executor's fused-kernel tier applies to loads and stores.
pub fn access_contiguous_in(args: &[AffineIndex], var: &str) -> bool {
    let mut dims = args.iter().enumerate();
    dims.next().is_some_and(|(_, a)| a.is_contiguous_in(var))
        && dims.all(|(_, a)| a.is_invariant_in(var))
}

/// Whether an access is invariant in `var` (a per-iteration broadcast).
pub fn access_invariant_in(args: &[AffineIndex], var: &str) -> bool {
    args.iter().all(|a| a.is_invariant_in(var))
}

/// Whether `value` loads from the buffer named `buffer` (as an image or a
/// func source).
///
/// This is the *self-alias* check of the compiled executor's store lowering:
/// a store whose value reads the buffer it writes must refuse both the fused
/// lane kernels (chunked evaluation would read lanes written earlier in the
/// same row) and the overlapping-last-chunk tail variant (which re-stores
/// already-written lanes and would otherwise recompute them from updated
/// inputs). Such stores keep the per-op tier.
pub fn value_reads_buffer(value: &Expr, buffer: &str) -> bool {
    let mut found = false;
    value.visit(&mut |e| {
        if let Expr::Image(name, _) | Expr::FuncRef(name, _) = e {
            found |= name == buffer;
        }
    });
    found
}

/// Collect every image/func load in `value` with its affine access metadata.
pub fn collect_loads(value: &Expr, params: &BTreeMap<String, Value>) -> Vec<LoadAccess> {
    let mut out = Vec::new();
    value.visit(&mut |e| {
        if let Expr::Image(name, args) | Expr::FuncRef(name, args) = e {
            out.push(LoadAccess {
                source: name.clone(),
                args: args
                    .iter()
                    .map(|a| AffineIndex::decompose(a, params))
                    .collect(),
            });
        }
    });
    out
}

/// A statement in the lowered loop-nest IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A sequence of statements executed in order.
    Block(Vec<Stmt>),
    /// A scoped allocation of an intermediate buffer named `name`. The buffer
    /// is zero-initialized, lives for the duration of `body`, and is freed
    /// afterwards.
    Allocate {
        /// Buffer name (the producer func's name).
        name: String,
        /// Element type.
        ty: ScalarType,
        /// Concrete extents (bounds inference has already run).
        extents: Vec<usize>,
        /// Statement that may read and write the buffer.
        body: Box<Stmt>,
    },
    /// Marks the region of the tree that computes `func` (structural metadata
    /// used by the pretty printer and tests; no runtime behaviour).
    Produce {
        /// Name of the func being computed.
        func: String,
        /// The loops computing it.
        body: Box<Stmt>,
    },
    /// Sliding-window reuse for the enclosing [`Stmt::Allocate`] buffer
    /// `name`: the buffer's dimension `dim` (its outermost-stored dimension)
    /// covers region rows `[min, min + extent)` where `min` translates with
    /// the attach loop. At each execution the runner compares `min` against
    /// the previous iteration's value; when the window slid forward by
    /// `0 <= shift < extent` rows it moves the still-valid rows to the front
    /// of the buffer and binds `warm_var` to the count of reused rows
    /// (`extent - shift`), so the produce nest in `body` — whose slide-dim
    /// loop starts at `warm_var` — recomputes only the newly exposed rows.
    /// Any other movement (window reset, first iteration) binds `warm_var`
    /// to zero and the full region is recomputed, which is always sound.
    SlideWindow {
        /// The enclosing allocation this window manages.
        name: String,
        /// The sliding dimension (always the buffer's last dimension, so
        /// reused rows are contiguous in memory).
        dim: usize,
        /// Constant extent of the sliding dimension.
        extent: usize,
        /// Runtime region minimum of the sliding dimension, an expression
        /// over the enclosing loop variables.
        min: Expr,
        /// Pseudo-variable bound to the first row index to recompute.
        warm_var: String,
        /// The producer nest filling rows `[warm_var, extent)`.
        body: Box<Stmt>,
    },
    /// A loop `for var in [min, min+extent)`.
    For {
        /// Loop variable name, visible to `body`'s expressions.
        var: String,
        /// Inclusive lower bound.
        min: Expr,
        /// Iteration count.
        extent: Expr,
        /// Execution strategy.
        kind: LoopKind,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// Store `value` into `buffer[indices]`.
    Store {
        /// Unique id assigned by the lowering pass; the executor uses it to
        /// look up the store's compiled program.
        id: usize,
        /// Destination buffer (the func being produced).
        buffer: String,
        /// Index expressions, innermost dimension first.
        indices: Vec<Expr>,
        /// Value expression.
        value: Expr,
    },
    /// A *guarded* store of a lowered update (reduction) definition:
    /// `buffer[indices] = value` where — unlike [`Stmt::Store`], whose
    /// indices are in range by loop construction — each index is clamped to
    /// the buffer's extent exactly like [`crate::buffer::Buffer::set`]
    /// (histogram left-hand sides index by *data*, which can land anywhere),
    /// and `value` may read the buffer being written (the self-reference of
    /// an accumulator). The executor therefore never vectorizes a guarded
    /// store beyond what the enclosing loop's [`LoopKind`] explicitly allows
    /// (the lowering pass marks a lane loop vectorized only when the
    /// privatized-accumulation analysis proves per-lane writes disjoint).
    ReduceStore {
        /// Unique id in the same number space as [`Stmt::Store`] ids.
        id: usize,
        /// Destination buffer (the func being updated).
        buffer: String,
        /// Index expressions (the update's LHS), innermost dimension first.
        indices: Vec<Expr>,
        /// Value expression (may reference `buffer` itself).
        value: Expr,
    },
}

impl Stmt {
    /// A `Block`, flattening nested blocks and dropping empty ones.
    pub fn block(stmts: Vec<Stmt>) -> Stmt {
        let mut flat = Vec::new();
        for s in stmts {
            match s {
                Stmt::Block(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Stmt::Block(flat)
        }
    }

    /// Visit every statement in the tree (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::Block(stmts) => {
                for s in stmts {
                    s.visit(f);
                }
            }
            Stmt::Allocate { body, .. }
            | Stmt::Produce { body, .. }
            | Stmt::For { body, .. }
            | Stmt::SlideWindow { body, .. } => {
                body.visit(f);
            }
            Stmt::Store { .. } | Stmt::ReduceStore { .. } => {}
        }
    }

    /// Number of `For` loops in the tree.
    pub fn loop_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if matches!(s, Stmt::For { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Number of store statements in the tree (`Store` and `ReduceStore`
    /// share one id number space, so this also bounds the next free id).
    pub fn store_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if matches!(s, Stmt::Store { .. } | Stmt::ReduceStore { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Number of `ReduceStore` (guarded update) statements in the tree.
    pub fn reduce_store_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if matches!(s, Stmt::ReduceStore { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Number of `SlideWindow` (rolling `compute_at` allocation) nodes in
    /// the tree.
    pub fn sliding_window_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if matches!(s, Stmt::SlideWindow { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Window extents (in rows of the slid dimension) of every
    /// `SlideWindow` node in the tree, in visit order.
    pub fn sliding_window_extents(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if let Stmt::SlideWindow { extent, .. } = s {
                out.push(*extent);
            }
        });
        out
    }

    /// Names of all buffers allocated by `Allocate` nodes.
    pub fn allocated_buffers(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if let Stmt::Allocate { name, .. } = s {
                out.push(name.clone());
            }
        });
        out
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Stmt::Block(stmts) => {
                for s in stmts {
                    s.fmt_indented(f, indent)?;
                }
                Ok(())
            }
            Stmt::Allocate {
                name,
                ty,
                extents,
                body,
            } => {
                writeln!(f, "{pad}allocate {name}[{ty}] extents={extents:?}")?;
                body.fmt_indented(f, indent + 1)
            }
            Stmt::Produce { func, body } => {
                writeln!(f, "{pad}produce {func}:")?;
                body.fmt_indented(f, indent + 1)
            }
            Stmt::SlideWindow {
                name,
                dim,
                extent,
                min,
                warm_var,
                body,
            } => {
                writeln!(
                    f,
                    "{pad}slide_window {name} dim={dim} extent={extent} min={min} warm={warm_var}"
                )?;
                body.fmt_indented(f, indent + 1)
            }
            Stmt::For {
                var,
                min,
                extent,
                kind,
                body,
            } => {
                let kind_str = match kind {
                    LoopKind::Serial => String::new(),
                    LoopKind::Parallel { .. } => "[parallel]".to_string(),
                    LoopKind::ParallelReduce { .. } => "[parallel_reduce]".to_string(),
                    LoopKind::Vectorized { width } => format!("[vectorized({width})]"),
                };
                writeln!(f, "{pad}for{kind_str} {var} in [{min}, {min} + {extent}):")?;
                body.fmt_indented(f, indent + 1)
            }
            Stmt::Store {
                buffer,
                indices,
                value,
                ..
            } => {
                let idx: Vec<String> = indices.iter().map(|e| e.to_string()).collect();
                writeln!(f, "{pad}{buffer}[{}] = {value}", idx.join(", "))
            }
            Stmt::ReduceStore {
                buffer,
                indices,
                value,
                ..
            } => {
                let idx: Vec<String> = indices.iter().map(|e| e.to_string()).collect();
                writeln!(f, "{pad}reduce {buffer}[{}] = {value}", idx.join(", "))
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_nest() -> Stmt {
        Stmt::Produce {
            func: "out".into(),
            body: Box::new(Stmt::For {
                var: "y".into(),
                min: Expr::int(0),
                extent: Expr::int(4),
                kind: LoopKind::Parallel { threads: 0 },
                body: Box::new(Stmt::For {
                    var: "x".into(),
                    min: Expr::int(0),
                    extent: Expr::int(8),
                    kind: LoopKind::Vectorized { width: 4 },
                    body: Box::new(Stmt::Store {
                        id: 0,
                        buffer: "out".into(),
                        indices: vec![Expr::var("x"), Expr::var("y")],
                        value: Expr::add(Expr::var("x"), Expr::var("y")),
                    }),
                }),
            }),
        }
    }

    #[test]
    fn counts_and_visitor() {
        let s = sample_nest();
        assert_eq!(s.loop_count(), 2);
        assert_eq!(s.store_count(), 1);
        assert!(s.allocated_buffers().is_empty());
        let alloc = Stmt::Allocate {
            name: "tmp".into(),
            ty: ScalarType::UInt16,
            extents: vec![10],
            body: Box::new(s),
        };
        assert_eq!(alloc.allocated_buffers(), vec!["tmp".to_string()]);
    }

    #[test]
    fn block_flattens() {
        let inner = Stmt::Block(vec![Stmt::Store {
            id: 0,
            buffer: "b".into(),
            indices: vec![Expr::int(0)],
            value: Expr::int(1),
        }]);
        let b = Stmt::block(vec![inner, Stmt::Block(vec![])]);
        match &b {
            Stmt::Store { .. } => {}
            other => panic!("expected flattened single store, got {other:?}"),
        }
    }

    #[test]
    fn affine_access_metadata_classifies_contiguity() {
        use crate::types::Value;
        let params = BTreeMap::new();
        // in(x + 2, y) is contiguous in x, invariant in nothing.
        let value = Expr::add(
            Expr::Image(
                "in".into(),
                vec![Expr::add(Expr::var("x"), Expr::int(2)), Expr::var("y")],
            ),
            Expr::FuncRef("p".into(), vec![Expr::int(0), Expr::var("y")]),
        );
        let loads = collect_loads(&value, &params);
        assert_eq!(loads.len(), 2);
        assert!(loads[0].is_contiguous_in("x"));
        assert!(!loads[0].is_invariant_in("x"));
        assert!(loads[1].is_invariant_in("x"));
        assert!(!loads[1].is_contiguous_in("x"));
        // Strided access is neither.
        let strided = Expr::Image("in".into(), vec![Expr::mul(Expr::var("x"), Expr::int(2))]);
        let loads = collect_loads(&strided, &params);
        assert!(!loads[0].is_contiguous_in("x") && !loads[0].is_invariant_in("x"));
        // Non-affine indices surface as None per dimension.
        let nonaffine = Expr::Image("in".into(), vec![Expr::mul(Expr::var("x"), Expr::var("y"))]);
        assert_eq!(collect_loads(&nonaffine, &params)[0].args[0], None);
        // AffineIndex resolves params and drops zero coefficients.
        let mut p = BTreeMap::new();
        p.insert("k".to_string(), Value::Int(3));
        let a = AffineIndex::decompose(
            &Expr::add(
                Expr::var("x"),
                Expr::Param("k".into(), crate::types::ScalarType::Int32),
            ),
            &p,
        )
        .expect("affine");
        assert_eq!(a.konst, 3);
        assert_eq!(a.coeff_of("x"), 1);
        assert_eq!(a.coeff_of("y"), 0);
    }

    #[test]
    fn self_alias_detection() {
        // out[x] = out(x - 1) + in(x): reads its own buffer.
        let aliasing = Expr::add(
            Expr::FuncRef("out".into(), vec![Expr::add(Expr::var("x"), Expr::int(-1))]),
            Expr::Image("in".into(), vec![Expr::var("x")]),
        );
        assert!(value_reads_buffer(&aliasing, "out"));
        assert!(value_reads_buffer(&aliasing, "in"));
        assert!(!value_reads_buffer(&aliasing, "other"));
        // A pure stencil over a distinct source does not self-alias.
        let clean = Expr::Image("in".into(), vec![Expr::var("x")]);
        assert!(!value_reads_buffer(&clean, "out"));
    }

    #[test]
    fn reduce_stores_count_and_print() {
        let nest = Stmt::Produce {
            func: "hist".into(),
            body: Box::new(Stmt::For {
                var: "r_0.x".into(),
                min: Expr::int(0),
                extent: Expr::int(16),
                kind: LoopKind::Serial,
                body: Box::new(Stmt::ReduceStore {
                    id: 1,
                    buffer: "hist".into(),
                    indices: vec![Expr::Image("in".into(), vec![Expr::RVar("r_0.x".into())])],
                    value: Expr::add(
                        Expr::FuncRef(
                            "hist".into(),
                            vec![Expr::Image("in".into(), vec![Expr::RVar("r_0.x".into())])],
                        ),
                        Expr::int(1),
                    ),
                }),
            }),
        };
        assert_eq!(nest.store_count(), 1, "guarded stores share the id space");
        assert_eq!(nest.reduce_store_count(), 1);
        let text = nest.to_string();
        assert!(text.contains("reduce hist[in("), "{text}");
    }

    #[test]
    fn pretty_print_shape() {
        let text = sample_nest().to_string();
        assert!(text.contains("produce out:"), "{text}");
        assert!(text.contains("for[parallel] y in [0, 0 + 4):"), "{text}");
        assert!(
            text.contains("for[vectorized(4)] x in [0, 0 + 8):"),
            "{text}"
        );
        assert!(text.contains("out[x, y] = (x + y)"), "{text}");
    }
}
