//! Functions, reduction domains, image parameters and pipelines.

use crate::expr::Expr;
use crate::types::ScalarType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An input image parameter (`ImageParam` in Halide).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageParam {
    /// Name of the parameter, e.g. `input_1`.
    pub name: String,
    /// Element type.
    pub ty: ScalarType,
    /// Number of dimensions.
    pub dims: usize,
}

impl ImageParam {
    /// Create an image parameter.
    pub fn new(name: &str, ty: ScalarType, dims: usize) -> ImageParam {
        ImageParam {
            name: name.to_string(),
            ty,
            dims,
        }
    }
}

/// A reduction domain (`RDom` in Halide).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RDom {
    /// Name of the domain, e.g. `r_0`.
    pub name: String,
    /// Per-dimension `(variable name, min expression, extent expression)`.
    ///
    /// The min/extent may reference image-parameter extents via
    /// [`Expr::Param`] with names of the form `input_1.extent.0`.
    pub dims: Vec<(String, Expr, Expr)>,
}

impl RDom {
    /// Create a reduction domain with constant bounds.
    pub fn with_constant_bounds(name: &str, bounds: &[(i64, i64)]) -> RDom {
        RDom {
            name: name.to_string(),
            dims: bounds
                .iter()
                .enumerate()
                .map(|(i, (min, extent))| {
                    (
                        format!("{name}.{}", dim_letter(i)),
                        Expr::int(*min),
                        Expr::int(*extent),
                    )
                })
                .collect(),
        }
    }

    /// Create a reduction domain spanning the full extent of an image parameter.
    pub fn over_image(name: &str, image: &ImageParam) -> RDom {
        RDom {
            name: name.to_string(),
            dims: (0..image.dims)
                .map(|d| {
                    (
                        format!("{name}.{}", dim_letter(d)),
                        Expr::int(0),
                        Expr::Param(format!("{}.extent.{d}", image.name), ScalarType::Int32),
                    )
                })
                .collect(),
        }
    }
}

/// Conventional Halide letter for reduction dimension `d` (`x`, `y`, `z`, `w`).
pub fn dim_letter(d: usize) -> char {
    match d {
        0 => 'x',
        1 => 'y',
        2 => 'z',
        _ => 'w',
    }
}

/// An update definition: `func(lhs_indices...) = value` iterated over `rdom`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateDef {
    /// Left-hand-side index expressions (may reference RDom variables and the
    /// values of input images, for indirect/histogram updates).
    pub lhs: Vec<Expr>,
    /// Right-hand-side value (may reference the func itself).
    pub value: Expr,
    /// The reduction domain driving the update.
    pub rdom: RDom,
}

/// A Halide function: a pure definition plus optional update definitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Pure variable names, innermost first.
    pub vars: Vec<String>,
    /// Output element type.
    pub ty: ScalarType,
    /// The pure definition, if any.
    pub pure_def: Option<Expr>,
    /// Update definitions applied after the pure definition.
    pub updates: Vec<UpdateDef>,
}

impl Func {
    /// Create a func with a pure definition.
    pub fn pure(name: &str, vars: &[&str], ty: ScalarType, value: Expr) -> Func {
        Func {
            name: name.to_string(),
            vars: vars.iter().map(|v| v.to_string()).collect(),
            ty,
            pure_def: Some(value),
            updates: Vec::new(),
        }
    }

    /// Add an update definition.
    pub fn with_update(mut self, update: UpdateDef) -> Func {
        self.updates.push(update);
        self
    }

    /// Number of dimensions of the func.
    pub fn dims(&self) -> usize {
        self.vars.len()
    }
}

/// A pipeline: a set of funcs, image parameters and a designated output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// All funcs, keyed by name.
    pub funcs: BTreeMap<String, Func>,
    /// All image parameters, keyed by name.
    pub images: BTreeMap<String, ImageParam>,
    /// Name of the output func.
    pub output: String,
}

impl Pipeline {
    /// Create a pipeline with a single output func.
    pub fn new(output: Func, images: Vec<ImageParam>) -> Pipeline {
        let mut funcs = BTreeMap::new();
        let output_name = output.name.clone();
        funcs.insert(output.name.clone(), output);
        Pipeline {
            funcs,
            images: images.into_iter().map(|i| (i.name.clone(), i)).collect(),
            output: output_name,
        }
    }

    /// Add an intermediate func.
    pub fn with_func(mut self, func: Func) -> Pipeline {
        self.funcs.insert(func.name.clone(), func);
        self
    }

    /// The output func.
    ///
    /// # Panics
    /// Panics if the output name does not resolve (construction guarantees it does).
    pub fn output_func(&self) -> &Func {
        self.funcs.get(&self.output).expect("output func exists")
    }

    /// Compose `self` after `first`: the output of `first` feeds the image
    /// parameter named `input_name` of `self`, producing a fused pipeline.
    ///
    /// The funcs of `first` are copied in and every reference in `self` to
    /// `input_name` is rewritten to reference `first`'s output func. Upstream
    /// funcs whose names collide with funcs already present in `self` (lifted
    /// kernels all call their output `output_1`) are renamed with a
    /// `_stageN` suffix, so pipelines built from independently lifted filters
    /// always compose cleanly.
    pub fn compose_after(&self, first: &Pipeline, input_name: &str) -> Pipeline {
        let mut result = self.clone();

        // Rename colliding upstream funcs (and the references between them).
        let mut upstream_funcs: BTreeMap<String, Func> = first.funcs.clone();
        let mut renames: BTreeMap<String, String> = BTreeMap::new();
        for name in first.funcs.keys() {
            if result.funcs.contains_key(name) {
                let mut k = 1usize;
                let mut fresh = format!("{name}_stage{k}");
                while result.funcs.contains_key(&fresh) || first.funcs.contains_key(&fresh) {
                    k += 1;
                    fresh = format!("{name}_stage{k}");
                }
                renames.insert(name.clone(), fresh);
            }
        }
        if !renames.is_empty() {
            let renamed: BTreeMap<String, Func> = upstream_funcs
                .into_iter()
                .map(|(name, mut f)| {
                    let new_name = renames.get(&name).cloned().unwrap_or(name);
                    f.name = new_name.clone();
                    if let Some(e) = &f.pure_def {
                        f.pure_def = Some(rename_func_refs(e, &renames));
                    }
                    for u in &mut f.updates {
                        u.value = rename_func_refs(&u.value, &renames);
                        u.lhs = u
                            .lhs
                            .iter()
                            .map(|e| rename_func_refs(e, &renames))
                            .collect();
                    }
                    (new_name, f)
                })
                .collect();
            upstream_funcs = renamed;
        }
        let upstream_output = renames
            .get(&first.output)
            .cloned()
            .unwrap_or_else(|| first.output.clone());

        // Rewrite the downstream (self) accesses to the consumed image so they
        // read from the upstream output func instead.
        for f in result.funcs.values_mut() {
            if let Some(e) = &f.pure_def {
                f.pure_def = Some(rewrite_image_to_func(e, input_name, &upstream_output));
            }
            for u in &mut f.updates {
                u.value = rewrite_image_to_func(&u.value, input_name, &upstream_output);
                u.lhs = u
                    .lhs
                    .iter()
                    .map(|e| rewrite_image_to_func(e, input_name, &upstream_output))
                    .collect();
            }
        }
        result.images.remove(input_name);
        // Copy the upstream funcs and image parameters.
        for (name, f) in upstream_funcs {
            result.funcs.entry(name).or_insert(f);
        }
        for (name, img) in &first.images {
            result
                .images
                .entry(name.clone())
                .or_insert_with(|| img.clone());
        }
        result
    }
}

/// Rename `FuncRef`s according to `renames`, recursing through the expression.
fn rename_func_refs(e: &Expr, renames: &BTreeMap<String, String>) -> Expr {
    match e {
        Expr::FuncRef(name, args) => Expr::FuncRef(
            renames.get(name).cloned().unwrap_or_else(|| name.clone()),
            args.iter().map(|a| rename_func_refs(a, renames)).collect(),
        ),
        Expr::Image(name, args) => Expr::Image(
            name.clone(),
            args.iter().map(|a| rename_func_refs(a, renames)).collect(),
        ),
        Expr::Cast(ty, inner) => Expr::Cast(*ty, Box::new(rename_func_refs(inner, renames))),
        Expr::Binary(op, a, b) => Expr::bin(
            *op,
            rename_func_refs(a, renames),
            rename_func_refs(b, renames),
        ),
        Expr::Cmp(op, a, b) => Expr::cmp(
            *op,
            rename_func_refs(a, renames),
            rename_func_refs(b, renames),
        ),
        Expr::Select(c, t, o) => Expr::select(
            rename_func_refs(c, renames),
            rename_func_refs(t, renames),
            rename_func_refs(o, renames),
        ),
        Expr::Call(c, args) => Expr::Call(
            *c,
            args.iter().map(|a| rename_func_refs(a, renames)).collect(),
        ),
        other => other.clone(),
    }
}

fn rewrite_image_to_func(e: &Expr, image: &str, func: &str) -> Expr {
    match e {
        Expr::Image(name, args) if name == image => Expr::FuncRef(
            func.to_string(),
            args.iter()
                .map(|a| rewrite_image_to_func(a, image, func))
                .collect(),
        ),
        Expr::Image(name, args) => Expr::Image(
            name.clone(),
            args.iter()
                .map(|a| rewrite_image_to_func(a, image, func))
                .collect(),
        ),
        Expr::FuncRef(name, args) => Expr::FuncRef(
            name.clone(),
            args.iter()
                .map(|a| rewrite_image_to_func(a, image, func))
                .collect(),
        ),
        Expr::Cast(ty, inner) => {
            Expr::Cast(*ty, Box::new(rewrite_image_to_func(inner, image, func)))
        }
        Expr::Binary(op, a, b) => Expr::bin(
            *op,
            rewrite_image_to_func(a, image, func),
            rewrite_image_to_func(b, image, func),
        ),
        Expr::Cmp(op, a, b) => Expr::cmp(
            *op,
            rewrite_image_to_func(a, image, func),
            rewrite_image_to_func(b, image, func),
        ),
        Expr::Select(c, t, o) => Expr::select(
            rewrite_image_to_func(c, image, func),
            rewrite_image_to_func(t, image, func),
            rewrite_image_to_func(o, image, func),
        ),
        Expr::Call(c, args) => Expr::Call(
            *c,
            args.iter()
                .map(|a| rewrite_image_to_func(a, image, func))
                .collect(),
        ),
        _ => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn blur_pipeline() -> Pipeline {
        let input = ImageParam::new("input_1", ScalarType::UInt8, 2);
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Shr,
                Expr::add(
                    Expr::Image("input_1".into(), vec![x.clone(), y.clone()]),
                    Expr::Image("input_1".into(), vec![Expr::add(x, Expr::int(1)), y]),
                ),
                Expr::uint(1),
            ),
        );
        let f = Func::pure("output_1", &["x_0", "x_1"], ScalarType::UInt8, value);
        Pipeline::new(f, vec![input])
    }

    #[test]
    fn pipeline_construction() {
        let p = blur_pipeline();
        assert_eq!(p.output_func().name, "output_1");
        assert_eq!(p.output_func().dims(), 2);
        assert_eq!(p.images.len(), 1);
    }

    #[test]
    fn rdom_over_image_uses_extent_params() {
        let img = ImageParam::new("input_1", ScalarType::UInt8, 2);
        let r = RDom::over_image("r_0", &img);
        assert_eq!(r.dims.len(), 2);
        assert_eq!(r.dims[0].0, "r_0.x");
        assert!(matches!(&r.dims[1].2, Expr::Param(name, _) if name == "input_1.extent.1"));
        let c = RDom::with_constant_bounds("r_1", &[(0, 10)]);
        assert_eq!(c.dims[0].1, Expr::int(0));
    }

    #[test]
    fn composition_rewrites_image_accesses() {
        let first = blur_pipeline();
        let mut second = blur_pipeline();
        // Rename the second stage's output so names do not collide.
        let mut f = second.funcs.remove("output_1").unwrap();
        f.name = "output_2".to_string();
        second.funcs.insert("output_2".to_string(), f);
        second.output = "output_2".to_string();

        let fused = second.compose_after(&first, "input_1");
        assert!(fused.funcs.contains_key("output_1"));
        assert!(fused.funcs.contains_key("output_2"));
        // input_1 still exists because the *first* stage consumes it.
        assert!(fused.images.contains_key("input_1"));
        let refs = fused.funcs["output_2"]
            .pure_def
            .as_ref()
            .unwrap()
            .referenced_funcs();
        assert!(refs.contains("output_1"));
    }

    #[test]
    fn dim_letters() {
        assert_eq!(dim_letter(0), 'x');
        assert_eq!(dim_letter(3), 'w');
        assert_eq!(dim_letter(9), 'w');
    }
}
