//! Scalar types and runtime values for the miniature Halide DSL.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar element types supported by the DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarType {
    /// 8-bit unsigned integer (image channels).
    UInt8,
    /// 16-bit unsigned integer.
    UInt16,
    /// 32-bit unsigned integer.
    UInt32,
    /// 64-bit unsigned integer (histogram bins).
    UInt64,
    /// 32-bit signed integer.
    Int32,
    /// 32-bit IEEE float.
    Float32,
    /// 64-bit IEEE float.
    Float64,
}

impl ScalarType {
    /// Size of one element in bytes.
    pub fn bytes(self) -> usize {
        match self {
            ScalarType::UInt8 => 1,
            ScalarType::UInt16 => 2,
            ScalarType::UInt32 | ScalarType::Int32 | ScalarType::Float32 => 4,
            ScalarType::UInt64 | ScalarType::Float64 => 8,
        }
    }

    /// Returns `true` for floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::Float32 | ScalarType::Float64)
    }

    /// Returns `true` for unsigned integer types.
    pub fn is_unsigned(self) -> bool {
        matches!(
            self,
            ScalarType::UInt8 | ScalarType::UInt16 | ScalarType::UInt32 | ScalarType::UInt64
        )
    }

    /// The Halide C++ spelling of the type (`UInt(8)`, `Float(32)`, ...).
    pub fn halide_ctor(self) -> &'static str {
        match self {
            ScalarType::UInt8 => "UInt(8)",
            ScalarType::UInt16 => "UInt(16)",
            ScalarType::UInt32 => "UInt(32)",
            ScalarType::UInt64 => "UInt(64)",
            ScalarType::Int32 => "Int(32)",
            ScalarType::Float32 => "Float(32)",
            ScalarType::Float64 => "Float(64)",
        }
    }

    /// The inclusive `[min, max]` range of values an integer type can
    /// represent when carried as an `i64` [`Value`], or `None` for floats and
    /// `UInt64` (whose upper half does not fit in positive `i64` space —
    /// `u64` loads surface as negative `i64` bit patterns).
    ///
    /// This is the range for which a [`Value::cast`] to the type is the
    /// identity, which is what interval-based kernel specialization needs to
    /// prove casts transparent.
    pub fn int_value_range(self) -> Option<(i64, i64)> {
        match self {
            ScalarType::UInt8 => Some((0, u8::MAX as i64)),
            ScalarType::UInt16 => Some((0, u16::MAX as i64)),
            ScalarType::UInt32 => Some((0, u32::MAX as i64)),
            ScalarType::Int32 => Some((i32::MIN as i64, i32::MAX as i64)),
            ScalarType::UInt64 | ScalarType::Float32 | ScalarType::Float64 => None,
        }
    }

    /// The C type used inside `cast<...>()` expressions.
    pub fn c_name(self) -> &'static str {
        match self {
            ScalarType::UInt8 => "uint8_t",
            ScalarType::UInt16 => "uint16_t",
            ScalarType::UInt32 => "uint32_t",
            ScalarType::UInt64 => "uint64_t",
            ScalarType::Int32 => "int32_t",
            ScalarType::Float32 => "float",
            ScalarType::Float64 => "double",
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// A runtime scalar value.
///
/// Integer values are carried as `i64` (wide enough for every supported
/// integer type); floating point values as `f64`. Casting to a concrete
/// [`ScalarType`] truncates/wraps exactly like the corresponding C cast so
/// lifted integer kernels reproduce the original binaries bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A floating-point value.
    Float(f64),
}

impl Value {
    /// The value as `f64` (integers are converted).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
        }
    }

    /// The value as `i64` (floats are truncated toward zero, like a C cast).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => v as i64,
        }
    }

    /// Returns `true` when the value is non-zero (used for conditions).
    pub fn is_true(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }

    /// Cast the value to a concrete scalar type, wrapping/truncating exactly
    /// like the corresponding C cast.
    pub fn cast(self, ty: ScalarType) -> Value {
        match ty {
            ScalarType::UInt8 => Value::Int((self.as_i64() as u8) as i64),
            ScalarType::UInt16 => Value::Int((self.as_i64() as u16) as i64),
            ScalarType::UInt32 => Value::Int((self.as_i64() as u32) as i64),
            ScalarType::UInt64 => Value::Int(self.as_i64()),
            ScalarType::Int32 => Value::Int((self.as_i64() as i32) as i64),
            ScalarType::Float32 => Value::Float(self.as_f64() as f32 as f64),
            ScalarType::Float64 => Value::Float(self.as_f64()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_properties() {
        assert_eq!(ScalarType::UInt8.bytes(), 1);
        assert_eq!(ScalarType::Float64.bytes(), 8);
        assert!(ScalarType::Float32.is_float());
        assert!(!ScalarType::Int32.is_float());
        assert!(ScalarType::UInt32.is_unsigned());
        assert!(!ScalarType::Int32.is_unsigned());
        assert_eq!(ScalarType::UInt8.halide_ctor(), "UInt(8)");
        assert_eq!(ScalarType::UInt8.c_name(), "uint8_t");
    }

    #[test]
    fn value_casts_match_c_semantics() {
        assert_eq!(Value::Int(300).cast(ScalarType::UInt8), Value::Int(44));
        assert_eq!(Value::Int(-1).cast(ScalarType::UInt8), Value::Int(255));
        assert_eq!(
            Value::Int(-1).cast(ScalarType::UInt32),
            Value::Int(0xffff_ffff)
        );
        assert_eq!(Value::Float(3.9).cast(ScalarType::Int32), Value::Int(3));
        assert_eq!(Value::Float(-3.9).cast(ScalarType::Int32), Value::Int(-3));
        assert_eq!(Value::Int(2).cast(ScalarType::Float64), Value::Float(2.0));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(7).as_f64(), 7.0);
        assert_eq!(Value::Float(7.9).as_i64(), 7);
        assert!(Value::Int(1).is_true());
        assert!(!Value::Int(0).is_true());
        assert!(Value::Float(0.5).is_true());
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3.5f64), Value::Float(3.5));
    }
}
