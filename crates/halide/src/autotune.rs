//! The *baseline* random-search schedule autotuner.
//!
//! The paper tunes each lifted kernel's Halide schedule with an
//! OpenTuner-based search for six hours per filter; this module performs the
//! same role at laptop scale: it samples candidate [`Schedule`]s, times each
//! on a representative input, and returns the fastest.
//!
//! This sampler is deliberately blind — it knows nothing about which tier a
//! candidate's stores compile to. It remains as the comparison baseline for
//! `helium-tune`, the cost-model-guided search (see the `helium-tune` crate),
//! which ranks candidates from a [`crate::compile::CompiledPipeline::dry_run`]
//! profile before spending any timing budget and beats this sampler on
//! trials-to-within-5%-of-best (gated in `BENCH_autotune.json`).

use crate::buffer::Buffer;
use crate::cache::fingerprint_schedule;
use crate::compile::CompileOptions;
use crate::func::Pipeline;
use crate::realize::{RealizeError, RealizeInputs};
use crate::schedule::Schedule;
use rand::prelude::*;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Configuration of an autotuning session.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Maximum number of candidate schedules to try.
    pub max_candidates: usize,
    /// Wall-clock budget for the whole search.
    pub budget: Duration,
    /// Number of timing repetitions per candidate (the minimum is kept).
    pub repetitions: usize,
    /// Seed for the pseudo-random schedule sampler.
    pub seed: u64,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            max_candidates: 16,
            budget: Duration::from_secs(10),
            repetitions: 2,
            seed: 0x48454c49, // "HELI"
        }
    }
}

/// Result of an autotuning session.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// The best schedule found.
    pub best: Schedule,
    /// Time of the best schedule.
    pub best_time: Duration,
    /// Time of the naive (sequential, scalar, fully inlined) schedule.
    pub naive_time: Duration,
    /// All evaluated `(schedule, time)` pairs.
    pub trials: Vec<(Schedule, Duration)>,
}

impl TuneReport {
    /// Speedup of the best schedule over the naive schedule.
    pub fn speedup_over_naive(&self) -> f64 {
        self.naive_time.as_secs_f64() / self.best_time.as_secs_f64().max(1e-12)
    }
}

fn sample_schedule(rng: &mut StdRng, pipeline: &Pipeline) -> Schedule {
    let tiles = [
        None,
        Some((32, 32)),
        Some((64, 64)),
        Some((128, 128)),
        Some((256, 64)),
    ];
    // 8/16/32 select genuinely different fused SIMD kernel widths in the
    // compiled executor — per lane family: 8/16/32 i32 or f32 lanes, 4/8/16
    // i64 lanes — while 1 and 4 keep the scalar/narrow dispatch points in
    // the space.
    let widths = [1usize, 4, 8, 16, 32];
    let mut s = Schedule::naive()
        .with_parallel(rng.gen_bool(0.75))
        .with_tile(*tiles.choose(rng).expect("non-empty"))
        .with_vector_width(*widths.choose(rng).expect("non-empty"));
    // Per producer: fuse (inline), materialize once (compute_root), or
    // materialize per consumer-loop iteration (compute_at a random output
    // loop). Placements the lowering pass cannot honour degrade to
    // compute_root, so every sample is realizable.
    let output_vars = pipeline.output_func().vars.clone();
    for name in pipeline.funcs.keys() {
        if *name == pipeline.output {
            continue;
        }
        match rng.gen_range(0..4u32) {
            0 => s = s.with_compute_root(name),
            1 => {
                if let Some(var) = output_vars.choose(rng) {
                    s = s.with_compute_at(name, var);
                }
            }
            _ => {} // inline
        }
    }
    s
}

fn time_schedule(
    schedule: &Schedule,
    pipeline: &Pipeline,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    repetitions: usize,
) -> Result<Duration, RealizeError> {
    // Compile once per candidate and time only cached runs: the tuner
    // optimizes steady-state request-rate throughput, where compilation is
    // amortized by the program cache. The untimed warm-up run populates it.
    let compiled = pipeline.compile(schedule, &CompileOptions::default())?;
    let _ = compiled.run(inputs, extents)?;
    let mut best = Duration::MAX;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let _ = compiled.run(inputs, extents)?;
        best = best.min(start.elapsed());
    }
    Ok(best)
}

/// Search for a fast schedule for `pipeline` realized over `extents` with the
/// given inputs.
///
/// # Errors
/// Returns an error if the pipeline cannot be realized at all (missing inputs,
/// undefined funcs, ...).
pub fn autotune(
    pipeline: &Pipeline,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    config: &TuneConfig,
) -> Result<TuneReport, RealizeError> {
    let started = Instant::now();
    let naive_time = time_schedule(
        &Schedule::naive(),
        pipeline,
        extents,
        inputs,
        config.repetitions,
    )?;
    let mut trials = vec![(Schedule::naive(), naive_time)];

    // Always try the stencil default before random sampling.
    let default = Schedule::stencil_default();
    let default_time = time_schedule(&default, pipeline, extents, inputs, config.repetitions)?;
    trials.push((default, default_time));

    let mut rng = StdRng::seed_from_u64(config.seed);
    // Dedupe by schedule fingerprint so the timing budget is never spent
    // re-measuring an identical schedule, and bail out once consecutive draws
    // stop producing new ones — small pipelines have fewer distinct schedules
    // than `max_candidates`, and without the bail-out the loop would spin
    // redrawing duplicates until the wall-clock budget expired.
    let mut seen: BTreeSet<u64> = trials
        .iter()
        .map(|(s, _)| fingerprint_schedule(s))
        .collect();
    let mut stale_draws = 0usize;
    const MAX_STALE_DRAWS: usize = 32;
    while trials.len() < config.max_candidates + 2
        && started.elapsed() < config.budget
        && stale_draws < MAX_STALE_DRAWS
    {
        let s = sample_schedule(&mut rng, pipeline);
        if !seen.insert(fingerprint_schedule(&s)) {
            stale_draws += 1;
            continue;
        }
        stale_draws = 0;
        let t = time_schedule(&s, pipeline, extents, inputs, config.repetitions)?;
        trials.push((s, t));
    }

    let (best, best_time) = trials
        .iter()
        .min_by_key(|(_, t)| *t)
        .map(|(s, t)| (s.clone(), *t))
        .expect("at least the naive trial exists");
    Ok(TuneReport {
        best,
        best_time,
        naive_time,
        trials,
    })
}

/// Convenience wrapper returning only the best schedule.
///
/// # Errors
/// See [`autotune`].
pub fn autotune_best(
    pipeline: &Pipeline,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    config: &TuneConfig,
) -> Result<Schedule, RealizeError> {
    Ok(autotune(pipeline, extents, inputs, config)?.best)
}

/// Helper used by benches and examples: build [`RealizeInputs`] from one image.
pub fn single_image_inputs<'a>(name: &str, buffer: &'a Buffer) -> RealizeInputs<'a> {
    RealizeInputs::new().with_image(name, buffer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::func::{Func, ImageParam};
    use crate::realize::Realizer;
    use crate::types::{ScalarType, Value};

    fn simple_pipeline() -> (Pipeline, Buffer) {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Xor,
                Expr::Image("input_1".into(), vec![x, y]),
                Expr::int(255),
            ),
        );
        let p = Pipeline::new(
            Func::pure("output_1", &["x_0", "x_1"], ScalarType::UInt8, value),
            vec![ImageParam::new("input_1", ScalarType::UInt8, 2)],
        );
        let mut input = Buffer::new(ScalarType::UInt8, &[64, 64]);
        for c in input.coords().collect::<Vec<_>>() {
            input.set(&c, Value::Int((c[0] * 3 + c[1]) % 256));
        }
        (p, input)
    }

    #[test]
    fn autotune_returns_a_valid_schedule() {
        let (p, input) = simple_pipeline();
        let inputs = single_image_inputs("input_1", &input);
        let config = TuneConfig {
            max_candidates: 4,
            budget: Duration::from_secs(5),
            repetitions: 1,
            seed: 7,
        };
        let report = autotune(&p, &[64, 64], &inputs, &config).unwrap();
        assert!(report.trials.len() >= 2);
        assert!(report.best_time <= report.naive_time);
        assert!(report.speedup_over_naive() >= 1.0);
        // The best schedule must reproduce the naive result exactly.
        let naive = Realizer::new(Schedule::naive())
            .realize(&p, &[64, 64], &inputs)
            .unwrap();
        let tuned = Realizer::new(report.best.clone())
            .realize(&p, &[64, 64], &inputs)
            .unwrap();
        assert_eq!(naive, tuned);
    }

    #[test]
    fn autotune_searches_compute_at_on_multi_stage_pipelines() {
        // blur_x(x, y) = in(x, y) + in(x+1, y); out = blur_x(x, y) + blur_x(x, y+1)
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let blur_x = Func::pure(
            "blur_x",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::add(
                Expr::cast(
                    ScalarType::UInt16,
                    Expr::Image("input_1".into(), vec![x.clone(), y.clone()]),
                ),
                Expr::cast(
                    ScalarType::UInt16,
                    Expr::Image(
                        "input_1".into(),
                        vec![Expr::add(x.clone(), Expr::int(1)), y.clone()],
                    ),
                ),
            ),
        );
        let out = Func::pure(
            "output_1",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::bin(
                    BinOp::Shr,
                    Expr::add(
                        Expr::FuncRef("blur_x".into(), vec![x.clone(), y.clone()]),
                        Expr::FuncRef("blur_x".into(), vec![x, Expr::add(y, Expr::int(1))]),
                    ),
                    Expr::uint(2),
                ),
            ),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("input_1", ScalarType::UInt8, 2)])
            .with_func(blur_x);
        let mut input = Buffer::new(ScalarType::UInt8, &[40, 40]);
        for c in input.coords().collect::<Vec<_>>() {
            input.set(&c, Value::Int((c[0] * 7 + c[1] * 3) % 256));
        }
        let inputs = single_image_inputs("input_1", &input);
        let config = TuneConfig {
            max_candidates: 12,
            budget: Duration::from_secs(10),
            repetitions: 1,
            seed: 11,
        };
        let report = autotune(&p, &[38, 38], &inputs, &config).unwrap();
        // The sampler must have explored at least one compute_at placement.
        assert!(
            report.trials.iter().any(|(s, _)| !s.compute_at.is_empty()),
            "no compute_at candidate sampled in {} trials",
            report.trials.len()
        );
        // And the winning schedule must preserve results exactly.
        let naive = Realizer::new(Schedule::naive())
            .realize(&p, &[38, 38], &inputs)
            .unwrap();
        let tuned = Realizer::new(report.best.clone())
            .realize(&p, &[38, 38], &inputs)
            .unwrap();
        assert_eq!(naive, tuned);
    }

    #[test]
    fn autotune_never_retimes_identical_schedules_and_survives_exhaustion() {
        let (p, input) = simple_pipeline();
        let inputs = single_image_inputs("input_1", &input);
        // More candidates than the single-func sample space has distinct
        // schedules (5 tiles × 5 widths × 2 parallel = 50): the search must
        // terminate via the stale-draw bail-out well before the wall-clock
        // budget, and every timed trial must be a distinct schedule.
        let config = TuneConfig {
            max_candidates: 64,
            budget: Duration::from_secs(120),
            repetitions: 1,
            seed: 3,
        };
        let started = Instant::now();
        let report = autotune(&p, &[32, 32], &inputs, &config).unwrap();
        let fps: BTreeSet<u64> = report
            .trials
            .iter()
            .map(|(s, _)| crate::cache::fingerprint_schedule(s))
            .collect();
        assert_eq!(
            fps.len(),
            report.trials.len(),
            "duplicate schedules were timed"
        );
        assert!(
            report.trials.len() <= 52,
            "more trials than distinct schedules exist"
        );
        assert!(
            started.elapsed() < config.budget,
            "exhausted sample space must bail out before the budget expires"
        );
    }

    #[test]
    fn autotune_best_is_consistent_with_report() {
        let (p, input) = simple_pipeline();
        let inputs = single_image_inputs("input_1", &input);
        let config = TuneConfig {
            max_candidates: 2,
            repetitions: 1,
            ..TuneConfig::default()
        };
        let best = autotune_best(&p, &[32, 32], &inputs, &config).unwrap();
        // Must be realizable.
        Realizer::new(best).realize(&p, &[32, 32], &inputs).unwrap();
    }
}
