//! The realizer: the compatibility entry point for executing a [`Pipeline`]
//! under a [`Schedule`].
//!
//! Since the compile/run split, [`Realizer::realize`] is a thin shim over
//! [`crate::compile`]: each call builds a [`crate::cache::CacheKey`] from the
//! pipeline/schedule fingerprints, the output extents and the input-binding
//! signature, and looks the compiled program up in a shared
//! [`crate::cache::ShardedCache`] (cloned realizers share one cache). Warm
//! calls therefore perform no validation, `compute_at` planning, lowering or
//! lane-program construction — only per-call execution. Callers that want the
//! compiled artifact as an explicit value (and their own cache) should use
//! [`crate::func::Pipeline::compile`] and
//! [`crate::compile::CompiledPipeline::run`] directly.

use crate::buffer::Buffer;
use crate::cache::{CacheKey, CacheStats, ShardedCache, DEFAULT_CACHE_CAPACITY};
use crate::compile::{realize_with_cache, PreparedProgram};
use crate::expr::Expr;
use crate::func::{Func, Pipeline};
use crate::schedule::Schedule;
use crate::types::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors raised during compilation or realization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RealizeError {
    /// An image parameter required by the pipeline was not provided.
    MissingInput(String),
    /// A scalar parameter required by the pipeline was not provided.
    MissingParam(String),
    /// A referenced func has no definition.
    UndefinedFunc(String),
    /// The output extents do not match the output func's dimensionality.
    DimensionMismatch {
        /// Dimensionality of the output func.
        expected: usize,
        /// Number of extents supplied to `realize`.
        got: usize,
    },
    /// The request's deadline passed before a worker could start it, so the
    /// realize was skipped (serving layer; see `helium-serve`).
    DeadlineExceeded,
    /// The realize panicked mid-execution; the payload is the panic message.
    /// Raised by recovery layers (e.g. a serving worker's unwind guard) —
    /// never by a well-formed pipeline itself.
    Panicked(String),
}

impl fmt::Display for RealizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealizeError::MissingInput(n) => write!(f, "missing input image `{n}`"),
            RealizeError::MissingParam(n) => write!(f, "missing scalar parameter `{n}`"),
            RealizeError::UndefinedFunc(n) => write!(f, "reference to undefined func `{n}`"),
            RealizeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "output extents have {got} dimensions, func has {expected}"
                )
            }
            RealizeError::DeadlineExceeded => {
                write!(f, "request deadline passed before the realize started")
            }
            RealizeError::Panicked(msg) => write!(f, "realize panicked: {msg}"),
        }
    }
}

impl std::error::Error for RealizeError {}

/// Inputs to a realization: image buffers and scalar parameters.
#[derive(Debug, Clone, Default)]
pub struct RealizeInputs<'a> {
    /// Image parameter bindings.
    pub images: BTreeMap<String, &'a Buffer>,
    /// Scalar parameter bindings.
    pub params: BTreeMap<String, Value>,
}

impl<'a> RealizeInputs<'a> {
    /// Empty inputs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind an image parameter.
    pub fn with_image(mut self, name: &str, buffer: &'a Buffer) -> Self {
        self.images.insert(name.to_string(), buffer);
        self
    }

    /// Bind a scalar parameter.
    pub fn with_param(mut self, name: &str, value: Value) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// The parameter environment both execution backends run against: the
    /// bound scalar parameters extended with `{name}.extent.{d}` entries for
    /// every bound image. Reduction domains over images
    /// ([`crate::func::RDom::over_image`]) and the bounds inference that sizes
    /// producers both consume these entries.
    pub fn params_with_image_extents(&self) -> BTreeMap<String, Value> {
        let mut params = self.params.clone();
        for (name, buf) in &self.images {
            for (d, e) in buf.extents().iter().enumerate() {
                params.insert(format!("{name}.extent.{d}"), Value::Int(*e as i64));
            }
        }
        params
    }
}

/// Which execution engine realizes pure definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ExecBackend {
    /// The original per-element interpreter (the differential-testing
    /// oracle): pure definitions are evaluated element by element through the
    /// shared [`crate::eval`] evaluator.
    Interpret,
    /// The lowering pipeline: the schedule is materialized into loop-nest IR
    /// ([`crate::lower`]) and executed by the compiled, type-specialized
    /// engine ([`crate::exec`]). Produces bit-identical buffers to
    /// [`ExecBackend::Interpret`].
    #[default]
    Lowered,
}

/// Realizes pipelines under a schedule, caching compiled programs between
/// calls.
///
/// The realizer owns a [`ShardedCache`] shared by all of its clones, so any
/// repeated `realize` (same pipeline, extents and binding signature) runs the
/// cached program without re-planning or re-lowering. For an explicit
/// compiled artifact, see [`Pipeline::compile`].
#[derive(Debug, Clone)]
pub struct Realizer {
    schedule: Schedule,
    backend: ExecBackend,
    cache: Arc<ShardedCache<Arc<PreparedProgram>>>,
}

impl Default for Realizer {
    /// Uses [`Schedule::stencil_default`], matching the configuration the
    /// crate-level quickstart and README advertise — so `Realizer::default()`
    /// behaves like the documented examples out of the box. Construct
    /// `Realizer::new(Schedule::naive())` explicitly when you want the
    /// sequential, scalar, fully-inlined oracle configuration.
    fn default() -> Self {
        Realizer::new(Schedule::stencil_default())
    }
}

impl Realizer {
    /// Create a realizer with the given schedule and the default (lowered)
    /// backend.
    pub fn new(schedule: Schedule) -> Realizer {
        Realizer {
            schedule,
            backend: ExecBackend::default(),
            cache: Arc::new(ShardedCache::new(DEFAULT_CACHE_CAPACITY)),
        }
    }

    /// Select the execution backend (the program cache keys on it, so one
    /// realizer can serve both backends without conflicts).
    pub fn with_backend(mut self, backend: ExecBackend) -> Realizer {
        self.backend = backend;
        self
    }

    /// The active schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The active execution backend.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Hit/miss/eviction counters of the shared program cache, aggregated
    /// across its shards (clones share the cache, so their counters land in
    /// the same totals).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The per-shard counter view behind [`Self::cache_stats`].
    pub fn cache_shard_stats(&self) -> Vec<CacheStats> {
        self.cache.shard_stats()
    }

    /// Realize the pipeline's output func over `output_extents`.
    ///
    /// The first call for a given (pipeline, extents, bindings) combination
    /// compiles the program — validation, `compute_at` planning, lowering,
    /// lane-program construction — and caches it; later calls only execute.
    ///
    /// # Errors
    /// Returns an error if inputs or parameters are missing, a referenced func
    /// is undefined, or the extents do not match the output dimensionality.
    pub fn realize(
        &self,
        pipeline: &Pipeline,
        output_extents: &[usize],
        inputs: &RealizeInputs<'_>,
    ) -> Result<Buffer, RealizeError> {
        let key = CacheKey::new(
            pipeline,
            &self.schedule,
            self.backend,
            output_extents,
            inputs,
        );
        realize_with_cache(
            pipeline,
            &self.schedule,
            self.backend,
            crate::target::Target::current(),
            output_extents,
            inputs,
            key,
            &self.cache,
        )
    }
}

pub(crate) fn inline_one(expr: &Expr, func: &Func) -> Expr {
    match expr {
        Expr::FuncRef(name, args) if *name == func.name => {
            let args: Vec<Expr> = args.iter().map(|a| inline_one(a, func)).collect();
            let body = func
                .pure_def
                .clone()
                .expect("inlinable funcs have a pure definition");
            // Wrap the body in the func's declared type, exactly as
            // materializing it into a buffer would truncate on store — so
            // inline, compute_root and compute_at placements all observe the
            // same values (Halide semantics: a Func's type applies at every
            // call site).
            let substituted = body.substitute(&|var| {
                func.vars
                    .iter()
                    .position(|v| v == var)
                    .map(|i| args[i].clone())
            });
            crate::simplify::simplify(&Expr::Cast(func.ty, Box::new(substituted)))
        }
        Expr::FuncRef(name, args) => Expr::FuncRef(
            name.clone(),
            args.iter().map(|a| inline_one(a, func)).collect(),
        ),
        Expr::Image(name, args) => Expr::Image(
            name.clone(),
            args.iter().map(|a| inline_one(a, func)).collect(),
        ),
        Expr::Cast(ty, e) => Expr::Cast(*ty, Box::new(inline_one(e, func))),
        Expr::Binary(op, a, b) => Expr::bin(*op, inline_one(a, func), inline_one(b, func)),
        Expr::Cmp(op, a, b) => Expr::cmp(*op, inline_one(a, func), inline_one(b, func)),
        Expr::Select(c, t, o) => Expr::select(
            inline_one(c, func),
            inline_one(t, func),
            inline_one(o, func),
        ),
        Expr::Call(c, args) => Expr::Call(*c, args.iter().map(|a| inline_one(a, func)).collect()),
        _ => expr.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::func::{ImageParam, RDom, UpdateDef};
    use crate::types::ScalarType;

    /// output(x, y) = cast<u8>((in(x, y+1) + in(x+2, y+1)) >> 1)
    fn blur_pipeline() -> Pipeline {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let at = |dx: i64, dy: i64| {
            Expr::Image(
                "input_1".into(),
                vec![
                    Expr::add(x.clone(), Expr::int(dx)),
                    Expr::add(y.clone(), Expr::int(dy)),
                ],
            )
        };
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(BinOp::Shr, Expr::add(at(0, 1), at(2, 1)), Expr::uint(1)),
        );
        Pipeline::new(
            Func::pure("output_1", &["x_0", "x_1"], ScalarType::UInt8, value),
            vec![ImageParam::new("input_1", ScalarType::UInt8, 2)],
        )
    }

    fn ramp_image(w: usize, h: usize) -> Buffer {
        let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
        for y in 0..h {
            for x in 0..w {
                b.set(
                    &[x as i64, y as i64],
                    Value::Int(((x + 2 * y) % 256) as i64),
                );
            }
        }
        b
    }

    #[test]
    fn pure_stencil_matches_reference() {
        let p = blur_pipeline();
        let input = ramp_image(16, 12);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        for schedule in [Schedule::naive(), Schedule::stencil_default()] {
            let out = Realizer::new(schedule)
                .realize(&p, &[14, 10], &inputs)
                .unwrap();
            for y in 0..10i64 {
                for x in 0..14i64 {
                    let a = input.get(&[x, y + 1]).as_i64();
                    let b = input.get(&[x + 2, y + 1]).as_i64();
                    let expect = ((a + b) >> 1) as u8 as i64;
                    assert_eq!(out.get(&[x, y]).as_i64(), expect, "mismatch at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn missing_input_is_an_error() {
        let p = blur_pipeline();
        let err = Realizer::default()
            .realize(&p, &[4, 4], &RealizeInputs::new())
            .unwrap_err();
        assert_eq!(err, RealizeError::MissingInput("input_1".into()));
        assert!(err.to_string().contains("input_1"));
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let p = blur_pipeline();
        let input = ramp_image(8, 8);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let err = Realizer::default().realize(&p, &[4], &inputs).unwrap_err();
        assert!(matches!(
            err,
            RealizeError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn default_realizer_matches_documented_schedule() {
        // The documented default: the same schedule the quickstart uses.
        assert_eq!(Realizer::default().schedule(), &Schedule::stencil_default());
        assert_eq!(Realizer::default().backend(), ExecBackend::Lowered);
    }

    #[test]
    fn repeated_realizes_hit_the_program_cache() {
        let p = blur_pipeline();
        let input = ramp_image(16, 12);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let realizer = Realizer::new(Schedule::stencil_default());
        let a = realizer.realize(&p, &[14, 10], &inputs).unwrap();
        let b = realizer.realize(&p, &[14, 10], &inputs).unwrap();
        assert_eq!(a, b);
        let stats = realizer.cache_stats();
        assert_eq!(stats.misses, 1, "first call compiles");
        assert_eq!(stats.hits, 1, "second call reuses the program");
        // Clones share the cache.
        let clone = realizer.clone();
        let c = clone.realize(&p, &[14, 10], &inputs).unwrap();
        assert_eq!(a, c);
        assert_eq!(realizer.cache_stats().hits, 2);
    }

    #[test]
    fn params_with_image_extents_injects_extent_params() {
        let input = ramp_image(5, 7);
        let inputs = RealizeInputs::new()
            .with_image("input_1", &input)
            .with_param("k", Value::Int(3));
        let params = inputs.params_with_image_extents();
        assert_eq!(params.get("k"), Some(&Value::Int(3)));
        assert_eq!(params.get("input_1.extent.0"), Some(&Value::Int(5)));
        assert_eq!(params.get("input_1.extent.1"), Some(&Value::Int(7)));
    }

    #[test]
    fn histogram_update_definition() {
        // hist(x) = 0; hist(input(r.x, r.y)) = hist(input(r.x, r.y)) + 1
        let img = ImageParam::new("input_1", ScalarType::UInt8, 2);
        let rdom = RDom::over_image("r_0", &img);
        let lhs = Expr::Image(
            "input_1".into(),
            vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
        );
        let update = UpdateDef {
            lhs: vec![lhs.clone()],
            value: Expr::cast(
                ScalarType::UInt64,
                Expr::add(Expr::FuncRef("hist".into(), vec![lhs]), Expr::int(1)),
            ),
            rdom,
        };
        let hist =
            Func::pure("hist", &["x_0"], ScalarType::UInt64, Expr::int(0)).with_update(update);
        let p = Pipeline::new(hist, vec![img]);

        let mut input = Buffer::new(ScalarType::UInt8, &[4, 4]);
        for (i, c) in input.coords().collect::<Vec<_>>().into_iter().enumerate() {
            input.set(&c, Value::Int((i % 3) as i64));
        }
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let out = Realizer::default().realize(&p, &[256], &inputs).unwrap();
        assert_eq!(out.get(&[0]).as_i64(), 6);
        assert_eq!(out.get(&[1]).as_i64(), 5);
        assert_eq!(out.get(&[2]).as_i64(), 5);
        assert_eq!(out.get(&[3]).as_i64(), 0);
    }

    #[test]
    fn compute_root_and_inline_give_identical_results() {
        // two-stage: bright(x,y) = in(x,y)+10 ; out(x,y) = bright(x,y) * 2
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let bright = Func::pure(
            "bright",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::add(
                    Expr::Image("input_1".into(), vec![x.clone(), y.clone()]),
                    Expr::int(10),
                ),
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::mul(Expr::FuncRef("bright".into(), vec![x, y]), Expr::int(2)),
            ),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("input_1", ScalarType::UInt8, 2)])
            .with_func(bright);
        let input = ramp_image(8, 8);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let inlined = Realizer::new(Schedule::naive())
            .realize(&p, &[8, 8], &inputs)
            .unwrap();
        let rooted = Realizer::new(Schedule::naive().with_compute_root("bright"))
            .realize(&p, &[8, 8], &inputs)
            .unwrap();
        assert_eq!(inlined, rooted);
        assert_eq!(
            inlined.get(&[3, 4]).as_i64(),
            ((input.get(&[3, 4]).as_i64() + 10) * 2) & 0xff
        );
    }
}
