//! The realizer: executes a [`Pipeline`] under a [`Schedule`], producing an
//! output [`Buffer`].
//!
//! Pure definitions are compiled to a small stack-machine program and the
//! output domain is walked tile by tile, optionally distributing outer rows
//! across worker threads. Update definitions (reductions such as histograms)
//! are evaluated sequentially with a direct AST interpreter.

use crate::bounds::{accumulate_func_bounds, expr_interval, Interval};
use crate::buffer::{write_scalar, Buffer};
use crate::expr::{eval_binop, eval_cmp, BinOp, CmpOp, Expr, ExternCall};
use crate::func::{Func, Pipeline};
use crate::lower::{inline_except, ComputeAtOutcome};
use crate::schedule::Schedule;
use crate::types::{ScalarType, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors raised during realization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RealizeError {
    /// An image parameter required by the pipeline was not provided.
    MissingInput(String),
    /// A scalar parameter required by the pipeline was not provided.
    MissingParam(String),
    /// A referenced func has no definition.
    UndefinedFunc(String),
    /// The output extents do not match the output func's dimensionality.
    DimensionMismatch {
        /// Dimensionality of the output func.
        expected: usize,
        /// Number of extents supplied to `realize`.
        got: usize,
    },
}

impl fmt::Display for RealizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealizeError::MissingInput(n) => write!(f, "missing input image `{n}`"),
            RealizeError::MissingParam(n) => write!(f, "missing scalar parameter `{n}`"),
            RealizeError::UndefinedFunc(n) => write!(f, "reference to undefined func `{n}`"),
            RealizeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "output extents have {got} dimensions, func has {expected}"
                )
            }
        }
    }
}

impl std::error::Error for RealizeError {}

/// Inputs to a realization: image buffers and scalar parameters.
#[derive(Debug, Clone, Default)]
pub struct RealizeInputs<'a> {
    /// Image parameter bindings.
    pub images: BTreeMap<String, &'a Buffer>,
    /// Scalar parameter bindings.
    pub params: BTreeMap<String, Value>,
}

impl<'a> RealizeInputs<'a> {
    /// Empty inputs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind an image parameter.
    pub fn with_image(mut self, name: &str, buffer: &'a Buffer) -> Self {
        self.images.insert(name.to_string(), buffer);
        self
    }

    /// Bind a scalar parameter.
    pub fn with_param(mut self, name: &str, value: Value) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }
}

// ---------------------------------------------------------------------------
// Compiled stack machine
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    PushInt(i64),
    PushFloat(f64),
    LoadVar(usize),
    LoadSource { source: usize, arity: usize },
    Bin(BinOp),
    Cmp(CmpOp),
    Cast(ScalarType),
    Call(ExternCall, usize),
    Select,
}

/// A pure definition compiled to a postfix program over a value stack.
#[derive(Debug, Clone)]
struct Compiled {
    ops: Vec<Op>,
    max_stack: usize,
}

struct CompileCtx<'a> {
    var_slots: &'a BTreeMap<String, usize>,
    source_slots: &'a BTreeMap<String, usize>,
    params: &'a BTreeMap<String, Value>,
}

fn compile_expr(e: &Expr, ctx: &CompileCtx<'_>, ops: &mut Vec<Op>) -> Result<(), RealizeError> {
    match e {
        Expr::Var(name) | Expr::RVar(name) => {
            let slot = ctx
                .var_slots
                .get(name)
                .copied()
                .ok_or_else(|| RealizeError::MissingParam(name.clone()))?;
            ops.push(Op::LoadVar(slot));
        }
        Expr::ConstInt(v, ty) => {
            if ty.is_float() {
                ops.push(Op::PushFloat(*v as f64));
            } else {
                ops.push(Op::PushInt(*v));
            }
        }
        Expr::ConstFloat(v, _) => ops.push(Op::PushFloat(*v)),
        Expr::Param(name, _) => {
            let v = ctx
                .params
                .get(name)
                .copied()
                .ok_or_else(|| RealizeError::MissingParam(name.clone()))?;
            match v {
                Value::Int(i) => ops.push(Op::PushInt(i)),
                Value::Float(f) => ops.push(Op::PushFloat(f)),
            }
        }
        Expr::Cast(ty, inner) => {
            compile_expr(inner, ctx, ops)?;
            ops.push(Op::Cast(*ty));
        }
        Expr::Binary(op, a, b) => {
            compile_expr(a, ctx, ops)?;
            compile_expr(b, ctx, ops)?;
            ops.push(Op::Bin(*op));
        }
        Expr::Cmp(op, a, b) => {
            compile_expr(a, ctx, ops)?;
            compile_expr(b, ctx, ops)?;
            ops.push(Op::Cmp(*op));
        }
        Expr::Select(c, t, o) => {
            compile_expr(c, ctx, ops)?;
            compile_expr(t, ctx, ops)?;
            compile_expr(o, ctx, ops)?;
            ops.push(Op::Select);
        }
        Expr::Call(c, args) => {
            for a in args {
                compile_expr(a, ctx, ops)?;
            }
            ops.push(Op::Call(*c, args.len()));
        }
        Expr::Image(name, args) | Expr::FuncRef(name, args) => {
            let source = ctx
                .source_slots
                .get(name)
                .copied()
                .ok_or_else(|| RealizeError::MissingInput(name.clone()))?;
            for a in args {
                compile_expr(a, ctx, ops)?;
            }
            ops.push(Op::LoadSource {
                source,
                arity: args.len(),
            });
        }
    }
    Ok(())
}

fn compile(
    expr: &Expr,
    var_slots: &BTreeMap<String, usize>,
    source_slots: &BTreeMap<String, usize>,
    params: &BTreeMap<String, Value>,
) -> Result<Compiled, RealizeError> {
    let ctx = CompileCtx {
        var_slots,
        source_slots,
        params,
    };
    let mut ops = Vec::new();
    compile_expr(expr, &ctx, &mut ops)?;
    // A conservative stack bound: every op pushes at most one value.
    let max_stack = ops.len().max(4);
    Ok(Compiled { ops, max_stack })
}

fn execute(
    compiled: &Compiled,
    vars: &[i64],
    sources: &[&Buffer],
    scratch: &mut Vec<Value>,
) -> Value {
    scratch.clear();
    let mut idx_buf: Vec<i64> = Vec::with_capacity(4);
    for op in &compiled.ops {
        match op {
            Op::PushInt(v) => scratch.push(Value::Int(*v)),
            Op::PushFloat(v) => scratch.push(Value::Float(*v)),
            Op::LoadVar(slot) => scratch.push(Value::Int(vars[*slot])),
            Op::LoadSource { source, arity } => {
                idx_buf.clear();
                let start = scratch.len() - arity;
                for v in &scratch[start..] {
                    idx_buf.push(v.as_i64());
                }
                scratch.truncate(start);
                scratch.push(sources[*source].get(&idx_buf));
            }
            Op::Bin(op) => {
                let b = scratch.pop().expect("stack underflow");
                let a = scratch.pop().expect("stack underflow");
                scratch.push(eval_binop(*op, a, b));
            }
            Op::Cmp(op) => {
                let b = scratch.pop().expect("stack underflow");
                let a = scratch.pop().expect("stack underflow");
                scratch.push(eval_cmp(*op, a, b));
            }
            Op::Cast(ty) => {
                let a = scratch.pop().expect("stack underflow");
                scratch.push(a.cast(*ty));
            }
            Op::Call(c, arity) => {
                let start = scratch.len() - arity;
                let v = c.eval(&scratch[start..]);
                scratch.truncate(start);
                scratch.push(v);
            }
            Op::Select => {
                let otherwise = scratch.pop().expect("stack underflow");
                let then = scratch.pop().expect("stack underflow");
                let cond = scratch.pop().expect("stack underflow");
                scratch.push(if cond.is_true() { then } else { otherwise });
            }
        }
    }
    scratch.pop().expect("expression produced no value")
}

// ---------------------------------------------------------------------------
// AST interpreter (used for update definitions)
// ---------------------------------------------------------------------------

struct InterpCtx<'a> {
    vars: BTreeMap<String, i64>,
    params: &'a BTreeMap<String, Value>,
    images: &'a BTreeMap<String, &'a Buffer>,
    /// The buffer being updated (reads of the func itself resolve here).
    self_name: &'a str,
    self_buffer: &'a Buffer,
    /// Materialized producer buffers.
    roots: &'a BTreeMap<String, Buffer>,
}

fn interp(e: &Expr, ctx: &InterpCtx<'_>) -> Result<Value, RealizeError> {
    Ok(match e {
        Expr::Var(n) | Expr::RVar(n) => Value::Int(
            *ctx.vars
                .get(n)
                .ok_or_else(|| RealizeError::MissingParam(n.clone()))?,
        ),
        Expr::ConstInt(v, ty) => {
            if ty.is_float() {
                Value::Float(*v as f64)
            } else {
                Value::Int(*v)
            }
        }
        Expr::ConstFloat(v, _) => Value::Float(*v),
        Expr::Param(n, _) => *ctx
            .params
            .get(n)
            .ok_or_else(|| RealizeError::MissingParam(n.clone()))?,
        Expr::Cast(ty, inner) => interp(inner, ctx)?.cast(*ty),
        Expr::Binary(op, a, b) => eval_binop(*op, interp(a, ctx)?, interp(b, ctx)?),
        Expr::Cmp(op, a, b) => eval_cmp(*op, interp(a, ctx)?, interp(b, ctx)?),
        Expr::Select(c, t, o) => {
            if interp(c, ctx)?.is_true() {
                interp(t, ctx)?
            } else {
                interp(o, ctx)?
            }
        }
        Expr::Call(c, args) => {
            let vals: Result<Vec<Value>, RealizeError> =
                args.iter().map(|a| interp(a, ctx)).collect();
            c.eval(&vals?)
        }
        Expr::Image(n, args) => {
            let idx: Result<Vec<i64>, RealizeError> = args
                .iter()
                .map(|a| interp(a, ctx).map(|v| v.as_i64()))
                .collect();
            let buf = ctx
                .images
                .get(n)
                .copied()
                .ok_or_else(|| RealizeError::MissingInput(n.clone()))?;
            buf.get(&idx?)
        }
        Expr::FuncRef(n, args) => {
            let idx: Result<Vec<i64>, RealizeError> = args
                .iter()
                .map(|a| interp(a, ctx).map(|v| v.as_i64()))
                .collect();
            let idx = idx?;
            if n == ctx.self_name {
                ctx.self_buffer.get(&idx)
            } else if let Some(buf) = ctx.roots.get(n) {
                buf.get(&idx)
            } else {
                return Err(RealizeError::UndefinedFunc(n.clone()));
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Realizer
// ---------------------------------------------------------------------------

/// Which execution engine realizes pure definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// The original per-element interpreter (the differential-testing
    /// oracle): pure definitions run through a [`Value`] stack machine.
    Interpret,
    /// The lowering pipeline: the schedule is materialized into loop-nest IR
    /// ([`crate::lower`]) and executed by the compiled, type-specialized
    /// engine ([`crate::exec`]). Produces bit-identical buffers to
    /// [`ExecBackend::Interpret`].
    #[default]
    Lowered,
}

/// Realizes pipelines under a schedule.
#[derive(Debug, Clone)]
pub struct Realizer {
    schedule: Schedule,
    backend: ExecBackend,
}

impl Default for Realizer {
    fn default() -> Self {
        Realizer::new(Schedule::naive())
    }
}

impl Realizer {
    /// Create a realizer with the given schedule and the default (lowered)
    /// backend.
    pub fn new(schedule: Schedule) -> Realizer {
        Realizer {
            schedule,
            backend: ExecBackend::default(),
        }
    }

    /// Select the execution backend.
    pub fn with_backend(mut self, backend: ExecBackend) -> Realizer {
        self.backend = backend;
        self
    }

    /// The active schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The active execution backend.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// The funcs that must be materialized into buffers regardless of
    /// backend: `compute_root` plus every func with reductions.
    fn base_roots(&self, pipeline: &Pipeline) -> BTreeSet<String> {
        pipeline
            .funcs
            .iter()
            .filter(|(n, f)| {
                **n != pipeline.output
                    && (self.schedule.compute_root.contains(*n) || !f.updates.is_empty())
            })
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// The funcs named by `compute_at` that could be attached (pure,
    /// existing, not already roots). Used for sizing so both backends
    /// materialize shared producers over identical extents.
    fn compute_at_funcs(&self, pipeline: &Pipeline, base: &BTreeSet<String>) -> BTreeSet<String> {
        self.schedule
            .compute_at
            .keys()
            .filter(|n| {
                pipeline.funcs.contains_key(*n) && **n != pipeline.output && !base.contains(*n)
            })
            .cloned()
            .collect()
    }

    /// Realize the pipeline's output func over `output_extents`.
    ///
    /// # Errors
    /// Returns an error if inputs or parameters are missing, a referenced func
    /// is undefined, or the extents do not match the output dimensionality.
    pub fn realize(
        &self,
        pipeline: &Pipeline,
        output_extents: &[usize],
        inputs: &RealizeInputs<'_>,
    ) -> Result<Buffer, RealizeError> {
        let output = pipeline.output_func();
        if output.dims() != output_extents.len() {
            return Err(RealizeError::DimensionMismatch {
                expected: output.dims(),
                got: output_extents.len(),
            });
        }
        // Extend params with image extents (used by RDoms over images).
        let mut params = inputs.params.clone();
        for (name, buf) in &inputs.images {
            for (d, e) in buf.extents().iter().enumerate() {
                params.insert(format!("{name}.extent.{d}"), Value::Int(*e as i64));
            }
        }

        let base = self.base_roots(pipeline);
        let at_funcs = self.compute_at_funcs(pipeline, &base);

        // Decide compute_at placements. The interpreter backend realizes
        // compute_at producers as compute_root (value-identical); the lowered
        // backend keeps affine placements and degrades the rest.
        let outcome = match self.backend {
            ExecBackend::Interpret => ComputeAtOutcome {
                plans: Vec::new(),
                demoted: at_funcs.clone(),
            },
            ExecBackend::Lowered => crate::lower::plan_compute_at(
                pipeline,
                &self.schedule,
                output_extents,
                &params,
                &base,
            )?,
        };

        // Funcs materialized into standalone buffers before the output runs.
        let mut materialize: BTreeSet<String> = base.clone();
        materialize.extend(outcome.demoted.iter().cloned());

        // Sizing keep-set is backend-independent so shared producers get
        // identical extents (and therefore identical boundary clamping).
        let mut sizing_keep = base.clone();
        sizing_keep.extend(at_funcs.iter().cloned());

        let mut roots: BTreeMap<String, Buffer> = BTreeMap::new();
        if !materialize.is_empty() {
            // Compute the bounds each kept func is accessed over — from the
            // output's (inlined) expression, then transitively through every
            // kept producer's own definition, so producers referenced only by
            // other producers (e.g. a compute_root feeding a compute_at func)
            // are sized by what actually reads them. This pass is
            // backend-independent, so shared producers get identical extents
            // (and therefore identical boundary clamping).
            let inlined = match &output.pure_def {
                Some(e) => inline_except(pipeline, e, &sizing_keep)?,
                None => Expr::int(0),
            };
            let mut var_bounds = BTreeMap::new();
            for (d, v) in output.vars.iter().enumerate() {
                var_bounds.insert(
                    v.clone(),
                    Interval {
                        min: 0,
                        max: output_extents[d] as i64 - 1,
                    },
                );
            }
            let mut required: BTreeMap<String, Vec<Interval>> = BTreeMap::new();
            accumulate_func_bounds(&inlined, &var_bounds, &params, &mut required);
            // Propagate requirements through kept producers to a fixed point
            // (bounded: pipelines are acyclic, so one pass per chained
            // producer suffices).
            for _ in 0..sizing_keep.len() + 1 {
                let mut grown = false;
                for name in &sizing_keep {
                    let func = match pipeline.funcs.get(name) {
                        Some(f) => f,
                        None => continue,
                    };
                    let (Some(body), Some(region)) = (&func.pure_def, required.get(name)) else {
                        continue;
                    };
                    let body = inline_except(pipeline, body, &sizing_keep)?;
                    let mut bounds = BTreeMap::new();
                    for (d, v) in func.vars.iter().enumerate() {
                        let max = region.get(d).map(|i| i.max).unwrap_or(0).max(0);
                        bounds.insert(v.clone(), Interval { min: 0, max });
                    }
                    let before = required.clone();
                    accumulate_func_bounds(&body, &bounds, &params, &mut required);
                    if required != before {
                        grown = true;
                    }
                }
                if !grown {
                    break;
                }
            }
            // Materialize in dependency order: a producer whose realization
            // reads another materialized func (through its pure or update
            // definitions) must come after it.
            let deps_of = |name: &String| -> Result<BTreeSet<String>, RealizeError> {
                let func = &pipeline.funcs[name];
                let mut refs = BTreeSet::new();
                if let Some(body) = &func.pure_def {
                    refs.extend(inline_except(pipeline, body, &base)?.referenced_funcs());
                }
                for u in &func.updates {
                    for e in u.lhs.iter().chain(std::iter::once(&u.value)) {
                        refs.extend(inline_except(pipeline, e, &base)?.referenced_funcs());
                    }
                }
                refs.remove(name);
                refs.retain(|r| materialize.contains(r));
                Ok(refs)
            };
            let mut pending: Vec<String> = materialize.iter().cloned().collect();
            let mut ordered: Vec<String> = Vec::new();
            while !pending.is_empty() {
                let done: BTreeSet<String> = ordered.iter().cloned().collect();
                let mut picked = None;
                for (i, n) in pending.iter().enumerate() {
                    if deps_of(n)?.iter().all(|d| done.contains(d)) {
                        picked = Some(i);
                        break;
                    }
                }
                // A cycle (which well-formed pipelines cannot have) falls back
                // to name order so realization still terminates.
                let i = picked.unwrap_or(0);
                ordered.push(pending.remove(i));
            }
            for name in &ordered {
                let extents: Vec<usize> = match required.get(name) {
                    Some(ivals) => ivals.iter().map(|i| (i.max + 1).max(1) as usize).collect(),
                    None => output_extents.to_vec(),
                };
                let mut sub_pipeline = pipeline.clone();
                sub_pipeline.output = name.clone();
                let buf = self.realize_single(
                    &sub_pipeline,
                    &extents,
                    inputs,
                    &params,
                    &roots,
                    &base,
                    &ComputeAtOutcome::default(),
                )?;
                roots.insert(name.clone(), buf);
            }
        }
        self.realize_single(
            pipeline,
            output_extents,
            inputs,
            &params,
            &roots,
            &materialize,
            &outcome,
        )
    }

    /// Realize a single func (the pipeline output) given already-materialized
    /// producer buffers. `keep` names the funcs left un-inlined (read as
    /// sources); `outcome` carries this func's `compute_at` placements.
    #[allow(clippy::too_many_arguments)]
    fn realize_single(
        &self,
        pipeline: &Pipeline,
        output_extents: &[usize],
        inputs: &RealizeInputs<'_>,
        params: &BTreeMap<String, Value>,
        roots: &BTreeMap<String, Buffer>,
        keep: &BTreeSet<String>,
        outcome: &ComputeAtOutcome,
    ) -> Result<Buffer, RealizeError> {
        let output = pipeline.output_func();
        let mut buffer = Buffer::new(output.ty, output_extents);

        if let Some(pure_def) = &output.pure_def {
            match self.backend {
                ExecBackend::Interpret => {
                    let expr = inline_except(pipeline, pure_def, keep)?;
                    self.run_pure(&expr, output, &mut buffer, inputs, params, roots)?;
                }
                ExecBackend::Lowered => {
                    self.run_pure_lowered(
                        pipeline,
                        output_extents,
                        &mut buffer,
                        inputs,
                        params,
                        roots,
                        keep,
                        outcome,
                    )?;
                }
            }
        }
        for update in &output.updates {
            self.run_update(pipeline, output, update, &mut buffer, inputs, params, roots)?;
        }
        Ok(buffer)
    }

    /// The lowered pure stage: lower to loop-nest IR and run the compiled
    /// executor.
    #[allow(clippy::too_many_arguments)]
    fn run_pure_lowered(
        &self,
        pipeline: &Pipeline,
        output_extents: &[usize],
        buffer: &mut Buffer,
        inputs: &RealizeInputs<'_>,
        params: &BTreeMap<String, Value>,
        roots: &BTreeMap<String, Buffer>,
        keep: &BTreeSet<String>,
        outcome: &ComputeAtOutcome,
    ) -> Result<(), RealizeError> {
        let output = pipeline.output_func();
        // Mirror the interpreter's up-front validation (and error kinds).
        let mut sized_keep = keep.clone();
        sized_keep.extend(outcome.plans.iter().map(|p| p.func.clone()));
        let expr = inline_except(
            pipeline,
            output.pure_def.as_ref().expect("caller checked pure_def"),
            &sized_keep,
        )?;
        for name in expr.referenced_images() {
            if !inputs.images.contains_key(&name) {
                return Err(RealizeError::MissingInput(name));
            }
        }
        for name in expr.referenced_funcs() {
            let is_plan = outcome.plans.iter().any(|p| p.func == name);
            if !roots.contains_key(&name) && !is_plan {
                return Err(RealizeError::UndefinedFunc(name));
            }
        }
        let stmt =
            crate::lower::lower_pure(pipeline, &self.schedule, output_extents, keep, outcome)?;
        crate::exec::execute(&stmt, &output.name, buffer, &inputs.images, roots, params)
    }

    fn run_pure(
        &self,
        expr: &Expr,
        output: &Func,
        buffer: &mut Buffer,
        inputs: &RealizeInputs<'_>,
        params: &BTreeMap<String, Value>,
        roots: &BTreeMap<String, Buffer>,
    ) -> Result<(), RealizeError> {
        // Variable slots: one per output dimension, innermost first.
        let var_slots: BTreeMap<String, usize> = output
            .vars
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (v, i))
            .collect();
        // Source slots: image params then materialized roots.
        let mut source_slots = BTreeMap::new();
        let mut sources: Vec<&Buffer> = Vec::new();
        for (name, buf) in &inputs.images {
            source_slots.insert(name.clone(), sources.len());
            sources.push(buf);
        }
        for (name, buf) in roots {
            source_slots.insert(name.clone(), sources.len());
            sources.push(buf);
        }
        // Validate that every referenced image is bound.
        for name in expr.referenced_images() {
            if !source_slots.contains_key(&name) {
                return Err(RealizeError::MissingInput(name));
            }
        }
        for name in expr.referenced_funcs() {
            if !source_slots.contains_key(&name) {
                return Err(RealizeError::UndefinedFunc(name));
            }
        }
        let compiled = compile(expr, &var_slots, &source_slots, params)?;
        let extents = buffer.extents().to_vec();
        let ty = buffer.scalar_type();
        let elem_bytes = ty.bytes();
        let dims = extents.len();
        let inner: usize = extents[..dims - 1].iter().product::<usize>().max(1);
        let outer = extents[dims - 1];

        let threads = self.schedule.effective_threads().min(outer.max(1));
        let data = buffer.bytes_mut();
        let row_bytes = inner * elem_bytes;

        let eval_rows = |outer_range: std::ops::Range<usize>, chunk: &mut [u8]| {
            let mut scratch = Vec::with_capacity(compiled.max_stack);
            let mut vars = vec![0i64; dims];
            for (row_i, o) in outer_range.enumerate() {
                vars[dims - 1] = o as i64;
                // Walk the inner dimensions in memory order.
                let mut inner_idx = vec![0usize; dims.saturating_sub(1)];
                for i in 0..inner {
                    // Decode the linear inner index into coordinates.
                    let mut rem = i;
                    for (d, e) in extents[..dims - 1].iter().enumerate() {
                        inner_idx[d] = rem % e;
                        rem /= e;
                        vars[d] = inner_idx[d] as i64;
                    }
                    let v = execute(&compiled, &vars, &sources, &mut scratch);
                    let off = row_i * row_bytes + i * elem_bytes;
                    write_scalar(ty, v, &mut chunk[off..off + elem_bytes]);
                }
            }
        };

        if threads <= 1 {
            eval_rows(0..outer, data);
        } else {
            let rows_per_thread = outer.div_ceil(threads);
            let chunks: Vec<&mut [u8]> = data.chunks_mut(rows_per_thread * row_bytes).collect();
            std::thread::scope(|scope| {
                for (t, chunk) in chunks.into_iter().enumerate() {
                    let start = t * rows_per_thread;
                    let end = ((t + 1) * rows_per_thread).min(outer);
                    let eval_rows = &eval_rows;
                    scope.spawn(move || {
                        eval_rows(start..end, chunk);
                    });
                }
            });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_update(
        &self,
        pipeline: &Pipeline,
        output: &Func,
        update: &crate::func::UpdateDef,
        buffer: &mut Buffer,
        inputs: &RealizeInputs<'_>,
        params: &BTreeMap<String, Value>,
        roots: &BTreeMap<String, Buffer>,
    ) -> Result<(), RealizeError> {
        let _ = pipeline;
        // Resolve the reduction domain bounds.
        let empty = BTreeMap::new();
        let mut dims = Vec::new();
        for (var, min_e, extent_e) in &update.rdom.dims {
            let min = expr_interval(min_e, &empty, params).min;
            let extent = expr_interval(extent_e, &empty, params).min;
            dims.push((var.clone(), min, extent));
        }
        // Iterate the domain in row-major order (first dim innermost).
        let total: i64 = dims.iter().map(|(_, _, e)| (*e).max(0)).product();
        for i in 0..total {
            let mut rem = i;
            let mut vars = BTreeMap::new();
            for (var, min, extent) in &dims {
                let e = (*extent).max(1);
                vars.insert(var.clone(), min + rem % e);
                rem /= e;
            }
            let ctx = InterpCtx {
                vars,
                params,
                images: &inputs.images,
                self_name: &output.name,
                self_buffer: buffer,
                roots,
            };
            let idx: Result<Vec<i64>, RealizeError> = update
                .lhs
                .iter()
                .map(|e| interp(e, &ctx).map(|v| v.as_i64()))
                .collect();
            let idx = idx?;
            let value = interp(&update.value, &ctx)?;
            buffer.set(&idx, value);
        }
        Ok(())
    }
}

pub(crate) fn inline_one(expr: &Expr, func: &Func) -> Expr {
    match expr {
        Expr::FuncRef(name, args) if *name == func.name => {
            let args: Vec<Expr> = args.iter().map(|a| inline_one(a, func)).collect();
            let body = func
                .pure_def
                .clone()
                .expect("inlinable funcs have a pure definition");
            // Wrap the body in the func's declared type, exactly as
            // materializing it into a buffer would truncate on store — so
            // inline, compute_root and compute_at placements all observe the
            // same values (Halide semantics: a Func's type applies at every
            // call site).
            let substituted = body.substitute(&|var| {
                func.vars
                    .iter()
                    .position(|v| v == var)
                    .map(|i| args[i].clone())
            });
            crate::simplify::simplify(&Expr::Cast(func.ty, Box::new(substituted)))
        }
        Expr::FuncRef(name, args) => Expr::FuncRef(
            name.clone(),
            args.iter().map(|a| inline_one(a, func)).collect(),
        ),
        Expr::Image(name, args) => Expr::Image(
            name.clone(),
            args.iter().map(|a| inline_one(a, func)).collect(),
        ),
        Expr::Cast(ty, e) => Expr::Cast(*ty, Box::new(inline_one(e, func))),
        Expr::Binary(op, a, b) => Expr::bin(*op, inline_one(a, func), inline_one(b, func)),
        Expr::Cmp(op, a, b) => Expr::cmp(*op, inline_one(a, func), inline_one(b, func)),
        Expr::Select(c, t, o) => Expr::select(
            inline_one(c, func),
            inline_one(t, func),
            inline_one(o, func),
        ),
        Expr::Call(c, args) => Expr::Call(*c, args.iter().map(|a| inline_one(a, func)).collect()),
        _ => expr.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{ImageParam, RDom, UpdateDef};

    /// output(x, y) = cast<u8>((in(x, y+1) + in(x+2, y+1)) >> 1)
    fn blur_pipeline() -> Pipeline {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let at = |dx: i64, dy: i64| {
            Expr::Image(
                "input_1".into(),
                vec![
                    Expr::add(x.clone(), Expr::int(dx)),
                    Expr::add(y.clone(), Expr::int(dy)),
                ],
            )
        };
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(BinOp::Shr, Expr::add(at(0, 1), at(2, 1)), Expr::uint(1)),
        );
        Pipeline::new(
            Func::pure("output_1", &["x_0", "x_1"], ScalarType::UInt8, value),
            vec![ImageParam::new("input_1", ScalarType::UInt8, 2)],
        )
    }

    fn ramp_image(w: usize, h: usize) -> Buffer {
        let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
        for y in 0..h {
            for x in 0..w {
                b.set(
                    &[x as i64, y as i64],
                    Value::Int(((x + 2 * y) % 256) as i64),
                );
            }
        }
        b
    }

    #[test]
    fn pure_stencil_matches_reference() {
        let p = blur_pipeline();
        let input = ramp_image(16, 12);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        for schedule in [Schedule::naive(), Schedule::stencil_default()] {
            let out = Realizer::new(schedule)
                .realize(&p, &[14, 10], &inputs)
                .unwrap();
            for y in 0..10i64 {
                for x in 0..14i64 {
                    let a = input.get(&[x, y + 1]).as_i64();
                    let b = input.get(&[x + 2, y + 1]).as_i64();
                    let expect = ((a + b) >> 1) as u8 as i64;
                    assert_eq!(out.get(&[x, y]).as_i64(), expect, "mismatch at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn missing_input_is_an_error() {
        let p = blur_pipeline();
        let err = Realizer::default()
            .realize(&p, &[4, 4], &RealizeInputs::new())
            .unwrap_err();
        assert_eq!(err, RealizeError::MissingInput("input_1".into()));
        assert!(err.to_string().contains("input_1"));
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let p = blur_pipeline();
        let input = ramp_image(8, 8);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let err = Realizer::default().realize(&p, &[4], &inputs).unwrap_err();
        assert!(matches!(
            err,
            RealizeError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn histogram_update_definition() {
        // hist(x) = 0; hist(input(r.x, r.y)) = hist(input(r.x, r.y)) + 1
        let img = ImageParam::new("input_1", ScalarType::UInt8, 2);
        let rdom = RDom::over_image("r_0", &img);
        let lhs = Expr::Image(
            "input_1".into(),
            vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
        );
        let update = UpdateDef {
            lhs: vec![lhs.clone()],
            value: Expr::cast(
                ScalarType::UInt64,
                Expr::add(Expr::FuncRef("hist".into(), vec![lhs]), Expr::int(1)),
            ),
            rdom,
        };
        let hist =
            Func::pure("hist", &["x_0"], ScalarType::UInt64, Expr::int(0)).with_update(update);
        let p = Pipeline::new(hist, vec![img]);

        let mut input = Buffer::new(ScalarType::UInt8, &[4, 4]);
        for (i, c) in input.coords().collect::<Vec<_>>().into_iter().enumerate() {
            input.set(&c, Value::Int((i % 3) as i64));
        }
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let out = Realizer::default().realize(&p, &[256], &inputs).unwrap();
        assert_eq!(out.get(&[0]).as_i64(), 6);
        assert_eq!(out.get(&[1]).as_i64(), 5);
        assert_eq!(out.get(&[2]).as_i64(), 5);
        assert_eq!(out.get(&[3]).as_i64(), 0);
    }

    #[test]
    fn compute_root_and_inline_give_identical_results() {
        // two-stage: bright(x,y) = in(x,y)+10 ; out(x,y) = bright(x,y) * 2
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let bright = Func::pure(
            "bright",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::add(
                    Expr::Image("input_1".into(), vec![x.clone(), y.clone()]),
                    Expr::int(10),
                ),
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::mul(Expr::FuncRef("bright".into(), vec![x, y]), Expr::int(2)),
            ),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("input_1", ScalarType::UInt8, 2)])
            .with_func(bright);
        let input = ramp_image(8, 8);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let inlined = Realizer::new(Schedule::naive())
            .realize(&p, &[8, 8], &inputs)
            .unwrap();
        let rooted = Realizer::new(Schedule::naive().with_compute_root("bright"))
            .realize(&p, &[8, 8], &inputs)
            .unwrap();
        assert_eq!(inlined, rooted);
        assert_eq!(
            inlined.get(&[3, 4]).as_i64(),
            ((input.get(&[3, 4]).as_i64() + 10) * 2) & 0xff
        );
    }
}
