//! The keyed program cache behind compile-once/run-many execution.
//!
//! Compilation (validation, `compute_at` planning, lowering, simplification
//! and lane-program construction) is far more expensive than a single realize
//! over a small image, and at request rate it dominates. [`ProgramCache`] is a
//! small LRU map from [`CacheKey`] — pipeline fingerprint × schedule
//! fingerprint × backend × output extents × input-binding signature — to the
//! compiled artifact, with hit/miss/eviction counters so callers (and tests)
//! can verify that warm realizes do no compilation work.
//!
//! Parameter *values* are part of the key on purpose: lane programs constant-
//! fold `Expr::Param` at compilation, and image extents (injected as
//! `{name}.extent.{d}` parameters) drive bounds inference — so a program is
//! only reusable under the exact binding signature it was compiled for.

use crate::buffer::Buffer;
use crate::func::Pipeline;
use crate::realize::{ExecBackend, RealizeInputs};
use crate::schedule::Schedule;
use crate::types::Value;

/// 64-bit FNV-1a over a byte stream; collision-resistant enough for the cache
/// keys of a single process (keys also carry extents, which disambiguate the
/// common case).
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Structural fingerprint of a pipeline (funcs, definitions, image
/// parameters, output designation).
pub fn fingerprint_pipeline(pipeline: &Pipeline) -> u64 {
    let mut h = Fnv::new();
    // Debug formatting covers every field of every Func/Expr/ImageParam, so
    // two pipelines fingerprint equal iff they are structurally equal.
    h.write(format!("{pipeline:?}").as_bytes());
    h.finish()
}

/// Fingerprint of a schedule (every knob participates in its `Display`).
pub fn fingerprint_schedule(schedule: &Schedule) -> u64 {
    let mut h = Fnv::new();
    h.write(schedule.to_string().as_bytes());
    h.finish()
}

/// Signature of the inputs a program was compiled against: scalar parameter
/// values plus each bound image's name, element type and extents (extents
/// both clamp loads and feed bounds inference through the injected
/// `{name}.extent.{d}` parameters).
pub fn binding_signature(inputs: &RealizeInputs<'_>) -> u64 {
    // Every variable-length field is length-prefixed so structurally
    // different binding sets can never serialize to the same byte stream
    // (names may contain arbitrary bytes, and values must not be able to
    // masquerade as name suffixes — a colliding encoding would serve a
    // program constant-folded for the wrong parameter values).
    let mut h = Fnv::new();
    let write_name = |h: &mut Fnv, name: &str| {
        h.write(&(name.len() as u64).to_le_bytes());
        h.write(name.as_bytes());
    };
    for (name, value) in &inputs.params {
        write_name(&mut h, name);
        match value {
            Value::Int(v) => {
                h.write(b"i");
                h.write(&v.to_le_bytes());
            }
            Value::Float(v) => {
                h.write(b"f");
                h.write(&v.to_bits().to_le_bytes());
            }
        }
    }
    for (name, buf) in &inputs.images {
        h.write(b"|");
        write_name(&mut h, name);
        h.write(&[scalar_tag(buf)]);
        h.write(&(buf.extents().len() as u64).to_le_bytes());
        for &e in buf.extents() {
            h.write(&(e as u64).to_le_bytes());
        }
    }
    h.finish()
}

fn scalar_tag(buf: &Buffer) -> u8 {
    use crate::types::ScalarType::*;
    match buf.scalar_type() {
        UInt8 => 0,
        UInt16 => 1,
        UInt32 => 2,
        UInt64 => 3,
        Int32 => 4,
        Float32 => 5,
        Float64 => 6,
    }
}

/// The full cache key of one compiled program.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`fingerprint_pipeline`] of the pipeline.
    pub pipeline: u64,
    /// [`fingerprint_schedule`] of the schedule.
    pub schedule: u64,
    /// Execution backend the program targets.
    pub backend: ExecBackend,
    /// Output extents the loop bounds were synthesized for.
    pub extents: Vec<usize>,
    /// [`binding_signature`] of the inputs.
    pub bindings: u64,
}

impl CacheKey {
    /// Build the key for realizing `pipeline` under `schedule` on `backend`
    /// over `extents` with `inputs`.
    pub fn new(
        pipeline: &Pipeline,
        schedule: &Schedule,
        backend: ExecBackend,
        extents: &[usize],
        inputs: &RealizeInputs<'_>,
    ) -> CacheKey {
        CacheKey {
            pipeline: fingerprint_pipeline(pipeline),
            schedule: fingerprint_schedule(schedule),
            backend,
            extents: extents.to_vec(),
            bindings: binding_signature(inputs),
        }
    }
}

/// Hit/miss/eviction counters of a [`ProgramCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a compiled program.
    pub hits: u64,
    /// Lookups that found nothing (the caller compiles and inserts).
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    key: CacheKey,
    value: V,
    last_used: u64,
}

/// A small least-recently-used cache of compiled programs.
///
/// Capacities are expected to be tens of entries (one per pipeline × schedule
/// × extents in flight), so the store is a flat vector with linear probing —
/// no hashing infrastructure required, and iteration order is deterministic.
#[derive(Debug, Clone)]
pub struct ProgramCache<V> {
    capacity: usize,
    tick: u64,
    entries: Vec<Entry<V>>,
    stats: CacheStats,
}

impl<V: Clone> ProgramCache<V> {
    /// Create a cache holding at most `capacity` programs (minimum 1).
    pub fn new(capacity: usize) -> ProgramCache<V> {
        ProgramCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up `key`, refreshing its recency and counting a hit or miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<V> {
        self.tick += 1;
        match self.entries.iter_mut().find(|e| e.key == *key) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                Some(e.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) the program for `key`, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, key: CacheKey, value: V) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.value = value;
            e.last_used = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache is non-empty when full");
            self.entries.swap_remove(oldest);
            self.stats.evictions += 1;
        }
        self.entries.push(Entry {
            key,
            value,
            last_used: self.tick,
        });
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of cached programs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters accumulated since construction (or the last [`Self::clear`]).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop every entry and reset the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = CacheStats::default();
    }
}

impl<V: Clone> Default for ProgramCache<V> {
    fn default() -> Self {
        ProgramCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

/// Default capacity used by [`crate::realize::Realizer`] and
/// [`crate::compile::CompiledPipeline`].
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            pipeline: n,
            schedule: 0,
            backend: ExecBackend::Lowered,
            extents: vec![8, 8],
            bindings: 0,
        }
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c: ProgramCache<u32> = ProgramCache::new(4);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), 10);
        assert_eq!(c.get(&key(1)), Some(10));
        assert_eq!(c.get(&key(2)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut c: ProgramCache<u32> = ProgramCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        // Touch key 1 so key 2 is the LRU.
        assert_eq!(c.get(&key(1)), Some(1));
        c.insert(key(3), 3);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.get(&key(2)), None, "LRU entry must be the one evicted");
        assert_eq!(c.get(&key(1)), Some(1));
        assert_eq!(c.get(&key(3)), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c: ProgramCache<u32> = ProgramCache::new(1);
        c.insert(key(1), 1);
        c.insert(key(1), 9);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&key(1)), Some(9));
    }

    #[test]
    fn schedule_fingerprints_separate_knobs() {
        let a = fingerprint_schedule(&Schedule::naive());
        let b = fingerprint_schedule(&Schedule::stencil_default());
        let c = fingerprint_schedule(&Schedule::naive().with_vector_width(4));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fingerprint_schedule(&Schedule::naive()));
    }

    #[test]
    fn binding_signature_resists_boundary_shifts() {
        // Name/value boundaries are length-prefixed: a param whose name
        // absorbs the next entry's leading bytes must not encode identically.
        let a = RealizeInputs::new()
            .with_param("x", Value::Int(0x69))
            .with_param("z", Value::Int(0));
        let b = RealizeInputs::new()
            .with_param("xi", Value::Int(0x69))
            .with_param("z", Value::Int(0));
        assert_ne!(binding_signature(&a), binding_signature(&b));
    }

    #[test]
    fn binding_signature_depends_on_params_and_image_shape() {
        use crate::buffer::Buffer;
        use crate::types::ScalarType;
        let img_a = Buffer::new(ScalarType::UInt8, &[8, 8]);
        let img_b = Buffer::new(ScalarType::UInt8, &[9, 8]);
        let base = RealizeInputs::new().with_image("in", &img_a);
        let shifted = RealizeInputs::new().with_image("in", &img_b);
        let with_param = RealizeInputs::new()
            .with_image("in", &img_a)
            .with_param("k", Value::Int(3));
        let sig = binding_signature(&base);
        assert_ne!(sig, binding_signature(&shifted), "extents are keyed");
        assert_ne!(sig, binding_signature(&with_param), "params are keyed");
        assert_eq!(sig, binding_signature(&base.clone()));
    }
}
