//! The keyed program cache behind compile-once/run-many execution.
//!
//! Compilation (validation, `compute_at` planning, lowering, simplification
//! and lane-program construction) is far more expensive than a single realize
//! over a small image, and at request rate it dominates. [`ProgramCache`] is a
//! small LRU map from [`CacheKey`] — pipeline fingerprint × schedule
//! fingerprint × backend × output extents × input-binding signature — to the
//! compiled artifact, with hit/miss/eviction counters so callers (and tests)
//! can verify that warm realizes do no compilation work.
//!
//! Parameter *values* are part of the key on purpose: lane programs constant-
//! fold `Expr::Param` at compilation, and image extents (injected as
//! `{name}.extent.{d}` parameters) drive bounds inference — so a program is
//! only reusable under the exact binding signature it was compiled for.

use crate::buffer::Buffer;
use crate::func::Pipeline;
use crate::realize::{ExecBackend, RealizeError, RealizeInputs};
use crate::schedule::Schedule;
use crate::types::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// 64-bit FNV-1a over a byte stream; collision-resistant enough for the cache
/// keys of a single process (keys also carry extents, which disambiguate the
/// common case).
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Structural fingerprint of a pipeline (funcs, definitions, image
/// parameters, output designation).
pub fn fingerprint_pipeline(pipeline: &Pipeline) -> u64 {
    let mut h = Fnv::new();
    // Debug formatting covers every field of every Func/Expr/ImageParam, so
    // two pipelines fingerprint equal iff they are structurally equal.
    h.write(format!("{pipeline:?}").as_bytes());
    h.finish()
}

/// Fingerprint of a schedule (every knob participates in its `Display`).
pub fn fingerprint_schedule(schedule: &Schedule) -> u64 {
    let mut h = Fnv::new();
    h.write(schedule.to_string().as_bytes());
    h.finish()
}

/// Signature of the inputs a program was compiled against: scalar parameter
/// values plus each bound image's name, element type and extents (extents
/// both clamp loads and feed bounds inference through the injected
/// `{name}.extent.{d}` parameters).
pub fn binding_signature(inputs: &RealizeInputs<'_>) -> u64 {
    // Every variable-length field is length-prefixed so structurally
    // different binding sets can never serialize to the same byte stream
    // (names may contain arbitrary bytes, and values must not be able to
    // masquerade as name suffixes — a colliding encoding would serve a
    // program constant-folded for the wrong parameter values).
    let mut h = Fnv::new();
    let write_name = |h: &mut Fnv, name: &str| {
        h.write(&(name.len() as u64).to_le_bytes());
        h.write(name.as_bytes());
    };
    for (name, value) in &inputs.params {
        write_name(&mut h, name);
        match value {
            Value::Int(v) => {
                h.write(b"i");
                h.write(&v.to_le_bytes());
            }
            Value::Float(v) => {
                h.write(b"f");
                h.write(&v.to_bits().to_le_bytes());
            }
        }
    }
    for (name, buf) in &inputs.images {
        h.write(b"|");
        write_name(&mut h, name);
        h.write(&[scalar_tag(buf)]);
        h.write(&(buf.extents().len() as u64).to_le_bytes());
        for &e in buf.extents() {
            h.write(&(e as u64).to_le_bytes());
        }
    }
    h.finish()
}

fn scalar_tag(buf: &Buffer) -> u8 {
    use crate::types::ScalarType::*;
    match buf.scalar_type() {
        UInt8 => 0,
        UInt16 => 1,
        UInt32 => 2,
        UInt64 => 3,
        Int32 => 4,
        Float32 => 5,
        Float64 => 6,
    }
}

/// The full cache key of one compiled program.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`fingerprint_pipeline`] of the pipeline.
    pub pipeline: u64,
    /// [`fingerprint_schedule`] of the schedule.
    pub schedule: u64,
    /// Execution backend the program targets.
    pub backend: ExecBackend,
    /// Output extents the loop bounds were synthesized for.
    pub extents: Vec<usize>,
    /// [`binding_signature`] of the inputs.
    pub bindings: u64,
}

impl CacheKey {
    /// Build the key for realizing `pipeline` under `schedule` on `backend`
    /// over `extents` with `inputs`.
    pub fn new(
        pipeline: &Pipeline,
        schedule: &Schedule,
        backend: ExecBackend,
        extents: &[usize],
        inputs: &RealizeInputs<'_>,
    ) -> CacheKey {
        CacheKey {
            pipeline: fingerprint_pipeline(pipeline),
            schedule: fingerprint_schedule(schedule),
            backend,
            extents: extents.to_vec(),
            bindings: binding_signature(inputs),
        }
    }
}

/// Hit/miss/eviction counters of a [`ProgramCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a compiled program.
    pub hits: u64,
    /// Lookups that found nothing (the caller compiles and inserts).
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    key: CacheKey,
    value: V,
    last_used: u64,
}

/// A small least-recently-used cache of compiled programs.
///
/// Capacities are expected to be tens of entries (one per pipeline × schedule
/// × extents in flight), so the store is a flat vector with linear probing —
/// no hashing infrastructure required, and iteration order is deterministic.
#[derive(Debug, Clone)]
pub struct ProgramCache<V> {
    capacity: usize,
    tick: u64,
    entries: Vec<Entry<V>>,
    stats: CacheStats,
}

impl<V: Clone> ProgramCache<V> {
    /// Create a cache holding at most `capacity` programs (minimum 1).
    pub fn new(capacity: usize) -> ProgramCache<V> {
        ProgramCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up `key`, refreshing its recency and counting a hit or miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<V> {
        self.tick += 1;
        match self.entries.iter_mut().find(|e| e.key == *key) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                Some(e.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) the program for `key`, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, key: CacheKey, value: V) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.value = value;
            e.last_used = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache is non-empty when full");
            self.entries.swap_remove(oldest);
            self.stats.evictions += 1;
        }
        self.entries.push(Entry {
            key,
            value,
            last_used: self.tick,
        });
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of cached programs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters accumulated since construction (or the last [`Self::clear`]).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop every entry and reset the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = CacheStats::default();
    }
}

impl<V: Clone> Default for ProgramCache<V> {
    fn default() -> Self {
        ProgramCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

/// Default capacity used by [`crate::realize::Realizer`] and
/// [`crate::compile::CompiledPipeline`].
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Default shard count of a [`ShardedCache`]. Small enough that per-shard
/// LRU capacities stay useful at the default total capacity, large enough
/// that a handful of worker threads rarely contend on one shard lock.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Hash a [`CacheKey`] for shard selection. `CacheKey` deliberately does not
/// implement `Hash` (its fingerprints are already hashes), so the shard
/// router folds every field through the same FNV-1a the fingerprints use.
fn shard_hash(key: &CacheKey) -> u64 {
    let mut h = Fnv::new();
    h.write(&key.pipeline.to_le_bytes());
    h.write(&key.schedule.to_le_bytes());
    h.write(&[key.backend as u8]);
    h.write(&(key.extents.len() as u64).to_le_bytes());
    for &e in &key.extents {
        h.write(&(e as u64).to_le_bytes());
    }
    h.write(&key.bindings.to_le_bytes());
    h.finish()
}

/// One in-flight compilation: the leader publishes the build result here and
/// wakes every coalesced waiter.
#[derive(Debug)]
struct Inflight<V> {
    done: Mutex<Option<Result<V, RealizeError>>>,
    cv: Condvar,
}

impl<V> Inflight<V> {
    fn new() -> Inflight<V> {
        Inflight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

/// A sharded, internally synchronized program cache.
///
/// Lookups hash the [`CacheKey`] to one of `shards` independent
/// [`ProgramCache`] LRUs, each behind its own mutex, so concurrent realize
/// workers touching different keys never contend on a global lock. Each shard
/// keeps its own [`CacheStats`]; [`ShardedCache::stats`] aggregates them (and
/// [`ShardedCache::shard_stats`] exposes the per-shard view for tests and
/// introspection).
///
/// [`ShardedCache::get_or_build`] adds *same-key request coalescing*: when
/// several threads miss on the same key concurrently, exactly one (the
/// leader) runs the build closure — outside every shard lock — while the
/// rest block on a condvar and share the leader's result. The counters
/// reconcile as `misses == builds + coalesced_waits` (every miss either
/// built or waited) and `hits + misses == lookups`.
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Vec<Mutex<ProgramCache<V>>>,
    inflight: Mutex<BTreeMap<CacheKey, Arc<Inflight<V>>>>,
    builds: AtomicU64,
    coalesced: AtomicU64,
}

impl<V: Clone> ShardedCache<V> {
    /// Create a cache with [`DEFAULT_CACHE_SHARDS`] shards holding at most
    /// `capacity` programs in total (each shard gets an equal slice,
    /// minimum 1).
    pub fn new(capacity: usize) -> ShardedCache<V> {
        ShardedCache::with_shards(capacity, DEFAULT_CACHE_SHARDS)
    }

    /// Create a cache with an explicit shard count (minimum 1). The shard
    /// count is clamped to the total capacity so a tiny cache (e.g. capacity
    /// 1) keeps its strict entry bound instead of gaining one slot per shard.
    pub fn with_shards(capacity: usize, shards: usize) -> ShardedCache<V> {
        let shards = shards.max(1).min(capacity.max(1));
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(ProgramCache::new(per_shard)))
                .collect(),
            inflight: Mutex::new(BTreeMap::new()),
            builds: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<ProgramCache<V>> {
        &self.shards[(shard_hash(key) % self.shards.len() as u64) as usize]
    }

    /// Look up `key` in its shard, counting a hit or miss there.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        self.shard(key).lock().unwrap().get(key)
    }

    /// Insert (or replace) the program for `key` in its shard.
    pub fn insert(&self, key: CacheKey, value: V) {
        self.shard(&key).lock().unwrap().insert(key, value);
    }

    /// Look up `key`; on a miss, build it with same-key coalescing: one
    /// concurrent caller per key runs `build` (with no shard lock held) and
    /// inserts the result, the rest wait and share it. Build errors propagate
    /// to the leader and every coalesced waiter alike, and are not cached.
    pub fn get_or_build<F>(&self, key: &CacheKey, build: F) -> Result<V, RealizeError>
    where
        F: FnOnce() -> Result<V, RealizeError>,
    {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        // Missed (counted in the shard). Either become the leader for this
        // key or join an in-flight build as a coalesced waiter.
        let (slot, leader) = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Inflight::new());
                    inflight.insert(key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if leader {
            let result = build();
            self.builds.fetch_add(1, Ordering::Relaxed);
            if let Ok(v) = &result {
                // Insert before retiring the in-flight slot so a fresh caller
                // that misses the slot is guaranteed to hit the shard.
                self.insert(key.clone(), v.clone());
            }
            *slot.done.lock().unwrap() = Some(result.clone());
            slot.cv.notify_all();
            self.inflight.lock().unwrap().remove(key);
            result
        } else {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut done = slot.done.lock().unwrap();
            while done.is_none() {
                done = slot.cv.wait(done).unwrap();
            }
            done.clone().expect("leader published a result")
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of cached programs across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().capacity())
            .sum()
    }

    /// Counters aggregated across every shard.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let s = s.lock().unwrap().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// The per-shard counter view ([`Self::stats`] is its element-wise sum).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().stats())
            .collect()
    }

    /// Builds executed by [`Self::get_or_build`] leaders.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Misses that joined another caller's in-flight build instead of
    /// compiling. Reconciles as `misses == builds + coalesced_waits` when
    /// every miss went through [`Self::get_or_build`].
    pub fn coalesced_waits(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Drop every entry and reset all counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().clear();
        }
        self.builds.store(0, Ordering::Relaxed);
        self.coalesced.store(0, Ordering::Relaxed);
    }
}

impl<V: Clone> Default for ShardedCache<V> {
    fn default() -> Self {
        ShardedCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            pipeline: n,
            schedule: 0,
            backend: ExecBackend::Lowered,
            extents: vec![8, 8],
            bindings: 0,
        }
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c: ProgramCache<u32> = ProgramCache::new(4);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), 10);
        assert_eq!(c.get(&key(1)), Some(10));
        assert_eq!(c.get(&key(2)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut c: ProgramCache<u32> = ProgramCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        // Touch key 1 so key 2 is the LRU.
        assert_eq!(c.get(&key(1)), Some(1));
        c.insert(key(3), 3);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.get(&key(2)), None, "LRU entry must be the one evicted");
        assert_eq!(c.get(&key(1)), Some(1));
        assert_eq!(c.get(&key(3)), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c: ProgramCache<u32> = ProgramCache::new(1);
        c.insert(key(1), 1);
        c.insert(key(1), 9);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&key(1)), Some(9));
    }

    #[test]
    fn schedule_fingerprints_separate_knobs() {
        let a = fingerprint_schedule(&Schedule::naive());
        let b = fingerprint_schedule(&Schedule::stencil_default());
        let c = fingerprint_schedule(&Schedule::naive().with_vector_width(4));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fingerprint_schedule(&Schedule::naive()));
    }

    #[test]
    fn binding_signature_resists_boundary_shifts() {
        // Name/value boundaries are length-prefixed: a param whose name
        // absorbs the next entry's leading bytes must not encode identically.
        let a = RealizeInputs::new()
            .with_param("x", Value::Int(0x69))
            .with_param("z", Value::Int(0));
        let b = RealizeInputs::new()
            .with_param("xi", Value::Int(0x69))
            .with_param("z", Value::Int(0));
        assert_ne!(binding_signature(&a), binding_signature(&b));
    }

    #[test]
    fn sharded_stats_aggregate_across_shards() {
        // Spread keys over the shards, then verify the aggregated counters
        // equal the element-wise sum of the per-shard counters and reflect
        // every lookup exactly once.
        let c: ShardedCache<u32> = ShardedCache::with_shards(32, 4);
        for n in 0..16u64 {
            assert_eq!(c.get(&key(n)), None);
            c.insert(key(n), n as u32);
        }
        for n in 0..16u64 {
            assert_eq!(c.get(&key(n)), Some(n as u32));
        }
        let per_shard = c.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert!(
            per_shard.iter().filter(|s| s.misses > 0).count() > 1,
            "keys should spread across more than one shard: {per_shard:?}"
        );
        let total = c.stats();
        assert_eq!(total.hits, per_shard.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(
            total.misses,
            per_shard.iter().map(|s| s.misses).sum::<u64>()
        );
        assert_eq!((total.hits, total.misses), (16, 16));
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn get_or_build_counts_one_build_per_cold_key() {
        let c: ShardedCache<u32> = ShardedCache::with_shards(8, 2);
        let v = c.get_or_build(&key(1), || Ok(7)).unwrap();
        assert_eq!(v, 7);
        // Warm lookups never rebuild.
        let v = c
            .get_or_build(&key(1), || panic!("must not rebuild a cached key"))
            .unwrap();
        assert_eq!(v, 7);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(c.builds(), 1);
        assert_eq!(c.coalesced_waits(), 0);
        assert_eq!(s.misses, c.builds() + c.coalesced_waits());
    }

    #[test]
    fn get_or_build_errors_propagate_and_are_not_cached() {
        let c: ShardedCache<u32> = ShardedCache::new(8);
        let err = c
            .get_or_build(&key(1), || Err(RealizeError::MissingInput("in".into())))
            .unwrap_err();
        assert_eq!(err, RealizeError::MissingInput("in".into()));
        // The failed build left nothing behind; the next call builds again.
        assert_eq!(c.get_or_build(&key(1), || Ok(5)).unwrap(), 5);
        assert_eq!(c.builds(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_same_key_misses_coalesce_to_one_build() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Barrier;
        const THREADS: u64 = 8;
        let c: ShardedCache<u32> = ShardedCache::new(8);
        let built = AtomicU64::new(0);
        let barrier = Barrier::new(THREADS as usize);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    barrier.wait();
                    let v = c
                        .get_or_build(&key(42), || {
                            built.fetch_add(1, Ordering::Relaxed);
                            // Hold the build open long enough that the other
                            // threads' misses overlap it.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(11)
                        })
                        .unwrap();
                    assert_eq!(v, 11);
                });
            }
        });
        let s = c.stats();
        assert_eq!(
            s.misses,
            c.builds() + c.coalesced_waits(),
            "every miss either built or coalesced: {s:?}"
        );
        assert_eq!(s.hits + s.misses, THREADS, "one lookup per thread");
        // All threads synchronized on the barrier, so at least one of them
        // must have overlapped the 20ms build; typically all but one do.
        assert!(
            c.coalesced_waits() >= 1,
            "overlapping misses should coalesce (builds={}, waits={})",
            c.builds(),
            c.coalesced_waits()
        );
        assert_eq!(
            built.load(Ordering::Relaxed),
            c.builds(),
            "builder invocations match the builds counter"
        );
    }

    #[test]
    fn binding_signature_depends_on_params_and_image_shape() {
        use crate::buffer::Buffer;
        use crate::types::ScalarType;
        let img_a = Buffer::new(ScalarType::UInt8, &[8, 8]);
        let img_b = Buffer::new(ScalarType::UInt8, &[9, 8]);
        let base = RealizeInputs::new().with_image("in", &img_a);
        let shifted = RealizeInputs::new().with_image("in", &img_b);
        let with_param = RealizeInputs::new()
            .with_image("in", &img_a)
            .with_param("k", Value::Int(3));
        let sig = binding_signature(&base);
        assert_ne!(sig, binding_signature(&shifted), "extents are keyed");
        assert_ne!(sig, binding_signature(&with_param), "params are keyed");
        assert_eq!(sig, binding_signature(&base.clone()));
    }
}
