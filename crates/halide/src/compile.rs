//! Compile-once/run-many execution: [`CompiledPipeline`] and the prepared
//! programs behind it.
//!
//! [`Pipeline::compile`] splits realization into two phases:
//!
//! * **Compile** (once per pipeline × schedule, then once per output extents ×
//!   input-binding signature on first use): structural validation,
//!   `compute_at` planning, producer sizing via bounds inference,
//!   dependency-ordering of materialized stages, lowering to loop-nest IR,
//!   simplification and lane-program construction. The result is a
//!   [`PreparedProgram`] held in the compiled pipeline's keyed
//!   [`ProgramCache`].
//! * **Run** (every call): bind buffers, execute the prepared stages, return
//!   the output buffer. No planning or lowering happens on a warm cache —
//!   verified by the cache's hit/miss counters.
//!
//! The split is what lets lifted kernels serve realizes at request rate: the
//! paper's pipeline lifts a binary *once* and then runs the recovered Halide
//! code in production, so the per-call path must not re-do compiler work.
//! [`crate::realize::Realizer`] remains as a thin compatibility shim routing
//! through the same machinery.
//!
//! Programs are cached per input-binding signature because compilation
//! constant-folds scalar parameters into lane programs and sizes producer
//! regions from image extents; see [`crate::cache`] for the key structure.

use crate::bounds::{accumulate_func_bounds, Interval};
use crate::buffer::{write_scalar, Buffer};
use crate::cache::{binding_signature, fingerprint_pipeline, fingerprint_schedule};
use crate::cache::{CacheKey, CacheStats, ShardedCache, DEFAULT_CACHE_CAPACITY};
use crate::eval::{eval_expr, validate_bindings, EvalSources};
use crate::exec::{self, ExecPlan, FusedStoreCounts, StoreProfile};
use crate::expr::Expr;
use crate::func::{Func, Pipeline, UpdateDef};
use crate::lower::{
    inline_except, lower_fused_group, lower_update, plan_compute_at, ComputeAtOutcome,
};
use crate::realize::{ExecBackend, RealizeError, RealizeInputs};
use crate::schedule::Schedule;
use crate::stmt::Stmt;
use crate::target::Target;
use crate::types::{ScalarType, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Options of [`Pipeline::compile`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// The execution backend compiled programs target.
    pub backend: ExecBackend,
    /// Capacity of the compiled pipeline's internal [`ProgramCache`]
    /// (one entry per output-extents × binding-signature combination).
    pub cache_capacity: usize,
    /// The backend-selection [`Target`] this pipeline executes under —
    /// execution tier pin plus the ISA features its fused kernels may use.
    /// `None` resolves [`Target::current`] (process-wide override, else the
    /// environment pins via [`Target::from_env`]) **once at compile time**;
    /// the resolved value is stored on the [`CompiledPipeline`] and every
    /// dispatch site reads it. Every target produces bit-identical buffers —
    /// differential tests use this to pin tiers and ISAs per pipeline
    /// without touching global state.
    pub target: Option<Target>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            backend: ExecBackend::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            target: None,
        }
    }
}

/// How a prepared program executes its update (reduction) definitions: how
/// many run as lowered guarded nests inside the compiled engine versus
/// through the reduction interpreter (`run_update`, the differential oracle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateCounts {
    /// Update definitions lowered into the stage's compiled plan.
    pub compiled: usize,
    /// Update definitions executed by the reduction interpreter.
    pub interpreted: usize,
}

/// Compile-time profile of one materialized stage of a prepared program: its
/// buffer geometry plus the per-store profiles of its lowered plan. See
/// [`PipelineProfile`].
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// The stage's func name.
    pub name: String,
    /// The extents the stage materializes over (the output stage's are the
    /// realize extents; producers are sized by bounds inference).
    pub extents: Vec<usize>,
    /// Whether the stage compiled onto the lowered backend (loop-nest IR with
    /// lane programs); interpreted stages evaluate per element through the
    /// shared evaluator and have no store profiles.
    pub lowered: bool,
    /// Per-store profiles of the lowered plan (empty when interpreted).
    pub stores: Vec<StoreProfile>,
    /// Update definitions this stage runs through the reduction interpreter
    /// instead of lowered guarded nests.
    pub interpreted_updates: usize,
}

impl StageProfile {
    /// Number of output cells the stage computes (product of its extents).
    pub fn cells(&self) -> u64 {
        self.extents
            .iter()
            .map(|&e| e as u64)
            .product::<u64>()
            .max(1)
    }
}

/// Everything a cost model can learn about a prepared program without running
/// it: the materialized stages (producers in dependency order, output last),
/// each with its sized extents and per-store execution-tier profiles.
///
/// Obtained from [`CompiledPipeline::dry_run`]. The profile reflects
/// compile-time kernel *selection*; whether a fused kernel actually executes
/// is gated by the compiled [`Target`]'s tier, and the lane ISA each fused
/// store will run on is reported per store
/// ([`StoreProfile::selected_isa`]).
#[derive(Debug, Clone)]
pub struct PipelineProfile {
    /// Materialized stages in execution order; the last entry is always the
    /// output stage.
    pub stages: Vec<StageProfile>,
    /// How the program executes its update definitions.
    pub updates: UpdateCounts,
    /// Fused multi-output loop nests in the program (consecutive stages the
    /// `fuse_outputs` directive collapsed into one shared nest).
    pub multi_output_nests: usize,
    /// Total stages carried by those fused nests (0 when nothing fused; at
    /// least 2 per nest otherwise).
    pub fused_outputs: usize,
    /// Window extents (rows) of every sliding-window `compute_at`
    /// allocation; a window of extent `E` re-uses `E - 1` rows per warm
    /// attach iteration.
    pub sliding_window_extents: Vec<usize>,
}

impl PipelineProfile {
    /// The output stage's profile.
    pub fn output(&self) -> &StageProfile {
        self.stages.last().expect("the output stage always exists")
    }

    /// Cells of the output buffer.
    pub fn output_cells(&self) -> u64 {
        self.output().cells()
    }

    /// Total cells materialized into producer buffers beyond the output —
    /// the working set the schedule trades against locality.
    pub fn producer_cells(&self) -> u64 {
        self.stages[..self.stages.len() - 1]
            .iter()
            .map(StageProfile::cells)
            .sum()
    }

    /// Per-lane-family fused-kernel counts summed over every stage.
    pub fn fused_store_counts(&self) -> FusedStoreCounts {
        let mut counts = FusedStoreCounts::default();
        for p in self.stages.iter().flat_map(|s| s.stores.iter()) {
            match p.fused {
                Some(exec::LaneFamily::I32) => counts.lanes_i32 += 1,
                Some(exec::LaneFamily::I64) => counts.lanes_i64 += 1,
                Some(exec::LaneFamily::F32) => counts.lanes_f32 += 1,
                Some(exec::LaneFamily::F64) => counts.lanes_f64 += 1,
                None => {}
            }
        }
        counts
    }
}

/// A pipeline compiled against a fixed schedule and backend.
///
/// Obtained from [`Pipeline::compile`]; [`CompiledPipeline::run`] executes
/// with only per-call work once the internal program cache is warm. The
/// pipeline and schedule are snapshotted at compile time, so later mutation
/// of the originals cannot desynchronize cached programs.
#[derive(Debug)]
pub struct CompiledPipeline {
    pipeline: Pipeline,
    schedule: Schedule,
    backend: ExecBackend,
    target: Target,
    pipeline_fp: u64,
    schedule_fp: u64,
    cache: ShardedCache<Arc<PreparedProgram>>,
}

// The serving layer shares one `CompiledPipeline` (and the plans inside it)
// across worker threads; assert the whole stack is thread-shareable by
// construction so a non-Sync field can never sneak in unnoticed.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledPipeline>();
    assert_send_sync::<PreparedProgram>();
};

impl Pipeline {
    /// Compile this pipeline under `schedule` for repeated realization.
    ///
    /// Performs the extents-independent work up front (structural validation
    /// of every func reachable from the output); the extents- and
    /// binding-dependent work (planning, sizing, lowering, lane programs)
    /// happens on the first [`CompiledPipeline::run`] per key and is cached.
    ///
    /// # Errors
    /// Returns [`RealizeError::UndefinedFunc`] if a reachable func reference
    /// has no definition.
    pub fn compile(
        &self,
        schedule: &Schedule,
        options: &CompileOptions,
    ) -> Result<CompiledPipeline, RealizeError> {
        validate_structure(self)?;
        Ok(CompiledPipeline {
            pipeline_fp: fingerprint_pipeline(self),
            schedule_fp: fingerprint_schedule(schedule),
            pipeline: self.clone(),
            schedule: schedule.clone(),
            backend: options.backend,
            target: options.target.unwrap_or_else(Target::current),
            cache: ShardedCache::new(options.cache_capacity),
        })
    }
}

impl CompiledPipeline {
    /// Realize the compiled pipeline over `output_extents` with `inputs`.
    ///
    /// The first call per (extents, binding signature) builds and caches the
    /// prepared program; warm calls only execute it.
    ///
    /// # Errors
    /// Returns an error if inputs or parameters are missing, a referenced
    /// func is undefined, or the extents do not match the output
    /// dimensionality.
    pub fn run(
        &self,
        inputs: &RealizeInputs<'_>,
        output_extents: &[usize],
    ) -> Result<Buffer, RealizeError> {
        let key = CacheKey {
            pipeline: self.pipeline_fp,
            schedule: self.schedule_fp,
            backend: self.backend,
            extents: output_extents.to_vec(),
            bindings: binding_signature(inputs),
        };
        realize_with_cache(
            &self.pipeline,
            &self.schedule,
            self.backend,
            self.target,
            output_extents,
            inputs,
            key,
            &self.cache,
        )
    }

    /// The schedule the pipeline was compiled under.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The execution backend programs target.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// The resolved backend-selection [`Target`] this pipeline executes
    /// under — [`CompileOptions::target`], or the [`Target::current`]
    /// snapshot taken at compile time.
    pub fn target(&self) -> Target {
        self.target
    }

    /// The compiled pipeline (the snapshot taken at compile time).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Per-lane-family fused-kernel counts of the prepared program for
    /// `output_extents` × `inputs` (see [`FusedStoreCounts`]): how many of
    /// the program's stores *compiled* a tier-1 kernel, and on which lane
    /// family (`[i32; W]`, `[i64; W/2]` or `[f32; W]`). Builds and caches
    /// the program if this key has not run yet — the kernel selection is
    /// part of the cached plan, so a subsequent [`CompiledPipeline::run`]
    /// executes the same plan. Note the counts reflect compile-time kernel
    /// *selection*: whether a counted kernel actually executes is gated per
    /// run by the compiled [`Target`]'s tier (a `Tier::Scalar`-pinned
    /// pipeline reports its kernels but runs the per-op tier).
    ///
    /// # Errors
    /// Returns an error if inputs or parameters are missing or the extents
    /// do not match the output dimensionality.
    pub fn fused_store_counts(
        &self,
        inputs: &RealizeInputs<'_>,
        output_extents: &[usize],
    ) -> Result<FusedStoreCounts, RealizeError> {
        Ok(self.program(inputs, output_extents)?.fused_store_counts())
    }

    /// How the prepared program for `output_extents` × `inputs` executes its
    /// update definitions (see [`UpdateCounts`]): `interpreted == 0` is the
    /// proof that no reduction runs through `run_update` on the hot path.
    /// Builds and caches the program if this key has not run yet. On the
    /// interpreter backend every update is, by definition, interpreted.
    ///
    /// # Errors
    /// Returns an error if inputs or parameters are missing or the extents
    /// do not match the output dimensionality.
    pub fn update_counts(
        &self,
        inputs: &RealizeInputs<'_>,
        output_extents: &[usize],
    ) -> Result<UpdateCounts, RealizeError> {
        Ok(self.program(inputs, output_extents)?.update_counts())
    }

    /// Number of fused multi-output nests in the prepared program for
    /// `output_extents` × `inputs`: consecutive materialized stages the
    /// `fuse_outputs` directive collapsed into one shared loop nest. Builds
    /// and caches the program if this key has not run yet. `>= 1` proves a
    /// `compose_after` chain stopped re-walking the image per stage.
    ///
    /// # Errors
    /// Returns an error if inputs or parameters are missing or the extents
    /// do not match the output dimensionality.
    pub fn multi_output_nests(
        &self,
        inputs: &RealizeInputs<'_>,
        output_extents: &[usize],
    ) -> Result<usize, RealizeError> {
        Ok(self.program(inputs, output_extents)?.multi_output_nests())
    }

    /// Number of sliding-window `compute_at` allocations in the prepared
    /// program for `output_extents` × `inputs` — the rolling producer
    /// windows the locality tier reuses across attach iterations (the
    /// run-time reuse itself is counted by
    /// [`exec::window_rows_reused`]). Builds and caches the program if this
    /// key has not run yet.
    ///
    /// # Errors
    /// Returns an error if inputs or parameters are missing or the extents
    /// do not match the output dimensionality.
    pub fn sliding_windows(
        &self,
        inputs: &RealizeInputs<'_>,
        output_extents: &[usize],
    ) -> Result<usize, RealizeError> {
        Ok(self.program(inputs, output_extents)?.sliding_windows())
    }

    /// Build (or fetch) the prepared program for `output_extents` × `inputs`
    /// and return its compile-time profile — everything the schedule search's
    /// cost model scores, with *no execution*: per-stage buffer geometry and
    /// per-store tier selection, tap counts, halo radii and reduction
    /// admissibility (see [`PipelineProfile`]). The program lands in the same
    /// keyed cache a subsequent [`CompiledPipeline::run`] uses, so a dry-run
    /// followed by a run compiles exactly once.
    ///
    /// # Errors
    /// Returns an error if inputs or parameters are missing or the extents
    /// do not match the output dimensionality.
    pub fn dry_run(
        &self,
        inputs: &RealizeInputs<'_>,
        output_extents: &[usize],
    ) -> Result<PipelineProfile, RealizeError> {
        Ok(self.program(inputs, output_extents)?.profile(self.target))
    }

    /// Fetch (or build and cache) the prepared program for one (extents,
    /// binding signature) key — the single place the introspection accessors
    /// construct their cache key, so the key shape cannot drift between them.
    fn program(
        &self,
        inputs: &RealizeInputs<'_>,
        output_extents: &[usize],
    ) -> Result<Arc<PreparedProgram>, RealizeError> {
        let key = CacheKey {
            pipeline: self.pipeline_fp,
            schedule: self.schedule_fp,
            backend: self.backend,
            extents: output_extents.to_vec(),
            bindings: binding_signature(inputs),
        };
        program_for(
            &self.pipeline,
            &self.schedule,
            self.backend,
            output_extents,
            inputs,
            key,
            &self.cache,
        )
    }

    /// Hit/miss/eviction counters of the internal program cache, aggregated
    /// across its shards. A warm run shows up as a hit — the proof that it
    /// did no planning or lowering.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The per-shard counter view behind [`Self::cache_stats`].
    pub fn cache_shard_stats(&self) -> Vec<CacheStats> {
        self.cache.shard_stats()
    }

    /// Programs actually compiled by cache misses. With
    /// [`Self::coalesced_compiles`] this reconciles against the aggregated
    /// miss counter: `misses == compiles + coalesced_compiles`.
    pub fn compiles(&self) -> u64 {
        self.cache.builds()
    }

    /// Cache misses that joined a concurrent identical compilation (same
    /// pipeline fingerprint × extents × binding signature) instead of
    /// compiling again — the request-coalescing counter.
    pub fn coalesced_compiles(&self) -> u64 {
        self.cache.coalesced_waits()
    }

    /// Number of cached prepared programs.
    pub fn cached_programs(&self) -> usize {
        self.cache.len()
    }

    /// Structural fingerprint of the compiled pipeline
    /// ([`crate::cache::fingerprint_pipeline`]). Stable across processes;
    /// the serving layer keys per-pipeline admission quotas on it.
    pub fn pipeline_fingerprint(&self) -> u64 {
        self.pipeline_fp
    }
}

/// Shared realize path of [`CompiledPipeline::run`] and the
/// [`crate::realize::Realizer`] shim: look `key` up in `cache`, build the
/// prepared program on a miss, execute it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn realize_with_cache(
    pipeline: &Pipeline,
    schedule: &Schedule,
    backend: ExecBackend,
    target: Target,
    output_extents: &[usize],
    inputs: &RealizeInputs<'_>,
    key: CacheKey,
    cache: &ShardedCache<Arc<PreparedProgram>>,
) -> Result<Buffer, RealizeError> {
    let program = program_for(
        pipeline,
        schedule,
        backend,
        output_extents,
        inputs,
        key,
        cache,
    )?;
    program.execute(inputs, target)
}

/// Fetch (or build and cache) the prepared program for one cache key: the
/// compile half of [`realize_with_cache`], shared with introspection APIs
/// like [`CompiledPipeline::fused_store_counts`].
fn program_for(
    pipeline: &Pipeline,
    schedule: &Schedule,
    backend: ExecBackend,
    output_extents: &[usize],
    inputs: &RealizeInputs<'_>,
    key: CacheKey,
    cache: &ShardedCache<Arc<PreparedProgram>>,
) -> Result<Arc<PreparedProgram>, RealizeError> {
    // Dimension mismatches are cheap to detect and must not poison the cache.
    let output = pipeline.output_func();
    if output.dims() != output_extents.len() {
        return Err(RealizeError::DimensionMismatch {
            expected: output.dims(),
            got: output_extents.len(),
        });
    }
    // The build runs with no shard lock held, so compilation never serializes
    // concurrent realizes of *other* programs; concurrent misses on this same
    // key coalesce into one build and share the Arc.
    cache.get_or_build(&key, || {
        Ok(Arc::new(PreparedProgram::build(
            pipeline,
            schedule,
            backend,
            output_extents,
            inputs,
        )?))
    })
}

/// Extents-independent validation: every func reference reachable from the
/// output must resolve to a definition.
fn validate_structure(pipeline: &Pipeline) -> Result<(), RealizeError> {
    let mut pending = vec![pipeline.output.clone()];
    let mut seen: BTreeSet<String> = BTreeSet::new();
    while let Some(name) = pending.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        let func = pipeline
            .funcs
            .get(&name)
            .ok_or_else(|| RealizeError::UndefinedFunc(name.clone()))?;
        let mut refs: BTreeSet<String> = BTreeSet::new();
        if let Some(e) = &func.pure_def {
            refs.extend(e.referenced_funcs());
        }
        for u in &func.updates {
            for e in u.lhs.iter().chain(std::iter::once(&u.value)) {
                refs.extend(e.referenced_funcs());
            }
        }
        refs.remove(&name); // self-references are reduction reads
        pending.extend(refs);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Prepared programs
// ---------------------------------------------------------------------------

/// A fully compiled realization plan for one (pipeline, schedule, backend,
/// extents, binding signature) key: the materialized stages in dependency
/// order (the last unit produces the output), each carrying its pre-built
/// execution artifact. Under [`Schedule::fuse_outputs`] consecutive
/// compatible stages collapse into one [`Unit::Fused`] multi-output nest.
/// Running a prepared program does no planning, sizing, lowering or
/// lane-program compilation.
#[derive(Debug)]
pub struct PreparedProgram {
    /// Execution units in dependency order; the last unit always produces
    /// the pipeline output (as a single stage, or as the last member of a
    /// fused nest).
    units: Vec<Unit>,
    /// The parameter environment (scalar params + injected image extents)
    /// captured at build time. Valid for every run served by this program:
    /// the cache key's binding signature pins all param values and image
    /// extents, so recomputing the map per warm call would only burn
    /// allocations on the request-rate path.
    params: BTreeMap<String, Value>,
}

/// One materialized func: its buffer geometry plus the compiled pure stage
/// and its update definitions. On the lowered backend the update nests are
/// lowered *into* the stage's [`ExecPlan`] (after the pure init) whenever
/// their shape admits it, so the whole stage — init and reductions — runs
/// through the compiled engine; `updates` then only serves as the retained
/// definition (and the interpreter fallback when lowering declined).
#[derive(Debug)]
struct Stage {
    name: String,
    vars: Vec<String>,
    ty: ScalarType,
    extents: Vec<usize>,
    pure_exec: Option<PureExec>,
    updates: Vec<UpdateDef>,
    /// Whether `pure_exec`'s lowered plan already contains every update
    /// definition (guarded stores); when false the updates run through
    /// [`run_update`], the reduction interpreter that doubles as the
    /// differential oracle.
    updates_compiled: bool,
}

/// One executable step of a prepared program.
#[derive(Debug)]
enum Unit {
    /// An ordinary materialized stage: one func, one buffer, one plan.
    Single(Stage),
    /// Several consecutive materialized stages compiled into ONE shared loop
    /// nest ([`lower_fused_group`]): a single walk of the shared outer loop
    /// produces every member's buffer.
    Fused(FusedStage),
}

/// A multi-output fused nest: the members (in nest order) and the one plan
/// producing all of them. Admissibility guarantees every member is pure, so
/// fused stages never carry update definitions.
#[derive(Debug)]
struct FusedStage {
    members: Vec<FusedMember>,
    plan: Box<ExecPlan>,
}

/// Buffer geometry of one member of a fused nest; output buffers bind to
/// members in order at run time.
#[derive(Debug)]
struct FusedMember {
    name: String,
    ty: ScalarType,
    extents: Vec<usize>,
}

/// The compiled artifact of a pure definition.
#[derive(Debug)]
enum PureExec {
    /// Interpreter backend: the fully inlined expression, evaluated per
    /// element by the shared [`crate::eval`] evaluator.
    Interpreted {
        expr: Expr,
        var_slots: BTreeMap<String, usize>,
        threads: usize,
    },
    /// Lowered backend: loop-nest IR with lane programs compiled per store
    /// (boxed: plans dwarf the interpreted variant).
    Lowered(Box<ExecPlan>),
}

/// The funcs that must be materialized into buffers regardless of backend:
/// `compute_root` plus every func with reductions.
fn base_roots(pipeline: &Pipeline, schedule: &Schedule) -> BTreeSet<String> {
    pipeline
        .funcs
        .iter()
        .filter(|(n, f)| {
            **n != pipeline.output && (schedule.compute_root.contains(*n) || !f.updates.is_empty())
        })
        .map(|(n, _)| n.clone())
        .collect()
}

/// The funcs named by `compute_at` that could be attached (pure, existing,
/// not already roots). Used for sizing so both backends materialize shared
/// producers over identical extents.
fn compute_at_funcs(
    pipeline: &Pipeline,
    schedule: &Schedule,
    base: &BTreeSet<String>,
) -> BTreeSet<String> {
    schedule
        .compute_at
        .keys()
        .filter(|n| pipeline.funcs.contains_key(*n) && **n != pipeline.output && !base.contains(*n))
        .cloned()
        .collect()
}

impl PreparedProgram {
    /// Compile the full realization plan for one cache key.
    pub(crate) fn build(
        pipeline: &Pipeline,
        schedule: &Schedule,
        backend: ExecBackend,
        output_extents: &[usize],
        inputs: &RealizeInputs<'_>,
    ) -> Result<PreparedProgram, RealizeError> {
        let output = pipeline.output_func();
        if output.dims() != output_extents.len() {
            return Err(RealizeError::DimensionMismatch {
                expected: output.dims(),
                got: output_extents.len(),
            });
        }
        let params = inputs.params_with_image_extents();

        let base = base_roots(pipeline, schedule);
        let at_funcs = compute_at_funcs(pipeline, schedule, &base);

        // Decide compute_at placements. The interpreter backend realizes
        // compute_at producers as compute_root (value-identical); the lowered
        // backend keeps affine placements and degrades the rest.
        let outcome = match backend {
            ExecBackend::Interpret => ComputeAtOutcome {
                plans: Vec::new(),
                demoted: at_funcs.clone(),
            },
            ExecBackend::Lowered => {
                plan_compute_at(pipeline, schedule, output_extents, &params, &base)?
            }
        };

        // Funcs materialized into standalone buffers before the output runs.
        let mut materialize: BTreeSet<String> = base.clone();
        materialize.extend(outcome.demoted.iter().cloned());

        // Sizing keep-set is backend-independent so shared producers get
        // identical extents (and therefore identical boundary clamping).
        let mut sizing_keep = base.clone();
        sizing_keep.extend(at_funcs.iter().cloned());

        // Materialized producers in dependency order with their sized
        // extents; the unit-building loop below turns them into stages.
        let mut producer_seq: Vec<(String, Vec<usize>)> = Vec::new();
        if !materialize.is_empty() {
            // Compute the bounds each kept func is accessed over — from the
            // output's (inlined) expression, then transitively through every
            // kept producer's own definition, so producers referenced only by
            // other producers (e.g. a compute_root feeding a compute_at func)
            // are sized by what actually reads them.
            let inlined = match &output.pure_def {
                Some(e) => inline_except(pipeline, e, &sizing_keep)?,
                None => Expr::int(0),
            };
            let mut var_bounds = BTreeMap::new();
            for (d, v) in output.vars.iter().enumerate() {
                var_bounds.insert(
                    v.clone(),
                    Interval {
                        min: 0,
                        max: output_extents[d] as i64 - 1,
                    },
                );
            }
            let mut required: BTreeMap<String, Vec<Interval>> = BTreeMap::new();
            accumulate_func_bounds(&inlined, &var_bounds, &params, &mut required);
            // Propagate requirements through kept producers to a fixed point
            // (bounded: pipelines are acyclic, so one pass per chained
            // producer suffices).
            for _ in 0..sizing_keep.len() + 1 {
                let mut grown = false;
                for name in &sizing_keep {
                    let func = match pipeline.funcs.get(name) {
                        Some(f) => f,
                        None => continue,
                    };
                    let (Some(body), Some(region)) = (&func.pure_def, required.get(name)) else {
                        continue;
                    };
                    let body = inline_except(pipeline, body, &sizing_keep)?;
                    let mut bounds = BTreeMap::new();
                    for (d, v) in func.vars.iter().enumerate() {
                        let max = region.get(d).map(|i| i.max).unwrap_or(0).max(0);
                        bounds.insert(v.clone(), Interval { min: 0, max });
                    }
                    let before = required.clone();
                    accumulate_func_bounds(&body, &bounds, &params, &mut required);
                    if required != before {
                        grown = true;
                    }
                }
                if !grown {
                    break;
                }
            }
            // Materialize in dependency order: a producer whose realization
            // reads another materialized func (through its pure or update
            // definitions) must come after it.
            let deps_of = |name: &String| -> Result<BTreeSet<String>, RealizeError> {
                let func = &pipeline.funcs[name];
                let mut refs = BTreeSet::new();
                if let Some(body) = &func.pure_def {
                    refs.extend(inline_except(pipeline, body, &base)?.referenced_funcs());
                }
                for u in &func.updates {
                    for e in u.lhs.iter().chain(std::iter::once(&u.value)) {
                        refs.extend(inline_except(pipeline, e, &base)?.referenced_funcs());
                    }
                }
                refs.remove(name);
                refs.retain(|r| materialize.contains(r));
                Ok(refs)
            };
            let mut pending: Vec<String> = materialize.iter().cloned().collect();
            let mut ordered: Vec<String> = Vec::new();
            while !pending.is_empty() {
                let done: BTreeSet<String> = ordered.iter().cloned().collect();
                let mut picked = None;
                for (i, n) in pending.iter().enumerate() {
                    if deps_of(n)?.iter().all(|d| done.contains(d)) {
                        picked = Some(i);
                        break;
                    }
                }
                // A cycle (which well-formed pipelines cannot have) falls back
                // to name order so compilation still terminates.
                let i = picked.unwrap_or(0);
                ordered.push(pending.remove(i));
            }
            for name in &ordered {
                let extents: Vec<usize> = match required.get(name) {
                    Some(ivals) => ivals
                        .iter()
                        .map(|i| i.max.saturating_add(1).max(1) as usize)
                        .collect(),
                    None => output_extents.to_vec(),
                };
                producer_seq.push((name.clone(), extents));
            }
        }

        // The full unit sequence: producers in dependency order, the output
        // last. Under `fuse_outputs` consecutive compatible entries collapse
        // into one multi-output nest walking the shared outer loop once.
        let mut seq = producer_seq;
        seq.push((pipeline.output.clone(), output_extents.to_vec()));
        // The output can join a fused group only when nothing attaches inside
        // its own nest — `compute_at` plans are lowered by the single-stage
        // path.
        let output_can_fuse = outcome.plans.is_empty();
        let fusion_on = backend == ExecBackend::Lowered
            && schedule.fuse_outputs
            && schedule.tile.is_none()
            && seq.len() >= 2;
        let image_decls: Vec<(String, ScalarType)> = inputs
            .images
            .iter()
            .map(|(n, b)| (n.clone(), b.scalar_type()))
            .collect();

        let mut units: Vec<Unit> = Vec::new();
        let mut roots_so_far: BTreeSet<String> = BTreeSet::new();
        let mut i = 0;
        while i < seq.len() {
            let mut fused: Option<(usize, FusedStage)> = None;
            if fusion_on {
                // Take the longest admissible group starting at `i`,
                // shrinking from the end; inadmissible prefixes fall through
                // to the single-stage path one entry at a time.
                let mut j = seq.len();
                while j >= i + 2 {
                    if j == seq.len() && !output_can_fuse {
                        j -= 1;
                        continue;
                    }
                    let members = &seq[i..j];
                    if let Some(stmt) =
                        lower_fused_group(pipeline, schedule, members, &materialize, &params)?
                    {
                        let outputs: Vec<(String, ScalarType)> = members
                            .iter()
                            .map(|(n, _)| (n.clone(), pipeline.funcs[n].ty))
                            .collect();
                        let root_decls: Vec<(String, ScalarType)> = roots_so_far
                            .iter()
                            .map(|n| (n.clone(), pipeline.funcs[n].ty))
                            .collect();
                        // A prepare failure (e.g. a member reading a root the
                        // dependency order placed later) falls back to smaller
                        // groups and ultimately to the single-stage path,
                        // which reports any genuine error with the standard
                        // error kinds.
                        if let Ok(plan) =
                            exec::prepare_multi(stmt, &outputs, &image_decls, &root_decls, &params)
                        {
                            let members = members
                                .iter()
                                .map(|(n, e)| FusedMember {
                                    name: n.clone(),
                                    ty: pipeline.funcs[n].ty,
                                    extents: e.clone(),
                                })
                                .collect();
                            fused = Some((
                                j,
                                FusedStage {
                                    members,
                                    plan: Box::new(plan),
                                },
                            ));
                            break;
                        }
                    }
                    j -= 1;
                }
            }
            if let Some((j, f)) = fused {
                for m in &f.members {
                    roots_so_far.insert(m.name.clone());
                }
                units.push(Unit::Fused(f));
                i = j;
            } else {
                let (name, extents) = &seq[i];
                let stage = if i + 1 == seq.len() {
                    Stage::build(
                        pipeline,
                        schedule,
                        backend,
                        extents,
                        inputs,
                        &params,
                        &materialize,
                        &outcome,
                        &roots_so_far,
                    )?
                } else {
                    let mut sub_pipeline = pipeline.clone();
                    sub_pipeline.output = name.clone();
                    Stage::build(
                        &sub_pipeline,
                        schedule,
                        backend,
                        extents,
                        inputs,
                        &params,
                        &base,
                        &ComputeAtOutcome::default(),
                        &roots_so_far,
                    )?
                };
                roots_so_far.insert(name.clone());
                units.push(Unit::Single(stage));
                i += 1;
            }
        }
        Ok(PreparedProgram { units, params })
    }

    /// How many update definitions across all stages execute through the
    /// compiled engine (lowered guarded nests inside the stage plan) versus
    /// the reduction interpreter.
    pub(crate) fn update_counts(&self) -> UpdateCounts {
        let mut counts = UpdateCounts::default();
        for unit in &self.units {
            // Fused members are pure by admissibility: no updates to count.
            if let Unit::Single(stage) = unit {
                if stage.updates_compiled {
                    counts.compiled += stage.updates.len();
                } else {
                    counts.interpreted += stage.updates.len();
                }
            }
        }
        counts
    }

    /// Number of fused multi-output nests in the program — consecutive
    /// materialized stages the `fuse_outputs` directive collapsed into one
    /// shared loop nest.
    pub(crate) fn multi_output_nests(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u, Unit::Fused(_)))
            .count()
    }

    /// Number of sliding-window (`SlideWindow`) allocations across every
    /// lowered plan in the program — the rolling `compute_at` buffers the
    /// locality tier reuses between attach iterations.
    pub(crate) fn sliding_windows(&self) -> usize {
        self.units
            .iter()
            .map(|u| match u {
                Unit::Single(stage) => match &stage.pure_exec {
                    Some(PureExec::Lowered(plan)) => plan.sliding_window_count(),
                    _ => 0,
                },
                Unit::Fused(f) => f.plan.sliding_window_count(),
            })
            .sum()
    }

    /// Per-lane-family fused-kernel counts summed over every lowered stage
    /// (materialized producers plus the output stage). Interpreted stages
    /// contribute nothing — they have no lane programs.
    pub(crate) fn fused_store_counts(&self) -> FusedStoreCounts {
        let mut counts = FusedStoreCounts::default();
        let mut add = |c: FusedStoreCounts| {
            counts.lanes_i32 += c.lanes_i32;
            counts.lanes_i64 += c.lanes_i64;
            counts.lanes_f32 += c.lanes_f32;
            counts.lanes_f64 += c.lanes_f64;
        };
        for unit in &self.units {
            match unit {
                Unit::Single(stage) => {
                    if let Some(PureExec::Lowered(plan)) = &stage.pure_exec {
                        add(plan.fused_store_counts());
                    }
                }
                Unit::Fused(f) => add(f.plan.fused_store_counts()),
            }
        }
        counts
    }

    /// The compile-time profile behind [`CompiledPipeline::dry_run`]: one
    /// [`StageProfile`] per materialized stage (output last), built from the
    /// already-compiled plans — profiling does no additional compilation.
    pub(crate) fn profile(&self, target: Target) -> PipelineProfile {
        let stage_profile = |stage: &Stage| -> StageProfile {
            let (lowered, stores) = match &stage.pure_exec {
                Some(PureExec::Lowered(plan)) => (true, plan.store_profiles(target)),
                Some(PureExec::Interpreted { .. }) | None => (false, Vec::new()),
            };
            StageProfile {
                name: stage.name.clone(),
                extents: stage.extents.clone(),
                lowered,
                stores,
                interpreted_updates: if stage.updates_compiled {
                    0
                } else {
                    stage.updates.len()
                },
            }
        };
        let mut stages = Vec::new();
        let mut fused_outputs = 0;
        let mut sliding_window_extents = Vec::new();
        for unit in &self.units {
            match unit {
                Unit::Single(stage) => {
                    if let Some(PureExec::Lowered(plan)) = &stage.pure_exec {
                        sliding_window_extents.extend(plan.sliding_window_extents());
                    }
                    stages.push(stage_profile(stage));
                }
                Unit::Fused(f) => {
                    fused_outputs += f.members.len();
                    sliding_window_extents.extend(f.plan.sliding_window_extents());
                    // Store ids are sequential in nest (member) order, so
                    // profile k belongs to member k.
                    let stores = f.plan.store_profiles(target);
                    for (k, m) in f.members.iter().enumerate() {
                        stages.push(StageProfile {
                            name: m.name.clone(),
                            extents: m.extents.clone(),
                            lowered: true,
                            stores: stores.get(k).cloned().into_iter().collect(),
                            interpreted_updates: 0,
                        });
                    }
                }
            }
        }
        PipelineProfile {
            stages,
            updates: self.update_counts(),
            multi_output_nests: self.multi_output_nests(),
            fused_outputs,
            sliding_window_extents,
        }
    }

    /// Execute the prepared program: materialize producer stages in order,
    /// then the output stage. Only per-call work happens here.
    pub(crate) fn execute(
        &self,
        inputs: &RealizeInputs<'_>,
        target: Target,
    ) -> Result<Buffer, RealizeError> {
        let mut roots: BTreeMap<String, Buffer> = BTreeMap::new();
        let mut result = None;
        for (ui, unit) in self.units.iter().enumerate() {
            let last_unit = ui + 1 == self.units.len();
            match unit {
                Unit::Single(stage) => {
                    let buf = stage.run(inputs, &self.params, &roots, target)?;
                    if last_unit {
                        result = Some(buf);
                    } else {
                        roots.insert(stage.name.clone(), buf);
                    }
                }
                Unit::Fused(f) => {
                    let mut bufs: Vec<Buffer> = f
                        .members
                        .iter()
                        .map(|m| Buffer::new(m.ty, &m.extents))
                        .collect();
                    {
                        let mut refs: Vec<&mut Buffer> = bufs.iter_mut().collect();
                        exec::run_multi_with_target(
                            &f.plan,
                            &mut refs,
                            &inputs.images,
                            &roots,
                            &self.params,
                            target,
                        )?;
                    }
                    let n = bufs.len();
                    for (k, (m, buf)) in f.members.iter().zip(bufs).enumerate() {
                        if last_unit && k + 1 == n {
                            result = Some(buf);
                        } else {
                            roots.insert(m.name.clone(), buf);
                        }
                    }
                }
            }
        }
        Ok(result.expect("a prepared program always ends with the output unit"))
    }
}

impl Stage {
    /// Compile one stage: the pipeline's output func realized over `extents`,
    /// with `keep` naming the funcs left un-inlined (read as sources) and
    /// `outcome` carrying this stage's `compute_at` placements.
    /// `roots_available` is the set of producer buffers that will exist when
    /// this stage runs.
    #[allow(clippy::too_many_arguments)]
    fn build(
        pipeline: &Pipeline,
        schedule: &Schedule,
        backend: ExecBackend,
        extents: &[usize],
        inputs: &RealizeInputs<'_>,
        params: &BTreeMap<String, Value>,
        keep: &BTreeSet<String>,
        outcome: &ComputeAtOutcome,
        roots_available: &BTreeSet<String>,
    ) -> Result<Stage, RealizeError> {
        let func = pipeline.output_func();
        let (pure_exec, updates_compiled) = match backend {
            ExecBackend::Interpret => {
                let exec = match &func.pure_def {
                    None => None,
                    Some(def) => Some(build_interpreted(
                        pipeline,
                        schedule,
                        def,
                        extents,
                        inputs,
                        params,
                        keep,
                        roots_available,
                    )?),
                };
                (exec, false)
            }
            ExecBackend::Lowered => build_lowered(
                pipeline,
                schedule,
                extents,
                inputs,
                params,
                keep,
                outcome,
                roots_available,
            )?,
        };
        Ok(Stage {
            name: func.name.clone(),
            vars: func.vars.clone(),
            ty: func.ty,
            extents: extents.to_vec(),
            pure_exec,
            updates: func.updates.clone(),
            updates_compiled,
        })
    }

    /// Execute the stage: allocate the buffer, run the pure stage, apply the
    /// update definitions.
    fn run(
        &self,
        inputs: &RealizeInputs<'_>,
        params: &BTreeMap<String, Value>,
        roots: &BTreeMap<String, Buffer>,
        target: Target,
    ) -> Result<Buffer, RealizeError> {
        let mut buffer = Buffer::new(self.ty, &self.extents);
        match &self.pure_exec {
            None => {}
            Some(PureExec::Lowered(plan)) => {
                exec::run_with_target(plan, &mut buffer, &inputs.images, roots, params, target)?;
            }
            Some(PureExec::Interpreted {
                expr,
                var_slots,
                threads,
            }) => {
                run_interpreted(
                    expr,
                    var_slots,
                    *threads,
                    &mut buffer,
                    inputs,
                    params,
                    roots,
                )?;
            }
        }
        if !self.updates_compiled {
            for update in &self.updates {
                run_update(
                    &self.name,
                    &self.vars,
                    update,
                    &mut buffer,
                    inputs,
                    params,
                    roots,
                )?;
            }
        }
        Ok(buffer)
    }
}

/// Probe used to pre-validate variable/parameter bindings at compile time, so
/// unbound names error during compilation rather than at the first element.
struct BindingProbe<'a> {
    var_slots: &'a BTreeMap<String, usize>,
    params: &'a BTreeMap<String, Value>,
}

impl EvalSources for BindingProbe<'_> {
    fn var(&self, name: &str) -> Option<i64> {
        self.var_slots.contains_key(name).then_some(0)
    }
    fn param(&self, name: &str) -> Option<Value> {
        self.params.get(name).copied()
    }
    fn load_image(&self, _name: &str, _indices: &[i64]) -> Result<Value, RealizeError> {
        Ok(Value::Int(0)) // sources are validated separately
    }
    fn load_func(&self, _name: &str, _indices: &[i64]) -> Result<Value, RealizeError> {
        Ok(Value::Int(0))
    }
}

/// Compile the interpreter-backend pure stage: inline everything outside
/// `keep`, validate all sources and bindings, and record the per-element
/// evaluation setup.
#[allow(clippy::too_many_arguments)]
fn build_interpreted(
    pipeline: &Pipeline,
    schedule: &Schedule,
    def: &Expr,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    params: &BTreeMap<String, Value>,
    keep: &BTreeSet<String>,
    roots_available: &BTreeSet<String>,
) -> Result<PureExec, RealizeError> {
    let func = pipeline.output_func();
    let expr = inline_except(pipeline, def, keep)?;
    for name in expr.referenced_images() {
        if !inputs.images.contains_key(&name) && !roots_available.contains(&name) {
            return Err(RealizeError::MissingInput(name));
        }
    }
    for name in expr.referenced_funcs() {
        if !roots_available.contains(&name) && !inputs.images.contains_key(&name) {
            return Err(RealizeError::UndefinedFunc(name));
        }
    }
    let var_slots: BTreeMap<String, usize> = func
        .vars
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    validate_bindings(
        &expr,
        &BindingProbe {
            var_slots: &var_slots,
            params,
        },
    )?;
    let outer = extents.last().copied().unwrap_or(1);
    let threads = schedule.effective_threads().min(outer.max(1));
    Ok(PureExec::Interpreted {
        expr,
        var_slots,
        threads,
    })
}

/// Compile the lowered-backend stage: validate, lower the pure definition to
/// loop-nest IR, lower every update definition into guarded reduction nests
/// appended to the same plan (when all of them lower — order between updates
/// must be preserved, so it is all or nothing), and build the typed lane
/// programs. Returns the plan plus whether the updates are inside it.
#[allow(clippy::too_many_arguments)]
fn build_lowered(
    pipeline: &Pipeline,
    schedule: &Schedule,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    params: &BTreeMap<String, Value>,
    keep: &BTreeSet<String>,
    outcome: &ComputeAtOutcome,
    roots_available: &BTreeSet<String>,
) -> Result<(Option<PureExec>, bool), RealizeError> {
    let func = pipeline.output_func();
    if let Some(def) = &func.pure_def {
        // Mirror the interpreter's up-front validation (and error kinds).
        let mut sized_keep = keep.clone();
        sized_keep.extend(outcome.plans.iter().map(|p| p.func.clone()));
        let expr = inline_except(pipeline, def, &sized_keep)?;
        for name in expr.referenced_images() {
            if !inputs.images.contains_key(&name) {
                return Err(RealizeError::MissingInput(name));
            }
        }
        for name in expr.referenced_funcs() {
            let is_plan = outcome.plans.iter().any(|p| p.func == name);
            if !roots_available.contains(&name) && !is_plan {
                return Err(RealizeError::UndefinedFunc(name));
            }
        }
    } else if func.updates.is_empty() {
        return Ok((None, false));
    }
    // Deterministic, so the rare fused-prepare fallback below can re-lower
    // instead of every compile deep-cloning the pure nest up front.
    let lower_stmt = || -> Result<Stmt, RealizeError> {
        match &func.pure_def {
            None => Ok(Stmt::Block(Vec::new())),
            Some(_) => crate::lower::lower_pure(pipeline, schedule, extents, keep, outcome),
        }
    };
    let stmt = lower_stmt()?;
    let image_decls: Vec<(String, ScalarType)> = inputs
        .images
        .iter()
        .map(|(n, b)| (n.clone(), b.scalar_type()))
        .collect();
    let root_decls: Vec<(String, ScalarType)> = roots_available
        .iter()
        .map(|n| {
            pipeline
                .funcs
                .get(n)
                .map(|f| (n.clone(), f.ty))
                .ok_or_else(|| RealizeError::UndefinedFunc(n.clone()))
        })
        .collect::<Result<_, _>>()?;

    // Lower the update definitions into guarded nests appended after the
    // pure init. Best-effort: any update whose shape or source bindings the
    // lowered path cannot honour keeps the whole update sequence on the
    // reduction interpreter (order between updates must be preserved).
    let stmt = if !func.updates.is_empty() && updates_lowerable(func, inputs, roots_available) {
        let mut next_id = stmt.store_count();
        let mut parts = vec![stmt];
        let mut all = true;
        for update in &func.updates {
            match lower_update(func, update, extents, schedule, params, &mut next_id) {
                Some(nest) => parts.push(nest),
                None => {
                    all = false;
                    break;
                }
            }
        }
        if all {
            let combined = Stmt::block(parts);
            // A compile failure inside an update expression (e.g. an unbound
            // parameter the interpreter would only report at run time) falls
            // back to the interpreted update path rather than failing the
            // stage — re-lowering the pure nest, which only happens on this
            // rare path.
            match exec::prepare(
                combined,
                &func.name,
                func.ty,
                &image_decls,
                &root_decls,
                params,
            ) {
                Ok(plan) => return Ok((Some(PureExec::Lowered(Box::new(plan))), true)),
                Err(_) => lower_stmt()?,
            }
        } else {
            // Some update declined: recover the pure nest unchanged.
            parts.into_iter().next().expect("pure nest is parts[0]")
        }
    } else {
        stmt
    };
    let plan = exec::prepare(stmt, &func.name, func.ty, &image_decls, &root_decls, params)?;
    Ok((Some(PureExec::Lowered(Box::new(plan))), false))
}

/// Whether the update definitions' sources resolve exactly as the reduction
/// interpreter would resolve them: image reads bind input images (not
/// shadowed by a same-named root), func reads bind the func itself or a
/// materialized root. Anything else keeps the interpreter path, whose source
/// resolution (and error surface) is the contract.
fn updates_lowerable(
    func: &Func,
    inputs: &RealizeInputs<'_>,
    roots_available: &BTreeSet<String>,
) -> bool {
    for update in &func.updates {
        for e in update.lhs.iter().chain(std::iter::once(&update.value)) {
            for name in e.referenced_images() {
                if !inputs.images.contains_key(&name)
                    || roots_available.contains(&name)
                    || name == func.name
                {
                    return false;
                }
            }
            for name in e.referenced_funcs() {
                if name != func.name
                    && (!roots_available.contains(&name) || inputs.images.contains_key(&name))
                {
                    return false;
                }
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Interpreter-backend execution (per-element shared evaluator)
// ---------------------------------------------------------------------------

/// Sources of the interpreter backend's pure stage. Materialized roots shadow
/// same-named images, mirroring the compiled backend's slot table (images
/// registered first, roots overriding).
struct PureSources<'a> {
    var_slots: &'a BTreeMap<String, usize>,
    vars: Vec<i64>,
    params: &'a BTreeMap<String, Value>,
    images: &'a BTreeMap<String, &'a Buffer>,
    roots: &'a BTreeMap<String, Buffer>,
}

impl EvalSources for PureSources<'_> {
    fn var(&self, name: &str) -> Option<i64> {
        self.var_slots.get(name).map(|slot| self.vars[*slot])
    }
    fn param(&self, name: &str) -> Option<Value> {
        self.params.get(name).copied()
    }
    fn load_image(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
        if let Some(buf) = self.roots.get(name) {
            return Ok(buf.get(indices));
        }
        self.images
            .get(name)
            .map(|buf| buf.get(indices))
            .ok_or_else(|| RealizeError::MissingInput(name.to_string()))
    }
    fn load_func(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
        if let Some(buf) = self.roots.get(name) {
            return Ok(buf.get(indices));
        }
        self.images
            .get(name)
            .map(|buf| buf.get(indices))
            .ok_or_else(|| RealizeError::UndefinedFunc(name.to_string()))
    }
}

/// Walk the output domain in memory order, evaluating `expr` per element with
/// the shared evaluator, optionally distributing outer rows across scoped
/// worker threads (each writes a disjoint byte chunk).
fn run_interpreted(
    expr: &Expr,
    var_slots: &BTreeMap<String, usize>,
    threads: usize,
    buffer: &mut Buffer,
    inputs: &RealizeInputs<'_>,
    params: &BTreeMap<String, Value>,
    roots: &BTreeMap<String, Buffer>,
) -> Result<(), RealizeError> {
    let extents = buffer.extents().to_vec();
    let ty = buffer.scalar_type();
    let elem_bytes = ty.bytes();
    let dims = extents.len();
    let inner: usize = extents[..dims - 1].iter().product::<usize>().max(1);
    let outer = extents[dims - 1];
    let threads = threads.min(outer.max(1));
    let data = buffer.bytes_mut();
    let row_bytes = inner * elem_bytes;

    let eval_rows =
        |outer_range: std::ops::Range<usize>, chunk: &mut [u8]| -> Result<(), RealizeError> {
            let mut src = PureSources {
                var_slots,
                vars: vec![0i64; dims],
                params,
                images: &inputs.images,
                roots,
            };
            for (row_i, o) in outer_range.enumerate() {
                src.vars[dims - 1] = o as i64;
                for i in 0..inner {
                    // Decode the linear inner index into coordinates.
                    let mut rem = i;
                    for (d, e) in extents[..dims - 1].iter().enumerate() {
                        src.vars[d] = (rem % e) as i64;
                        rem /= e;
                    }
                    let v = eval_expr(expr, &src)?;
                    let off = row_i * row_bytes + i * elem_bytes;
                    write_scalar(ty, v, &mut chunk[off..off + elem_bytes]);
                }
            }
            Ok(())
        };

    if threads <= 1 {
        eval_rows(0..outer, data)
    } else {
        let rows_per_thread = outer.div_ceil(threads);
        let chunks: Vec<&mut [u8]> = data.chunks_mut(rows_per_thread * row_bytes).collect();
        let errors = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (t, chunk) in chunks.into_iter().enumerate() {
                let start = t * rows_per_thread;
                let end = ((t + 1) * rows_per_thread).min(outer);
                let eval_rows = &eval_rows;
                let errors = &errors;
                scope.spawn(move || {
                    if let Err(e) = eval_rows(start..end, chunk) {
                        errors.lock().expect("error mutex").push(e);
                    }
                });
            }
        });
        match errors.into_inner().expect("error mutex").pop() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Update (reduction) execution — both backends share this path
// ---------------------------------------------------------------------------

/// Sources of an update definition: reduction variables, input images, the
/// buffer being updated (reads of the func itself), and materialized roots.
struct UpdateSources<'a> {
    vars: BTreeMap<String, i64>,
    params: &'a BTreeMap<String, Value>,
    images: &'a BTreeMap<String, &'a Buffer>,
    self_name: &'a str,
    self_buffer: &'a Buffer,
    roots: &'a BTreeMap<String, Buffer>,
}

impl EvalSources for UpdateSources<'_> {
    fn var(&self, name: &str) -> Option<i64> {
        self.vars.get(name).copied()
    }
    fn param(&self, name: &str) -> Option<Value> {
        self.params.get(name).copied()
    }
    fn load_image(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
        self.images
            .get(name)
            .map(|buf| buf.get(indices))
            .ok_or_else(|| RealizeError::MissingInput(name.to_string()))
    }
    fn load_func(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
        if name == self.self_name {
            return Ok(self.self_buffer.get(indices));
        }
        self.roots
            .get(name)
            .map(|buf| buf.get(indices))
            .ok_or_else(|| RealizeError::UndefinedFunc(name.to_string()))
    }
}

/// Apply one update definition with the shared evaluator — the reduction
/// *interpreter*, which serves as the differential oracle for the lowered
/// update nests.
///
/// Iteration order (the contract the lowered nests are pinned against): free
/// pure variables of the update (those of `self_vars` referenced by the LHS
/// or value) iterate the full output extent as the *outermost* loops, highest
/// dimension outermost; the reduction domain iterates inside them in
/// row-major order (first rdom dimension innermost). Reductions are
/// inherently ordered, so everything applies sequentially.
fn run_update(
    self_name: &str,
    self_vars: &[String],
    update: &UpdateDef,
    buffer: &mut Buffer,
    inputs: &RealizeInputs<'_>,
    params: &BTreeMap<String, Value>,
    roots: &BTreeMap<String, Buffer>,
) -> Result<(), RealizeError> {
    // Resolve the reduction domain bounds and the free pure vars through the
    // lowering pass's own helpers, so both paths iterate identical spaces.
    let dims = crate::lower::resolve_rdom_dims(&update.rdom, params);
    let free: Vec<(String, i64)> = crate::lower::free_pure_vars_in(self_vars, update)
        .into_iter()
        .map(|(d, v)| (v, buffer.extents()[d] as i64))
        .collect();
    let pure_total: i64 = free.iter().map(|(_, e)| (*e).max(0)).product();
    let total: i64 = dims.iter().map(|(_, _, e)| (*e).max(0)).product();
    for pi in 0..pure_total {
        let mut rem = pi;
        let mut pure_vars = BTreeMap::new();
        for (var, extent) in &free {
            let e = (*extent).max(1);
            pure_vars.insert(var.clone(), rem % e);
            rem /= e;
        }
        for i in 0..total {
            let mut rem = i;
            let mut vars = pure_vars.clone();
            for (var, min, extent) in &dims {
                let e = (*extent).max(1);
                vars.insert(var.clone(), min + rem % e);
                rem /= e;
            }
            let (idx, value) = {
                let src = UpdateSources {
                    vars,
                    params,
                    images: &inputs.images,
                    self_name,
                    self_buffer: &*buffer,
                    roots,
                };
                let idx: Result<Vec<i64>, RealizeError> = update
                    .lhs
                    .iter()
                    .map(|e| eval_expr(e, &src).map(|v| v.as_i64()))
                    .collect();
                (idx?, eval_expr(&update.value, &src)?)
            };
            buffer.set(&idx, value);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Func, ImageParam};
    use crate::realize::Realizer;

    /// bright(x,y) = in(x,y) + 17 (u16); out(x,y) = u8(bright(x,y) + bright(x+2,y+1))
    fn two_stage() -> Pipeline {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let bright = Func::pure(
            "bright",
            &["x_0", "x_1"],
            ScalarType::UInt16,
            Expr::add(
                Expr::cast(
                    ScalarType::UInt16,
                    Expr::Image("input_1".into(), vec![x.clone(), y.clone()]),
                ),
                Expr::int(17),
            ),
        );
        let out = Func::pure(
            "out",
            &["x_0", "x_1"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::add(
                    Expr::FuncRef("bright".into(), vec![x.clone(), y.clone()]),
                    Expr::FuncRef(
                        "bright".into(),
                        vec![Expr::add(x, Expr::int(2)), Expr::add(y, Expr::int(1))],
                    ),
                ),
            ),
        );
        Pipeline::new(out, vec![ImageParam::new("input_1", ScalarType::UInt8, 2)]).with_func(bright)
    }

    fn image(w: usize, h: usize) -> Buffer {
        let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
        let mut s = 11u64;
        for c in b.coords().collect::<Vec<_>>() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.set(&c, Value::Int(((s >> 33) % 256) as i64));
        }
        b
    }

    #[test]
    fn warm_runs_do_no_planning_or_lowering() {
        let p = two_stage();
        let schedule = Schedule::stencil_default().with_compute_at("bright", "x_1");
        let compiled = p.compile(&schedule, &CompileOptions::default()).unwrap();
        let input = image(14, 12);
        let inputs = RealizeInputs::new().with_image("input_1", &input);

        let first = compiled.run(&inputs, &[10, 8]).unwrap();
        let second = compiled.run(&inputs, &[10, 8]).unwrap();
        let third = compiled.run(&inputs, &[10, 8]).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, third);

        let stats = compiled.cache_stats();
        assert_eq!(stats.misses, 1, "only the first run compiles");
        assert_eq!(
            stats.hits, 2,
            "warm runs reuse the prepared program (no planning/lowering)"
        );
        assert_eq!(compiled.cached_programs(), 1);
    }

    #[test]
    fn compiled_run_matches_fresh_realizer_on_both_backends() {
        let p = two_stage();
        let input = image(16, 12);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        for backend in [ExecBackend::Interpret, ExecBackend::Lowered] {
            for schedule in [
                Schedule::naive(),
                Schedule::stencil_default(),
                Schedule::naive().with_compute_at("bright", "x_1"),
                Schedule::naive().with_compute_root("bright"),
            ] {
                let compiled = p
                    .compile(
                        &schedule,
                        &CompileOptions {
                            backend,
                            ..CompileOptions::default()
                        },
                    )
                    .unwrap();
                for extents in [[12usize, 10], [8, 6], [12, 10]] {
                    let fresh = Realizer::new(schedule.clone())
                        .with_backend(backend)
                        .realize(&p, &extents, &inputs)
                        .unwrap();
                    let ran = compiled.run(&inputs, &extents).unwrap();
                    assert_eq!(
                        ran, fresh,
                        "compiled run diverged from Realizer ({backend:?}, [{schedule}], {extents:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn distinct_extents_occupy_distinct_cache_entries() {
        let p = two_stage();
        let compiled = p
            .compile(&Schedule::stencil_default(), &CompileOptions::default())
            .unwrap();
        let input = image(20, 16);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        compiled.run(&inputs, &[10, 8]).unwrap();
        compiled.run(&inputs, &[12, 8]).unwrap();
        compiled.run(&inputs, &[10, 8]).unwrap();
        let stats = compiled.cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(compiled.cached_programs(), 2);
    }

    #[test]
    fn tiny_cache_capacity_evicts_but_stays_correct() {
        let p = two_stage();
        let compiled = p
            .compile(
                &Schedule::stencil_default(),
                &CompileOptions {
                    cache_capacity: 1,
                    ..CompileOptions::default()
                },
            )
            .unwrap();
        let input = image(20, 16);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let realizer = Realizer::new(Schedule::stencil_default());
        for extents in [[10usize, 8], [12, 8], [10, 8], [12, 8]] {
            let fresh = realizer.realize(&p, &extents, &inputs).unwrap();
            let ran = compiled.run(&inputs, &extents).unwrap();
            assert_eq!(ran, fresh, "eviction must not affect values");
        }
        let stats = compiled.cache_stats();
        assert!(stats.evictions >= 2, "capacity-1 cache thrashes: {stats:?}");
        assert_eq!(compiled.cached_programs(), 1);
    }

    #[test]
    fn different_param_values_compile_separate_programs() {
        // out(x) = in(x) + k — k is constant-folded into the lane program, so
        // different values of k must not share a cached program.
        let x = Expr::var("x_0");
        let out = Func::pure(
            "out",
            &["x_0"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::add(
                    Expr::Image("in".into(), vec![x]),
                    Expr::Param("k".into(), ScalarType::Int32),
                ),
            ),
        );
        let p = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 1)]);
        let compiled = p
            .compile(&Schedule::naive(), &CompileOptions::default())
            .unwrap();
        let mut input = Buffer::new(ScalarType::UInt8, &[8]);
        for i in 0..8 {
            input.set(&[i], Value::Int(i * 3));
        }
        let a = compiled
            .run(
                &RealizeInputs::new()
                    .with_image("in", &input)
                    .with_param("k", Value::Int(1)),
                &[8],
            )
            .unwrap();
        let b = compiled
            .run(
                &RealizeInputs::new()
                    .with_image("in", &input)
                    .with_param("k", Value::Int(100)),
                &[8],
            )
            .unwrap();
        assert_eq!(a.get(&[2]).as_i64(), 7);
        assert_eq!(b.get(&[2]).as_i64(), 106);
        assert_eq!(compiled.cache_stats().misses, 2, "params are keyed");
    }

    /// hist(x) = 0; hist[in(r.x, r.y)] = cast<u64>(hist[in(r.x, r.y)] + 1).
    fn hist_pipeline() -> Pipeline {
        use crate::func::{RDom, UpdateDef};
        let img = ImageParam::new("input_1", ScalarType::UInt8, 2);
        let rdom = RDom::over_image("r_0", &img);
        let lhs = Expr::Image(
            "input_1".into(),
            vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
        );
        let update = UpdateDef {
            lhs: vec![lhs.clone()],
            value: Expr::cast(
                ScalarType::UInt64,
                Expr::add(Expr::FuncRef("hist".into(), vec![lhs]), Expr::int(1)),
            ),
            rdom,
        };
        let hist =
            Func::pure("hist", &["x_0"], ScalarType::UInt64, Expr::int(0)).with_update(update);
        Pipeline::new(hist, vec![img])
    }

    #[test]
    fn histogram_updates_execute_compiled_and_match_oracle() {
        let p = hist_pipeline();
        let input = image(23, 17);
        let inputs = RealizeInputs::new().with_image("input_1", &input);
        let compiled = p
            .compile(&Schedule::stencil_default(), &CompileOptions::default())
            .unwrap();
        let out = compiled.run(&inputs, &[256]).unwrap();
        let counts = compiled.update_counts(&inputs, &[256]).unwrap();
        assert_eq!(
            counts,
            UpdateCounts {
                compiled: 1,
                interpreted: 0
            },
            "the histogram update must lower into the compiled plan"
        );
        let oracle = Realizer::new(Schedule::stencil_default())
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[256], &inputs)
            .unwrap();
        assert_eq!(out, oracle, "compiled histogram diverged from run_update");
        // The interpreter backend reports everything interpreted.
        let interp = p
            .compile(
                &Schedule::stencil_default(),
                &CompileOptions {
                    backend: ExecBackend::Interpret,
                    ..CompileOptions::default()
                },
            )
            .unwrap();
        let c = interp.update_counts(&inputs, &[256]).unwrap();
        assert_eq!(c.compiled, 0);
        assert_eq!(c.interpreted, 1);
    }

    #[test]
    fn loop_invariant_accumulator_uses_fused_tree_reduce() {
        use crate::func::{RDom, UpdateDef};
        // norm(0) = 0; norm(0) = norm(0) + in(r.x)^2 over a 1-D rdom: the
        // canonical residual-norm shape the fused accumulation kernel covers.
        let img = ImageParam::new("in", ScalarType::UInt8, 1);
        let tap = Expr::cast(
            ScalarType::UInt64,
            Expr::Image("in".into(), vec![Expr::RVar("r_0.x".into())]),
        );
        let update = UpdateDef {
            lhs: vec![Expr::int(0)],
            value: Expr::add(
                Expr::FuncRef("norm".into(), vec![Expr::int(0)]),
                Expr::mul(tap.clone(), tap),
            ),
            rdom: RDom::over_image("r_0", &img),
        };
        let norm =
            Func::pure("norm", &["x_0"], ScalarType::UInt64, Expr::int(0)).with_update(update);
        let p = Pipeline::new(norm, vec![img]);
        let mut input = Buffer::new(ScalarType::UInt8, &[301]);
        let mut s = 7u64;
        let mut expect = 0u64;
        for i in 0..301i64 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (s >> 33) % 256;
            input.set(&[i], Value::Int(v as i64));
            expect = expect.wrapping_add(v * v);
        }
        let inputs = RealizeInputs::new().with_image("in", &input);
        let counters = exec::CounterSnapshot::take();
        // Pin the fused tier so an inherited HELIUM_FORCE_SCALAR cannot
        // silently skip the kernel this test asserts on.
        let compiled = p
            .compile(
                &Schedule::stencil_default(),
                &CompileOptions {
                    target: Some(Target::detect().with_tier(crate::target::Tier::Simd)),
                    ..CompileOptions::default()
                },
            )
            .unwrap();
        let out = compiled.run(&inputs, &[1]).unwrap();
        assert_eq!(out.get(&[0]).as_i64() as u64, expect);
        assert_eq!(
            compiled.update_counts(&inputs, &[1]).unwrap(),
            UpdateCounts {
                compiled: 1,
                interpreted: 0
            }
        );
        assert!(
            counters.delta().reduce_chunks > 0,
            "the accumulator must run the fused tree-reduce epilogue"
        );
        // ForceScalar pins the per-op path; results stay bit-identical.
        let scalar = p
            .compile(
                &Schedule::stencil_default(),
                &CompileOptions {
                    target: Some(Target::detect().with_tier(crate::target::Tier::Scalar)),
                    ..CompileOptions::default()
                },
            )
            .unwrap();
        assert_eq!(scalar.run(&inputs, &[1]).unwrap(), out);
        let oracle = Realizer::new(Schedule::stencil_default())
            .with_backend(ExecBackend::Interpret)
            .realize(&p, &[1], &inputs)
            .unwrap();
        assert_eq!(out, oracle);
    }

    #[test]
    fn pure_dim_accumulator_vectorizes_privatized_lanes() {
        use crate::func::{RDom, UpdateDef};
        // f(x) = x; f(x) = cast<u32>(f(x) + in(x + r.x)) over r in [0, 5):
        // privatized — the pure lane loop vectorizes, writes stay disjoint.
        let img = ImageParam::new("in", ScalarType::UInt8, 1);
        let update = UpdateDef {
            lhs: vec![Expr::var("x_0")],
            value: Expr::cast(
                ScalarType::UInt32,
                Expr::add(
                    Expr::FuncRef("f".into(), vec![Expr::var("x_0")]),
                    Expr::Image(
                        "in".into(),
                        vec![Expr::add(Expr::var("x_0"), Expr::RVar("r_0.x".into()))],
                    ),
                ),
            ),
            rdom: RDom::with_constant_bounds("r_0", &[(0, 5)]),
        };
        let f = Func::pure(
            "f",
            &["x_0"],
            ScalarType::UInt32,
            Expr::cast(ScalarType::UInt32, Expr::var("x_0")),
        )
        .with_update(update);
        let p = Pipeline::new(f, vec![img]);
        let input = {
            let mut b = Buffer::new(ScalarType::UInt8, &[64]);
            for i in 0..64i64 {
                b.set(&[i], Value::Int((i * 7 + 3) % 256));
            }
            b
        };
        let inputs = RealizeInputs::new().with_image("in", &input);
        for width in [1usize, 8, 32] {
            let schedule = Schedule::stencil_default().with_vector_width(width);
            let compiled = p.compile(&schedule, &CompileOptions::default()).unwrap();
            let out = compiled.run(&inputs, &[47]).unwrap();
            assert_eq!(
                compiled.update_counts(&inputs, &[47]).unwrap(),
                UpdateCounts {
                    compiled: 1,
                    interpreted: 0
                }
            );
            let oracle = Realizer::new(schedule)
                .with_backend(ExecBackend::Interpret)
                .realize(&p, &[47], &inputs)
                .unwrap();
            assert_eq!(out, oracle, "width {width} diverged");
        }
    }

    #[test]
    fn structural_validation_rejects_dangling_refs() {
        let out = Func::pure(
            "out",
            &["x_0"],
            ScalarType::UInt8,
            Expr::cast(
                ScalarType::UInt8,
                Expr::FuncRef("nowhere".into(), vec![Expr::var("x_0")]),
            ),
        );
        let p = Pipeline::new(out, Vec::new());
        let err = p
            .compile(&Schedule::naive(), &CompileOptions::default())
            .unwrap_err();
        assert_eq!(err, RealizeError::UndefinedFunc("nowhere".into()));
    }
}
