//! The compiled executor for lowered loop-nest IR.
//!
//! Execution has three tiers, fastest first; every store is compiled to the
//! best tier its shape admits and the others remain as fallbacks:
//!
//! 1. **Fused SIMD lane kernels.** At [`prepare`] time each store under a
//!    vectorized innermost loop is additionally compiled — when its loads
//!    are affine in the loop variables and contiguous (or invariant) along
//!    the lane dimension — into a single fused kernel over one of three
//!    *lane families*, each with its own bit-exactness invariant:
//!
//!    | family      | lanes per chunk  | outputs            | exactness invariant |
//!    |-------------|------------------|--------------------|---------------------|
//!    | `[i32; W]`  | `W` ∈ {8,16,32}  | ≤ 32-bit integers  | lanes hold the low 32 bits of the reference `i64` value; wrapping/bitwise ops are low-bit homomorphic, value-sensitive ops (shifts, min/max, compares, selects) only emitted when interval analysis proves the 32-bit result exact |
//!    | `[i64; W/2]`| `W/2` ∈ {4,8,16} | any integer (incl. `UInt64`) | lanes *are* the reference `i64` value — every emitted op replicates [`eval_binop`] integer semantics verbatim, so no wrap proofs are needed (they would be vacuous) |
//!    | `[f32; W]`  | `W` ∈ {8,16,32}  | `Float32`          | lanes hold values bit-exactly representable in `f32`; arithmetic is only emitted at *rounding points* (an enclosing `cast<float>` or the store's own narrowing), where a single `f32` rounding of exact-`f32` operands equals the reference's compute-in-`f64`-then-round (innocuous double rounding: 53 ≥ 2·24 + 2 significant bits, for +, −, ×, ÷ and sqrt) |
//!
//!    Integer stores try the `[i32; W]` family first and fall back to
//!    `[i64; W/2]` when the 32-bit proofs fail, so wide-valued idioms (64-bit
//!    histogram bins, unprovable shifts) still fuse at half throughput.
//!    The kernels evaluate fixed-width chunks with constant trip counts that
//!    LLVM reliably turns into SIMD, loading taps as straight slices with
//!    *no per-lane clamping* and storing whole chunks contiguously. Narrow
//!    types stay narrow end-to-end: a `UInt8` blur runs as u8 loads → i32
//!    arithmetic → u8 stores, never widening to `i64`/`f64`.
//! 2. **Per-op typed lane dispatch.** Every store compiles to typed stack
//!    programs (`TOp`) whose int lanes are `i64` and float lanes `f64`,
//!    with clamped, gather-style loads — the general path, and the one the
//!    fused tier's boundary peels run on.
//! 3. **Per-element fallback.** Stores whose types cannot be inferred
//!    statically (a `select` mixing int and float branches) evaluate through
//!    the shared [`crate::eval`] evaluator — the same code the interpreter
//!    backend and the reduction path run, so the fallback cannot drift.
//!
//! **Lowered reductions.** Update definitions no longer fall off the
//! compiled cliff: `crate::lower::lower_update` turns each one into rdom/pure
//! loop nests over a *guarded* store ([`Stmt::ReduceStore`]), which this
//! executor runs with clamped destination indices (`Buffer::set` semantics —
//! histogram left-hand sides index by data) through the same typed per-op
//! programs as pure stores. Two accumulation refinements apply where proven
//! exact:
//!
//! * **Privatized lanes** — when every free pure variable owns its LHS
//!   dimension and self-reads hit exactly the written point, the lowering
//!   pass hoists the rdom loops outside and vectorizes the innermost pure
//!   loop; lanes write disjoint cells, so batching them through the per-op
//!   tier is bit-exact.
//! * **Fused tree-reduce** — a loop-invariant integer accumulator
//!   (`F[c] = casts(F[c] + g(r))` with `g` not reading `F`) compiles `g`
//!   onto the `[i32; W]`/`[i64; W/2]` lane families and folds whole chunks
//!   with a wrapping in-lane tree-reduce ([`ReduceKernel`] documents the
//!   congruence-mod-`2^k` argument that makes reassociation exact; float
//!   accumulators never take this path because float addition is not
//!   associative). `Auto` mode always uses a compiled reduce kernel —
//!   rdom loops are serial, so there is no scheduled width to gate on —
//!   and `ForceScalar` pins the per-op read-modify-write path.
//!
//! Everything else stays on the sequential per-element path, which preserves
//! the reduction interpreter's iteration order exactly (that interpreter,
//! `run_update` in `crate::compile`, remains as the differential oracle).
//!
//! **Interior/boundary splitting with masked tails.** A fused store does not
//! run its kernel blindly: at each entry of the innermost loop the executor
//! derives, from the affine decomposition of every load index and the bound
//! buffer extents, the sub-range of the loop where *every* load is provably
//! in-range (the steady-state interior). The interior runs the fused kernel
//! in full-width chunks; the border lanes before and after it run the
//! clamped per-op tier — so boundary clamping semantics are preserved
//! exactly while the hot interior pays for none of it. A sub-width interior
//! tail no longer peels onto the per-op tier: after at least one full chunk,
//! the final chunk simply *overlaps* the previous one (re-storing identical
//! lanes — sound because the kernel is deterministic and reads nothing it
//! wrote; stores that read their own buffer are refused fusion outright, at
//! build time, via [`crate::stmt::value_reads_buffer`] and the tap-slot
//! check); an interior shorter than one chunk instead runs a single *masked*
//! chunk that loads only the provably in-range lane prefix (zero-filling the
//! rest) and stores only that prefix. Either way small tiles stay on tier 1
//! — [`fused_tail_chunks_executed`] counts these tail chunks.
//!
//! **The locality tier.** Two lowering constructs cut redundant memory
//! traffic without touching per-element values:
//!
//! * [`Stmt::SlideWindow`] manages a `compute_at` allocation as a rolling
//!   window: at each attach iteration it compares the region minimum against
//!   the previous iteration's (tracked per-thread in [`Scratch`], so parallel
//!   chunks just start cold), shifts the surviving rows down in place with
//!   one `memmove`, and binds the warm-row count to a pseudo-variable the
//!   producer nest's sliding loop starts at — only newly exposed rows are
//!   recomputed. Exactness: region inference proved the window's content is a
//!   pure function of the sliding minimum, so a shifted row is bit-identical
//!   to a recomputed one. [`window_rows_reused`] counts the rows saved.
//! * Multi-output fused nests ([`prepare_multi`] / [`run_multi_with_target`])
//!   carry several `Produce` blocks under one shared outer loop, writing
//!   several output buffers per walk; each member store still selects its
//!   own execution tier. [`multi_output_nests_executed`] counts the runs.
//!
//! **Bit-exactness.** Every tier replicates [`Value`] semantics exactly:
//! integer arithmetic wraps, division by zero yields zero, right shifts are
//! logical on `i64`, casts truncate like C casts, and out-of-range loads
//! clamp per [`Buffer::get`]. Floats are carried as `f64` and round at
//! `cast<float>` points and `Float32` stores. Each fused lane family carries
//! its own proof obligation (see the table above): the `[i32; W]` family's
//! interval proofs are what make lifted u32 wrap-around idioms like
//! PhotoFlow's `4294967295 * x` negative taps fusable; the `[i64; W/2]`
//! family needs no proofs because its lanes are the reference values; the
//! `[f32; W]` family's rounding-point discipline makes lifted
//! single-precision SSE code (every instruction rounds at `f32`) fuse while
//! expressions that genuinely accumulate in `f64` fall back a tier.
//! Anything unprovable falls back a tier. The differential property suites
//! in `tests/prop_halide.rs` and `tests/prop_simd.rs` enforce equality
//! against the interpreter across all tiers, element types (including NaN,
//! ±Inf and subnormal float inputs) and extents.
//!
//! Backend selection is a [`Target`]: an execution [`Tier`] (pin the fused
//! tier on or off, or let the runner choose) plus the ISA [`Feature`]s the
//! fused kernels may exploit. The `arch` module hand-writes AVX2
//! `core::arch` chunk evaluators for the hottest shapes — Axpy tap
//! accumulation, shift/mul-by-constant, clamp/min/max, and the tree-reduce —
//! dispatched when the resolved target carries [`Feature::Avx2`] *and*
//! `is_x86_feature_detected!("avx2")` confirms it at run time
//! ([`Target::effective_isa`]); the portable constant-trip lane loops remain
//! both the fallback and the bit-exactness oracle. Integer arch kernels are
//! exact by construction (wrapping semantics); float arch kernels cover only
//! IEEE-exact single-rounding ops (`Add`/`Sub`/`Mul`/`Div`/`Sqrt`), leaving
//! `Min`/`Max`/`Cmp` on the scalar reference path because `_mm256_min_ps`
//! NaN/±0 semantics differ from Rust's. A target is resolved once at
//! compile time ([`crate::compile::CompileOptions::target`], defaulting to
//! [`Target::current`] — env pins live in [`Target::from_env`]) and every
//! dispatch site reads that one value.
//!
//! Since the compile/run split, store compilation happens once in [`prepare`]
//! (producing an [`ExecPlan`] that the program cache retains — including the
//! per-store fused-kernel selection) and [`run`] only binds buffers and
//! walks the loop nest.
//!
//! **Safety.** Worker threads share buffers through raw pointers; no `&mut`
//! is ever formed over shared data. This is sound because (a) loads only ever
//! read buffers that nothing writes during the run (inputs, pre-materialized
//! roots, and the thread's own finished `compute_at` scratch — a fused
//! kernel additionally rejects stores whose value reads the buffer being
//! written), and (b) the lowering pass only marks the *outermost* output
//! loop parallel, with every store under it indexing the output through that
//! loop's variable, so threads write disjoint byte ranges; `compute_at`
//! buffers are allocated inside the parallel body and are thread-local by
//! construction. Guarded reduction stores are the one place a program reads
//! the buffer it writes: their nests contain no parallel loops (the lowering
//! pass never marks rdom or update-pure loops parallel), every read
//! completes before the corresponding write within a dispatch, and a
//! vectorized (privatized) lane batch touches pairwise-disjoint cells.

use crate::bounds::{combine, expr_interval, f64_is_f32_exact, Interval};
use crate::buffer::Buffer;
use crate::eval::{eval_expr, EvalSources};
use crate::expr::{eval_binop, eval_cmp, BinOp, CmpOp, Expr, ExternCall};
use crate::realize::RealizeError;
use crate::stmt::{
    access_contiguous_in, access_invariant_in, value_reads_buffer, AffineIndex, LoopKind, Stmt,
};
use crate::target::{set_target_override, Isa, Target, Tier};
use crate::types::{ScalarType, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of lanes evaluated per dispatch of the per-op typed tier, and the
/// sub-batch size wider vectorized widths are split into: a schedule asking
/// for `vectorize(32)` dispatches 32 lanes per store visit, executed as two
/// full 16-lane batches (results are identical either way; see
/// `Runner::exec_store`). Fused SIMD kernels choose their own chunk width
/// (up to [`MAX_CHUNK`]) from the schedule.
pub const MAX_LANES: usize = 16;

/// Widest fused-kernel chunk (lanes of `i32` per kernel invocation).
pub const MAX_CHUNK: usize = 32;

/// Value-stack depth limit of fused kernels; deeper programs (rare — tap
/// accumulation is peephole-fused) use the per-op tier.
const V_STACK: usize = 8;

/// Cap on `workers × Σ merged-buffer cells` for parallel-reduce deferred
/// accumulation: beyond this the private side buffers would cost more than
/// the reduction saves, so the nest degrades to the serial reference path.
const MERGE_MAX_CELLS: usize = 4 << 20;

// ---------------------------------------------------------------------------
// Execution-tier selection
// ---------------------------------------------------------------------------

/// Legacy tier knob, superseded by [`Target`] / [`Tier`]. Retained as a shim
/// so existing callers keep compiling; [`set_simd_mode`] maps it onto a
/// process-wide [`Target`] override.
#[deprecated(note = "use `Target` / `Tier` (see `helium_halide::target`)")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Fused kernels run under vectorized loops; everything else uses the
    /// per-op tier.
    Auto,
    /// Never use fused kernels (the per-op lane tier handles every store).
    ForceScalar,
    /// Use fused kernels wherever one was compiled, even under serial
    /// innermost loops (which then run [`MAX_LANES`]-wide chunks).
    ForceSimd,
}

/// Rows (innermost-loop executions) that ran the fused-kernel interior path,
/// for observability and tests.
static FUSED_ROWS: AtomicU64 = AtomicU64::new(0);

/// Sub-width interior tails executed as fused chunks (overlapping or masked)
/// instead of peeling onto the per-op tier, for observability and tests.
static FUSED_TAILS: AtomicU64 = AtomicU64::new(0);

/// Chunks accumulated by fused reduction kernels (the in-lane tree-reduce
/// epilogue of lowered update definitions), for observability and tests.
static REDUCE_CHUNKS: AtomicU64 = AtomicU64::new(0);

/// Private accumulator buffers merged into an output by the parallel
/// reduction accumulation path (one per merged buffer per
/// [`LoopKind::ParallelReduce`] nest execution), for observability and tests.
static PARALLEL_REDUCE_MERGES: AtomicU64 = AtomicU64::new(0);

/// Rows of sliding-window `compute_at` allocations reused (shifted in place
/// instead of recomputed) by [`Stmt::SlideWindow`] executions, for
/// observability and tests — the proof that the locality tier fires.
static WINDOW_ROWS_REUSED: AtomicU64 = AtomicU64::new(0);

/// Multi-output fused loop nests executed (plans run through
/// [`run_multi_with_target`] with more than one output buffer), for
/// observability and tests.
static MULTI_OUTPUT_NESTS: AtomicU64 = AtomicU64::new(0);

/// Fused interior rows and reduce loops whose chunks executed on a
/// hand-written `core::arch` ISA path (currently AVX2) instead of the
/// portable lane loops, for observability and tests — the proof that
/// [`Target::effective_isa`] dispatch actually fires. Counted per
/// loop/row, not per chunk, to keep the atomic off the chunk hot path.
static ARCH_ROWS: AtomicU64 = AtomicU64::new(0);

/// The execution tier of the current process-wide [`Target`]
/// ([`Target::current`]), expressed as the legacy [`SimdMode`].
#[deprecated(note = "use `Target::current().tier()`")]
#[allow(deprecated)]
pub fn simd_mode() -> SimdMode {
    match Target::current().tier() {
        Tier::Auto => SimdMode::Auto,
        Tier::Scalar => SimdMode::ForceScalar,
        Tier::Simd => SimdMode::ForceSimd,
    }
}

/// Override (or with `None`, un-override) the process-wide execution tier.
/// Shimmed onto [`crate::target::set_target_override`]: the override target
/// keeps the environment-resolved ISA features and pins only the tier.
/// Per-pipeline control is available via
/// [`crate::compile::CompileOptions::target`].
#[deprecated(note = "use `target::set_target_override`")]
#[allow(deprecated)]
pub fn set_simd_mode(mode: Option<SimdMode>) {
    set_target_override(mode.map(|m| {
        Target::from_env().with_tier(match m {
            SimdMode::Auto => Tier::Auto,
            SimdMode::ForceScalar => Tier::Scalar,
            SimdMode::ForceSimd => Tier::Simd,
        })
    }));
}

/// Number of innermost-loop rows executed through the fused-kernel interior
/// path since process start (monotonic; for tests and observability).
pub fn fused_rows_executed() -> u64 {
    FUSED_ROWS.load(Ordering::Relaxed)
}

/// Number of sub-width interior tails executed as fused chunks (masked or
/// overlapping) rather than peeled onto the per-op tier since process start
/// (monotonic; for tests and observability).
pub fn fused_tail_chunks_executed() -> u64 {
    FUSED_TAILS.load(Ordering::Relaxed)
}

/// Number of chunks accumulated by fused reduction kernels (the lane
/// tree-reduce path of lowered update definitions) since process start
/// (monotonic; for tests and observability).
pub fn reduce_chunks_executed() -> u64 {
    REDUCE_CHUNKS.load(Ordering::Relaxed)
}

/// Number of private accumulator buffers merged into outputs by the parallel
/// reduction accumulation path since process start (monotonic; for tests and
/// observability).
pub fn parallel_reduce_merges_executed() -> u64 {
    PARALLEL_REDUCE_MERGES.load(Ordering::Relaxed)
}

/// Number of sliding-window rows reused (shifted in place instead of
/// recomputed) since process start (monotonic; for tests and observability).
pub fn window_rows_reused() -> u64 {
    WINDOW_ROWS_REUSED.load(Ordering::Relaxed)
}

/// Number of multi-output fused nest executions (runs with more than one
/// output buffer) since process start (monotonic; for tests and
/// observability).
pub fn multi_output_nests_executed() -> u64 {
    MULTI_OUTPUT_NESTS.load(Ordering::Relaxed)
}

/// Number of fused rows / reduce loops whose chunks ran on a hand-written
/// `core::arch` ISA path since process start (monotonic; for tests and
/// observability).
pub fn arch_rows_executed() -> u64 {
    ARCH_ROWS.load(Ordering::Relaxed)
}

/// A scoped snapshot of the global execution counters, for tests that assert
/// exact deltas.
///
/// The counters are process-wide and monotonic, so a read-then-reset pattern
/// races against concurrently executing pipelines (another thread's
/// increments land between the read and the reset and are misattributed).
/// Snapshot/diff never resets: [`CounterSnapshot::take`] captures the
/// monotonic values, [`CounterSnapshot::delta`] subtracts a later snapshot —
/// concurrent activity can only *add* to a delta, never corrupt another
/// thread's baseline. Tests asserting exact counts should still serialize
/// their own executions (the counters cannot attribute increments to
/// pipelines), but unrelated parallel tests no longer flake each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// [`fused_rows_executed`] at snapshot time.
    pub fused_rows: u64,
    /// [`fused_tail_chunks_executed`] at snapshot time.
    pub fused_tails: u64,
    /// [`reduce_chunks_executed`] at snapshot time.
    pub reduce_chunks: u64,
    /// [`parallel_reduce_merges_executed`] at snapshot time.
    pub parallel_reduce_merges: u64,
    /// [`window_rows_reused`] at snapshot time.
    pub window_rows_reused: u64,
    /// [`multi_output_nests_executed`] at snapshot time.
    pub multi_output_nests: u64,
    /// [`arch_rows_executed`] at snapshot time.
    pub arch_rows: u64,
}

impl CounterSnapshot {
    /// Capture the current values of every execution counter.
    pub fn take() -> CounterSnapshot {
        CounterSnapshot {
            fused_rows: fused_rows_executed(),
            fused_tails: fused_tail_chunks_executed(),
            reduce_chunks: reduce_chunks_executed(),
            parallel_reduce_merges: parallel_reduce_merges_executed(),
            window_rows_reused: window_rows_reused(),
            multi_output_nests: multi_output_nests_executed(),
            arch_rows: arch_rows_executed(),
        }
    }

    /// The per-counter increments since this snapshot was taken.
    pub fn delta(&self) -> CounterSnapshot {
        let now = CounterSnapshot::take();
        CounterSnapshot {
            fused_rows: now.fused_rows.saturating_sub(self.fused_rows),
            fused_tails: now.fused_tails.saturating_sub(self.fused_tails),
            reduce_chunks: now.reduce_chunks.saturating_sub(self.reduce_chunks),
            parallel_reduce_merges: now
                .parallel_reduce_merges
                .saturating_sub(self.parallel_reduce_merges),
            window_rows_reused: now
                .window_rows_reused
                .saturating_sub(self.window_rows_reused),
            multi_output_nests: now
                .multi_output_nests
                .saturating_sub(self.multi_output_nests),
            arch_rows: now.arch_rows.saturating_sub(self.arch_rows),
        }
    }
}

// ---------------------------------------------------------------------------
// Slots: buffers addressable by compiled programs
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SlotDecl {
    ty: ScalarType,
    writable: bool,
}

/// A bound buffer: raw parts of either a caller-provided [`Buffer`] or a
/// scoped `Allocate` scratch vector.
#[derive(Debug, Clone)]
struct SlotBind {
    ptr: *mut u8,
    byte_len: usize,
    extents: Vec<usize>,
    strides: Vec<usize>,
}

impl SlotBind {
    /// Read-only view of the backing bytes.
    ///
    /// Sound per the module-level aliasing argument: buffers read through
    /// this are never written during the run.
    fn data(&self) -> &[u8] {
        // SAFETY: ptr/byte_len come from a live buffer borrow or a live
        // Allocate scratch vector; binds never outlive their buffer.
        unsafe { std::slice::from_raw_parts(self.ptr, self.byte_len) }
    }

    /// Write `bytes` at `byte_off` without forming a `&mut` over the buffer.
    #[inline]
    fn write(&self, byte_off: usize, bytes: &[u8]) {
        debug_assert!(byte_off + bytes.len() <= self.byte_len);
        // SAFETY: in-bounds per the debug assert (store indices are in range
        // by loop construction); concurrent writers target disjoint ranges
        // per the module-level invariant.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.ptr.add(byte_off), bytes.len());
        }
    }
}

/// Bind table shared across worker threads (cloned per thread; the raw
/// pointers alias, the metadata does not).
///
/// SAFETY: Send is sound per the module-level aliasing argument.
#[derive(Clone)]
struct BindTable(Vec<Option<SlotBind>>);

unsafe impl Send for BindTable {}

// ---------------------------------------------------------------------------
// Typed lane programs
// ---------------------------------------------------------------------------

/// One operation of a typed lane program. Operand kinds were resolved at
/// compile time; `promote_*` flags replicate `Value::as_f64` promotions.
#[derive(Debug, Clone)]
enum TOp {
    ConstI(i64),
    ConstF(f64),
    /// Push the loop variable at `depth`; stepped per lane when `depth` is
    /// the store's innermost loop.
    Var(usize),
    /// Convert the top int register to float (`as_f64`).
    I2F,
    /// Convert the top float register to int (`as_i64`).
    F2I,
    /// Integer binary op (both operands int), `eval_binop` int semantics.
    BinII(BinOp),
    /// Float arithmetic (Add/Sub/Mul/Div/Mod/Min/Max), float-branch
    /// semantics; `promote_*` converts an int operand first.
    BinFF {
        op: BinOp,
        promote_a: bool,
        promote_b: bool,
    },
    /// Bitwise/shift with a float operand: `eval_binop` float-branch
    /// semantics (`(x as i64) op (y as i64)`), yielding int.
    BinBitFF {
        op: BinOp,
        promote_a: bool,
        promote_b: bool,
    },
    CmpII(CmpOp),
    CmpFF {
        op: CmpOp,
        promote_a: bool,
        promote_b: bool,
    },
    /// Cast with an int source.
    CastI(ScalarType),
    /// Cast with a float source.
    CastF(ScalarType),
    /// `select(cond, t, f)`; branch kinds match by construction.
    Sel {
        cond_float: bool,
        branches_float: bool,
    },
    /// Extern call; all arguments already float.
    Call(ExternCall, usize),
    /// Clamped load from a buffer slot of element type `ty`.
    Load {
        slot: usize,
        arity: usize,
        ty: ScalarType,
    },
}

#[derive(Debug, Clone)]
struct Program {
    ops: Vec<TOp>,
    max_stack: usize,
    float_result: bool,
}

/// A store compiled to typed lane programs.
#[derive(Debug, Clone)]
struct TypedStore {
    slot: usize,
    index_progs: Vec<Program>,
    value_prog: Program,
}

/// A store that could not be typed statically; evaluated per element with
/// exact [`Value`] semantics.
#[derive(Debug, Clone)]
struct FallbackStore {
    slot: usize,
    indices: Vec<Expr>,
    value: Expr,
    var_depths: BTreeMap<String, usize>,
    slots: BTreeMap<String, usize>,
}

#[derive(Debug, Clone)]
enum StoreExec {
    Typed(TypedStore),
    Fallback(Box<FallbackStore>),
}

#[derive(Debug, Clone)]
struct CompiledStore {
    exec: StoreExec,
    /// Depth of the innermost enclosing loop (the lane dimension).
    lane_depth: usize,
    /// The fused SIMD lane kernel, when the store's shape admits one (tier 1;
    /// `exec` remains as the boundary-peel and fallback tier).
    fused: Option<FusedKernel>,
    /// Guarded (reduction) store: destination indices clamp to the buffer
    /// extents exactly like [`Buffer::set`], and the value may read the
    /// buffer being written — so the per-op tier must execute it with the
    /// read-modify-write ordering the enclosing loop nest dictates.
    clamp: bool,
    /// The fused accumulation kernel, when the guarded store is a
    /// loop-invariant integer accumulator (`F[c] = casts(F[c] + g(r))`) whose
    /// `g` fuses on an integer lane family: chunks of `g` are evaluated in
    /// lanes and folded with a wrapping tree-reduce.
    reduce: Option<ReduceKernel>,
    /// The deferred-accumulation plan, when the guarded store admits
    /// privatize-then-merge parallel reduction (see [`MergeAcc`]).
    merge: Option<MergeAcc>,
}

/// A guarded store admissible for *deferred accumulation*: the engine of
/// [`LoopKind::ParallelReduce`]. Applies to updates of the shape
/// `F[lhs] = C(F[lhs] + g(...))` where `C` is a chain of integer casts each
/// at least as wide as `F`'s element type, the self-read is exactly the LHS
/// point, and neither `g` nor the LHS index expressions read `F`.
///
/// Instead of the per-element read-modify-write, each worker evaluates the
/// LHS indices and `g` in lane batches over its slice of the reduction
/// domain and adds raw `i64` sums into a private per-thread buffer; the
/// buffers are then merged into `F` with one wrapping add and one truncating
/// store per touched cell.
///
/// **Exactness.** The reference applies `v ← read(write(C(v + gᵢ)))` per
/// element. Since every cast in `C` has width ≥ `F`'s element width
/// `w_out`, each step — cast chain, truncating store, extending load — is
/// congruent to the identity mod `2^w_out`, so the stored bytes after any
/// prefix of updates equal `(v₀ + Σ gᵢ) mod 2^w_out`. Addition commutes and
/// reassociates freely mod `2^w_out`, so accumulating the `gᵢ` in any order
/// and merging once is bit-identical — including cells never touched, whose
/// merge is skipped (a zero total would round-trip their bytes unchanged
/// anyway). Index and value loads clamp identically on every path
/// ([`TOp::Load`] is clamped), so batching needs no interior/boundary
/// splitting.
#[derive(Debug, Clone)]
struct MergeAcc {
    /// The lane-batched program computing `g` (integer result).
    g_prog: Program,
    /// Every slot read by the LHS index programs or `g`. If any of them is
    /// also written by a store merged in the same nest, the runner degrades
    /// to the serial reference path (privatization would reorder those
    /// reads relative to the writes).
    read_slots: Vec<usize>,
}

// ---------------------------------------------------------------------------
// Fused SIMD lane kernels (tier 1)
// ---------------------------------------------------------------------------

/// An affine index over enclosing loop *depths*, with the lane variable's
/// term factored out: `konst + Σ coeff·vars[depth]` (+ `x` for the
/// contiguous dimension, added at run time).
#[derive(Debug, Clone, PartialEq, Eq)]
struct DepthAffine {
    konst: i64,
    terms: Vec<(usize, i64)>,
}

impl DepthAffine {
    /// Evaluate against the current loop-variable values.
    fn eval(&self, vars: &[i64]) -> i64 {
        let mut v = self.konst;
        for &(depth, c) in &self.terms {
            v = v.wrapping_add(c.wrapping_mul(vars[depth]));
        }
        v
    }
}

/// How a tap's lanes map onto its buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TapLane {
    /// Dimension 0 steps one element per lane; other dimensions are
    /// lane-invariant. The interior loads `W` consecutive elements.
    Contiguous,
    /// Every dimension is lane-invariant: one scalar load, broadcast.
    Broadcast,
}

/// One load of a fused kernel: a buffer slot with per-dimension affine bases
/// (lane variable excluded) and the lane classification.
#[derive(Debug, Clone, PartialEq)]
struct TapAccess {
    slot: usize,
    ty: ScalarType,
    dims: Vec<DepthAffine>,
    lane: TapLane,
}

/// One op of an integer fused kernel: a stack machine over `[C; W]` chunks
/// with *wrapping* arithmetic, where `C` is the lane type's constant carrier
/// (`i32` for the narrow family, `i64` for the wide one).
///
/// For `[i32; W]` kernels compilation maintains the invariant that every
/// value on the stack holds the low 32 bits of the reference `i64` value;
/// value-sensitive ops are only emitted when interval analysis proved their
/// 32-bit result exact (see the module docs). For `[i64; W/2]` kernels the
/// lanes *are* the reference values and every op is exact by construction.
#[derive(Debug, Clone, PartialEq)]
enum VOp<C = i32> {
    /// Push a broadcast constant (for i32 lanes: the low 32 bits of the i64
    /// constant).
    Const(C),
    /// Push the loop variable at `depth` (a lane ramp at the lane depth).
    Var(usize),
    /// Push tap `tap`'s lanes (contiguous slice or broadcast scalar).
    Load(usize),
    /// Wrapping `a + b`.
    Add,
    /// Wrapping `a - b`.
    Sub,
    /// Wrapping `a * b`.
    Mul,
    /// Wrapping `top + c`.
    AddC(C),
    /// Wrapping `top * c`.
    MulC(C),
    /// Bitwise ops.
    And,
    Or,
    Xor,
    AndC(C),
    OrC(C),
    XorC(C),
    /// `top & mask` (narrowing casts; also zeroes lanes via `Mask(0)`).
    Mask(C),
    /// Logical shift right of lanes reinterpreted as unsigned (for i32
    /// lanes: operand proven within `[0, 2^32)`, where this equals the i64
    /// logical shift; for i64 lanes this *is* the reference shift).
    ShrU(u32),
    /// Wrapping shift left (count < lane width).
    Shl(u32),
    /// Sign-extend the low 32 bits (`v as i32 as i64`, the `Int32` cast on
    /// i64 lanes; the identity on i32 lanes, never emitted there).
    Sext32,
    /// Signed min/max (for i32 lanes: operands proven within i32).
    MinS,
    MaxS,
    /// Unsigned min/max (for i32 lanes: operands proven within `[0, 2^32)`;
    /// never emitted for i64 lanes — the reference compares signed i64).
    MinU,
    MaxU,
    /// Signed / unsigned comparison, yielding 0/1 lanes.
    CmpS(CmpOp),
    CmpU(CmpOp),
    /// `select(cond, t, f)` on three stack values.
    Sel,
    /// Fused multiply-accumulate: `top += coeff * tap` (wrapping).
    Axpy {
        tap: usize,
        coeff: C,
    },
}

/// One op of a float fused kernel, generic over the lane carrier `C`.
///
/// For `C = f32` (`[f32; W]` lanes) compilation maintains the invariant
/// that every lane holds a value bit-exactly representable in `f32` that
/// equals the reference `f64` value (rounded at the reference's own rounding
/// points): arithmetic ops are only emitted where the reference rounds —
/// under a `cast<float>` or at the `Float32` store — where one `f32`
/// rounding of exact operands equals compute-in-`f64`-then-round.
///
/// For `C = f64` (`[f64; W/2]` lanes) no discipline is needed: the reference
/// evaluator carries floats as `f64`, so the lanes ARE the reference values
/// and every op is exact by construction.
#[derive(Debug, Clone, PartialEq)]
enum FOp<C> {
    /// Push a broadcast constant (proven lane-exact at compile time).
    Const(C),
    /// Push the loop variable at `depth` as f32 lanes (a lane ramp at the
    /// lane depth; the variable's interval is proven f32-exact).
    Var(usize),
    /// Push tap `tap`'s lanes (f32 loads, or u8/u16 loads converted —
    /// exactly — to f32).
    Load(usize),
    /// Rounding-point arithmetic: one f32 rounding each.
    Add,
    Sub,
    Mul,
    Div,
    /// Exact selection ops, evaluated in f64 per lane to mirror
    /// [`eval_binop`]'s float branch bit-for-bit (NaN and ±0.0 included).
    Min,
    Max,
    /// Rounding-point square root.
    Sqrt,
    /// Comparison, yielding 1.0/0.0 mask lanes (the reference's 0/1 integers
    /// are f32-exact).
    Cmp(CmpOp),
    /// `select(cond, t, f)` on three stack values; the condition tests
    /// `lane != 0.0`, which matches `Value::is_true` on the exact value.
    Sel,
}

/// One op of a float fused kernel's **arch plan**: the [`FOp`] stream with
/// adjacent const/load/arithmetic patterns pre-fused at kernel-build time,
/// consumed only by the hand-written AVX2 evaluators (the `arch` module).
/// The portable evaluators never read it — they stay the oracle.
///
/// Why it exists: the integer families fuse their multiply-accumulate spine
/// into [`VOp::Axpy`], but float programs carry each `Const`/`Load`/`Mul`/
/// `Add` as a separate full-chunk pass through the stack arrays. A 7-tap
/// stencil pays ~13 such passes per chunk. The fused plan ops below let the
/// AVX2 path touch each tap exactly once, in registers, streaming full-width
/// contiguous taps straight from the bound buffer.
///
/// **Exactness.** Every fused op performs the same roundings in the same
/// operand order as the ops it replaces (`PushCMulLoad` = one `c * tap`
/// rounding, `AccAddCMulLoad` = that plus one `acc + _` rounding, etc.), so
/// the plan is bit-identical to the `FOp` stream by construction — including
/// NaN payload propagation, which on x86 follows operand order. Net stack
/// effect of each rewrite is preserved, so passthrough ops ([`AOp::Op`])
/// observe exactly the stack the portable evaluator would.
#[derive(Debug, Clone, PartialEq)]
enum AOp<C> {
    /// Passthrough: the original op, executed by the generic arch body.
    Op(FOp<C>),
    /// Push `c * tap` (from `Const(c), Load(t), Mul`).
    PushCMulLoad {
        tap: usize,
        c: C,
    },
    /// Push `tap * c` (from `Load(t), Const(c), Mul`).
    PushLoadMulC {
        tap: usize,
        c: C,
    },
    /// `top = top + c * tap` (from `PushCMulLoad, Add`).
    AccAddCMulLoad {
        tap: usize,
        c: C,
    },
    /// `top = top + tap * c` (from `PushLoadMulC, Add`).
    AccAddLoadMulC {
        tap: usize,
        c: C,
    },
    /// `top = top OP tap` (from `Load(t), Add/Sub/Mul/Div`).
    AccAddLoad(usize),
    AccSubLoad(usize),
    AccMulLoad(usize),
    AccDivLoad(usize),
    /// `top = top OP c` (from `Const(c), Add/Sub/Mul/Div`).
    AccAddC(C),
    AccSubC(C),
    AccMulC(C),
    AccDivC(C),
}

/// Pre-fuse a float op stream into its arch plan (see [`AOp`]). Each rewrite
/// consumes only ops whose operands are adjacent on the virtual stack, so
/// adjacency in the emitted plan proves the operands — no symbolic stack
/// simulation is needed.
fn build_arch_plan<C: Copy>(ops: &[FOp<C>]) -> Vec<AOp<C>> {
    let mut plan: Vec<AOp<C>> = Vec::with_capacity(ops.len());
    for op in ops {
        let fused = match op {
            FOp::Mul => match &plan[..] {
                [.., AOp::Op(FOp::Const(c)), AOp::Op(FOp::Load(t))] => {
                    Some((2, AOp::PushCMulLoad { tap: *t, c: *c }))
                }
                [.., AOp::Op(FOp::Load(t)), AOp::Op(FOp::Const(c))] => {
                    Some((2, AOp::PushLoadMulC { tap: *t, c: *c }))
                }
                [.., AOp::Op(FOp::Const(c))] => Some((1, AOp::AccMulC(*c))),
                [.., AOp::Op(FOp::Load(t))] => Some((1, AOp::AccMulLoad(*t))),
                _ => None,
            },
            FOp::Add => match &plan[..] {
                [.., AOp::PushCMulLoad { tap, c }] => {
                    Some((1, AOp::AccAddCMulLoad { tap: *tap, c: *c }))
                }
                [.., AOp::PushLoadMulC { tap, c }] => {
                    Some((1, AOp::AccAddLoadMulC { tap: *tap, c: *c }))
                }
                [.., AOp::Op(FOp::Const(c))] => Some((1, AOp::AccAddC(*c))),
                [.., AOp::Op(FOp::Load(t))] => Some((1, AOp::AccAddLoad(*t))),
                _ => None,
            },
            FOp::Sub => match &plan[..] {
                [.., AOp::Op(FOp::Const(c))] => Some((1, AOp::AccSubC(*c))),
                [.., AOp::Op(FOp::Load(t))] => Some((1, AOp::AccSubLoad(*t))),
                _ => None,
            },
            FOp::Div => match &plan[..] {
                [.., AOp::Op(FOp::Const(c))] => Some((1, AOp::AccDivC(*c))),
                [.., AOp::Op(FOp::Load(t))] => Some((1, AOp::AccDivLoad(*t))),
                _ => None,
            },
            _ => None,
        };
        match fused {
            Some((consumed, aop)) => {
                plan.truncate(plan.len() - consumed);
                plan.push(aop);
            }
            None => plan.push(AOp::Op(op.clone())),
        }
    }
    plan
}

/// The pre-built arch plan of a [`FusedKernel`], by lane family. Integer
/// programs carry none — their hot spine is already fused as [`VOp::Axpy`].
#[derive(Debug, Clone, PartialEq)]
enum ArchPlan {
    Int,
    F32(Vec<AOp<f32>>),
    F64(Vec<AOp<f64>>),
}

/// The lane program of a fused kernel, tagging which lane family it runs on.
#[derive(Debug, Clone, PartialEq)]
enum LaneProgram {
    /// `[i32; W]` wrapping lanes with interval-proven exactness.
    I32(Vec<VOp<i32>>),
    /// `[i64; W/2]` lanes carrying exact reference values.
    I64(Vec<VOp<i64>>),
    /// `[f32; W]` lanes with rounding-point discipline.
    F32(Vec<FOp<f32>>),
    /// `[f64; W/2]` lanes carrying exact reference float values.
    F64(Vec<FOp<f64>>),
}

/// The lane family a fused kernel was compiled for. See the module docs for
/// the per-family exactness invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneFamily {
    /// `[i32; W]` wrapping lanes (≤ 32-bit integer outputs, interval-proven).
    I32,
    /// `[i64; W/2]` exact-value lanes (any integer output, no proofs needed).
    I64,
    /// `[f32; W]` lanes (Float32 outputs, rounding-point discipline).
    F32,
    /// `[f64; W/2]` lanes (Float64 outputs; lanes are the reference values).
    F64,
}

/// Compile-time profile of one compiled store, for the cost model behind
/// `helium-tune`: which execution tier the store selected and the shape facts
/// that predict its per-element cost — all known without running the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreProfile {
    /// The fused SIMD lane family the store compiled for tier 1, if any
    /// (`None` means the store runs the per-op tier every time).
    pub fused: Option<LaneFamily>,
    /// Number of taps (source loads) of the fused kernel; 0 when unfused.
    pub taps: usize,
    /// Largest absolute constant offset across the fused taps' per-dimension
    /// affine bases — the stencil halo radius, which predicts how many
    /// boundary columns peel off the fused interior onto the per-op tier.
    pub max_tap_offset: i64,
    /// Guarded (reduction) store: clamped destination, read-modify-write
    /// ordering on the per-op tier.
    pub guarded: bool,
    /// The fused accumulation (lane tree-reduce) family, when the guarded
    /// store compiled one.
    pub reduce: Option<LaneFamily>,
    /// Whether the store admits privatize-then-merge deferred accumulation
    /// under a [`crate::stmt::LoopKind::ParallelReduce`] nest.
    pub parallel_reduce: bool,
    /// The instruction-set family the store's fused/reduce chunks will
    /// execute on under the profiled [`Target`] ([`Isa::Portable`] for
    /// unfused stores — the per-op and fallback tiers have no arch paths).
    pub selected_isa: Isa,
}

/// Per-lane-family fused-kernel counts of an [`ExecPlan`], for observability,
/// autotuner reporting and benchmark columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedStoreCounts {
    /// Stores fused on `[i32; W]` lanes.
    pub lanes_i32: usize,
    /// Stores fused on `[i64; W/2]` lanes.
    pub lanes_i64: usize,
    /// Stores fused on `[f32; W]` lanes.
    pub lanes_f32: usize,
    /// Stores fused on `[f64; W/2]` lanes.
    pub lanes_f64: usize,
}

impl FusedStoreCounts {
    /// Total fused stores across all lane families.
    pub fn total(&self) -> usize {
        self.lanes_i32 + self.lanes_i64 + self.lanes_f32 + self.lanes_f64
    }
}

/// A store compiled into a fused SIMD lane kernel: the lane program, its
/// taps, and the contiguous output access.
#[derive(Debug, Clone, PartialEq)]
struct FusedKernel {
    prog: LaneProgram,
    /// Pre-fused float op stream for the AVX2 evaluators (see [`AOp`]);
    /// [`ArchPlan::Int`] for the integer families.
    arch_plan: ArchPlan,
    taps: Vec<TapAccess>,
    /// Output slot (dimension 0 is contiguous in the lane variable).
    out_slot: usize,
    out_ty: ScalarType,
    /// Per-dimension output index bases (lane variable excluded).
    out_dims: Vec<DepthAffine>,
}

/// A guarded reduction store compiled into a fused accumulation kernel.
///
/// Applies to updates of the shape `F[lhs] = C(F[lhs] + g(...))` where the
/// LHS is invariant in the innermost (rdom) loop variable, `C` is a chain of
/// integer casts, the self-read is exactly the LHS point, and `g` — which
/// must not read `F` — compiles onto an integer lane family. Per entry of the
/// innermost loop the runner reads the accumulator once, folds chunk after
/// chunk of `g` lanes with a wrapping in-lane tree-reduce, replays `C`, and
/// stores once.
///
/// **Exactness.** The reference applies `v ← read(write(C(v + gᵢ)))` per
/// element. Every integer cast (and the buffer store/load round trip) is a
/// function of its operand's low `k` bits that is congruent to the identity
/// mod `2^k`, where `k` is the narrowest width in the chain — so the whole
/// step function depends only on `(v + gᵢ) mod 2^k` and addition commutes
/// and reassociates freely mod `2^k`. Chunked accumulation therefore yields
/// bit-identical bytes. For the `[i32; W]` family the lanes carry `g` mod
/// `2^32`, which covers every `k ≤ 32`; family selection restricts it to
/// stores of ≤ 32-bit types, and `[i64; W/2]` lanes are exact outright.
#[derive(Debug, Clone, PartialEq)]
struct ReduceKernel {
    /// The lane program computing `g` (integer families only).
    prog: LaneProgram,
    /// Taps of `g` over the innermost loop variable.
    taps: Vec<TapAccess>,
    /// Accumulator buffer slot.
    out_slot: usize,
    /// Accumulator element type.
    out_ty: ScalarType,
    /// Per-dimension LHS index bases (invariant in the lane variable;
    /// clamped to the buffer extents at run time, like [`Buffer::set`]).
    out_dims: Vec<DepthAffine>,
    /// The peeled integer-cast chain `C`, outermost first, replayed onto the
    /// accumulated value before the final store.
    casts: Vec<ScalarType>,
}

impl ReduceKernel {
    /// The lane family the kernel accumulates on.
    fn family(&self) -> LaneFamily {
        match self.prog {
            LaneProgram::I32(_) => LaneFamily::I32,
            LaneProgram::I64(_) => LaneFamily::I64,
            LaneProgram::F32(_) | LaneProgram::F64(_) => {
                unreachable!("reduce kernels are integer-only")
            }
        }
    }

    /// Chunk width: reductions always accumulate at the widest chunk
    /// ([`MAX_CHUNK`] lanes for i32, half for i64) — there is no scheduled
    /// lane loop to inherit a width from.
    fn chunk_width(&self) -> usize {
        match self.family() {
            LaneFamily::I32 => MAX_CHUNK,
            LaneFamily::I64 => MAX_CHUNK / 2,
            LaneFamily::F32 | LaneFamily::F64 => {
                unreachable!("reduce kernels are integer-only")
            }
        }
    }
}

impl FusedKernel {
    /// The lane family this kernel runs on.
    fn family(&self) -> LaneFamily {
        match self.prog {
            LaneProgram::I32(_) => LaneFamily::I32,
            LaneProgram::I64(_) => LaneFamily::I64,
            LaneProgram::F32(_) => LaneFamily::F32,
            LaneProgram::F64(_) => LaneFamily::F64,
        }
    }

    /// The chunk width used for a scheduled vector width: {8, 16, 32} lanes
    /// for the i32/f32 families, half that ({4, 8, 16}) for the 64-bit-wide
    /// i64/f64 lanes so one chunk covers the same number of vector registers.
    fn chunk_width(&self, width: usize) -> usize {
        let w = if width >= 32 {
            32
        } else if width >= 16 {
            16
        } else {
            8
        };
        match self.family() {
            LaneFamily::I32 | LaneFamily::F32 => w,
            LaneFamily::I64 | LaneFamily::F64 => w / 2,
        }
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Int,
    Float,
}

enum CompileFail {
    /// Fall back to the per-element evaluator (e.g. dynamically typed select).
    Soft,
    /// A real error (missing input/param, undefined func).
    Hard(RealizeError),
}

struct Compiler<'a> {
    var_depths: &'a BTreeMap<String, usize>,
    slot_ids: &'a BTreeMap<String, usize>,
    decls: &'a [SlotDecl],
    params: &'a BTreeMap<String, Value>,
}

struct Emit {
    ops: Vec<TOp>,
    cur: usize,
    max: usize,
}

impl Emit {
    fn new() -> Emit {
        Emit {
            ops: Vec::new(),
            cur: 0,
            max: 0,
        }
    }

    fn push(&mut self, op: TOp, delta: isize) {
        self.ops.push(op);
        self.cur = (self.cur as isize + delta) as usize;
        self.max = self.max.max(self.cur);
    }
}

impl Compiler<'_> {
    fn compile(&self, e: &Expr, out: &mut Emit) -> Result<Kind, CompileFail> {
        match e {
            Expr::Var(name) | Expr::RVar(name) => {
                let depth =
                    self.var_depths.get(name).copied().ok_or_else(|| {
                        CompileFail::Hard(RealizeError::MissingParam(name.clone()))
                    })?;
                out.push(TOp::Var(depth), 1);
                Ok(Kind::Int)
            }
            Expr::ConstInt(v, ty) => {
                if ty.is_float() {
                    out.push(TOp::ConstF(*v as f64), 1);
                    Ok(Kind::Float)
                } else {
                    out.push(TOp::ConstI(*v), 1);
                    Ok(Kind::Int)
                }
            }
            Expr::ConstFloat(v, _) => {
                out.push(TOp::ConstF(*v), 1);
                Ok(Kind::Float)
            }
            Expr::Param(name, _) => {
                let v =
                    self.params.get(name).copied().ok_or_else(|| {
                        CompileFail::Hard(RealizeError::MissingParam(name.clone()))
                    })?;
                match v {
                    Value::Int(i) => {
                        out.push(TOp::ConstI(i), 1);
                        Ok(Kind::Int)
                    }
                    Value::Float(f) => {
                        out.push(TOp::ConstF(f), 1);
                        Ok(Kind::Float)
                    }
                }
            }
            Expr::Cast(ty, inner) => {
                let k = self.compile(inner, out)?;
                match k {
                    Kind::Int => out.push(TOp::CastI(*ty), 0),
                    Kind::Float => out.push(TOp::CastF(*ty), 0),
                }
                Ok(if ty.is_float() {
                    Kind::Float
                } else {
                    Kind::Int
                })
            }
            Expr::Binary(op, a, b) => {
                let ka = self.compile(a, out)?;
                let kb = self.compile(b, out)?;
                let bitwise = matches!(
                    op,
                    BinOp::Shr | BinOp::Shl | BinOp::And | BinOp::Or | BinOp::Xor
                );
                if ka == Kind::Int && kb == Kind::Int {
                    out.push(TOp::BinII(*op), -1);
                    Ok(Kind::Int)
                } else if bitwise {
                    out.push(
                        TOp::BinBitFF {
                            op: *op,
                            promote_a: ka == Kind::Int,
                            promote_b: kb == Kind::Int,
                        },
                        -1,
                    );
                    Ok(Kind::Int)
                } else {
                    out.push(
                        TOp::BinFF {
                            op: *op,
                            promote_a: ka == Kind::Int,
                            promote_b: kb == Kind::Int,
                        },
                        -1,
                    );
                    Ok(Kind::Float)
                }
            }
            Expr::Cmp(op, a, b) => {
                let ka = self.compile(a, out)?;
                let kb = self.compile(b, out)?;
                if ka == Kind::Int && kb == Kind::Int {
                    out.push(TOp::CmpII(*op), -1);
                } else {
                    out.push(
                        TOp::CmpFF {
                            op: *op,
                            promote_a: ka == Kind::Int,
                            promote_b: kb == Kind::Int,
                        },
                        -1,
                    );
                }
                Ok(Kind::Int)
            }
            Expr::Select(c, t, f) => {
                let kc = self.compile(c, out)?;
                let kt = self.compile(t, out)?;
                let kf = self.compile(f, out)?;
                if kt != kf {
                    // Dynamically typed select: the interpreter picks the
                    // branch value unchanged, so the result type varies per
                    // element. Use the fallback evaluator.
                    return Err(CompileFail::Soft);
                }
                out.push(
                    TOp::Sel {
                        cond_float: kc == Kind::Float,
                        branches_float: kt == Kind::Float,
                    },
                    -2,
                );
                Ok(kt)
            }
            Expr::Call(call, args) => {
                for a in args {
                    let k = self.compile(a, out)?;
                    if k == Kind::Int {
                        out.push(TOp::I2F, 0);
                    }
                }
                out.push(TOp::Call(*call, args.len()), 1 - args.len() as isize);
                Ok(Kind::Float)
            }
            Expr::Image(name, args) | Expr::FuncRef(name, args) => {
                let slot = self.slot_ids.get(name).copied().ok_or_else(|| {
                    CompileFail::Hard(match e {
                        Expr::Image(..) => RealizeError::MissingInput(name.clone()),
                        _ => RealizeError::UndefinedFunc(name.clone()),
                    })
                })?;
                for a in args {
                    let k = self.compile(a, out)?;
                    if k == Kind::Float {
                        out.push(TOp::F2I, 0);
                    }
                }
                let ty = self.decls[slot].ty;
                out.push(
                    TOp::Load {
                        slot,
                        arity: args.len(),
                        ty,
                    },
                    1 - args.len() as isize,
                );
                Ok(if ty.is_float() {
                    Kind::Float
                } else {
                    Kind::Int
                })
            }
        }
    }

    fn compile_program(&self, e: &Expr, force_int: bool) -> Result<Program, CompileFail> {
        let mut emit = Emit::new();
        let kind = self.compile(e, &mut emit)?;
        let mut float_result = kind == Kind::Float;
        if force_int && float_result {
            emit.push(TOp::F2I, 0);
            float_result = false;
        }
        Ok(Program {
            ops: emit.ops,
            max_stack: emit.max.max(1),
            float_result,
        })
    }
}

// ---------------------------------------------------------------------------
// Fused-kernel compilation
// ---------------------------------------------------------------------------

/// Evaluate `e` to an integer constant when it is one (constants, bound
/// integer params, and integer casts thereof).
fn const_int_of(e: &Expr, params: &BTreeMap<String, Value>) -> Option<i64> {
    match e {
        Expr::ConstInt(v, ty) if !ty.is_float() => Some(*v),
        Expr::Param(name, _) => match params.get(name) {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        },
        Expr::Cast(ty, inner) if !ty.is_float() => {
            const_int_of(inner, params).map(|v| Value::Int(v).cast(*ty).as_i64())
        }
        _ => None,
    }
}

/// Emission state of one fused kernel, generic over the lane-op type.
struct VEmit<Op> {
    ops: Vec<Op>,
    taps: Vec<TapAccess>,
    cur: usize,
    max: usize,
}

impl<Op> VEmit<Op> {
    fn new() -> VEmit<Op> {
        VEmit {
            ops: Vec::new(),
            taps: Vec::new(),
            cur: 0,
            max: 0,
        }
    }

    fn push(&mut self, op: Op, delta: isize) {
        self.ops.push(op);
        self.cur = (self.cur as isize + delta) as usize;
        self.max = self.max.max(self.cur);
    }

    /// Register a tap access, deduplicating identical ones.
    fn tap(&mut self, tap: TapAccess) -> usize {
        match emitted_tap(&self.taps, &tap) {
            Some(i) => i,
            None => {
                self.taps.push(tap);
                self.taps.len() - 1
            }
        }
    }
}

/// Compiles one store into a [`FusedKernel`] on the best lane family its
/// output type and value shape admit, failing (with `None`) on any shape no
/// family's exactness invariant can cover; the caller keeps the per-op tier
/// in that case.
struct FusedBuilder<'a> {
    var_depths: &'a BTreeMap<String, usize>,
    var_bounds: &'a BTreeMap<String, Interval>,
    slot_ids: &'a BTreeMap<String, usize>,
    decls: &'a [SlotDecl],
    params: &'a BTreeMap<String, Value>,
    /// Variable of the innermost enclosing loop (the lane dimension).
    lane_var: &'a str,
    out_slot: usize,
}

impl FusedBuilder<'_> {
    /// Family selection: narrow integer outputs try the proven `[i32; W]`
    /// family first (twice the lanes per register) and fall back to the
    /// proof-free `[i64; W/2]` family; `UInt64` outputs go straight to i64
    /// lanes; `Float32` outputs use the `[f32; W]` family. `self_alias` is
    /// the name-level check ([`value_reads_buffer`]) computed by the caller —
    /// a self-aliasing store must not fuse at all (chunked evaluation would
    /// read lanes written earlier in the same row).
    fn build(&self, indices: &[Expr], value: &Expr, self_alias: bool) -> Option<FusedKernel> {
        if self_alias {
            return None;
        }
        let out_ty = self.decls[self.out_slot].ty;
        // The store must be contiguous along the lane variable.
        let (out_dims, out_lane) = self.access_dims(indices)?;
        if out_lane != Some(TapLane::Contiguous) {
            return None;
        }
        let built = match out_ty {
            ScalarType::UInt8 | ScalarType::UInt16 | ScalarType::UInt32 | ScalarType::Int32 => {
                self.build_i32(value).or_else(|| self.build_i64(value))
            }
            ScalarType::UInt64 => self.build_i64(value),
            ScalarType::Float32 => self.build_f32(value),
            // Float64 values are the reference representation itself, so the
            // `[f64; W/2]` family is exact by construction (no rounding
            // discipline needed — every FOp mirrors the reference op).
            ScalarType::Float64 => self.build_f64(value),
        };
        let (prog, taps) = built?;
        // A tap aliasing the output would read lanes the kernel just wrote
        // (slot-level check; `self_alias` already covered the name level).
        if taps.iter().any(|t| t.slot == self.out_slot) {
            return None;
        }
        let arch_plan = match &prog {
            LaneProgram::F32(ops) => ArchPlan::F32(build_arch_plan(ops)),
            LaneProgram::F64(ops) => ArchPlan::F64(build_arch_plan(ops)),
            _ => ArchPlan::Int,
        };
        Some(FusedKernel {
            prog,
            arch_plan,
            taps,
            out_slot: self.out_slot,
            out_ty,
            out_dims,
        })
    }

    /// Compile a guarded reduction store into a [`ReduceKernel`] when its
    /// shape admits one (see the kernel's docs for the pattern and proof).
    /// `None` keeps the per-op tier, which is always correct.
    fn build_reduce(&self, indices: &[Expr], value: &Expr) -> Option<ReduceKernel> {
        // Peel the integer-cast chain wrapping the accumulation.
        let mut casts = Vec::new();
        let mut v = value;
        while let Expr::Cast(ty, inner) = v {
            if ty.is_float() {
                return None;
            }
            casts.push(*ty);
            v = inner;
        }
        let Expr::Binary(BinOp::Add, a, b) = v else {
            return None;
        };
        // One side must be the bare self-read of exactly the LHS point.
        let is_self = |e: &Expr| {
            matches!(e, Expr::FuncRef(name, args)
                if self.slot_ids.get(name) == Some(&self.out_slot) && args.as_slice() == indices)
        };
        let g = match (is_self(a), is_self(b)) {
            (true, false) => b,
            (false, true) => a,
            _ => return None,
        };
        // The LHS must be affine and invariant in the lane (innermost rdom)
        // variable: the accumulator cell is fixed for the whole inner loop.
        let (out_dims, lane) = self.access_dims(indices)?;
        if lane != Some(TapLane::Broadcast) {
            return None;
        }
        let out_ty = self.decls[self.out_slot].ty;
        // Family selection mirrors pure stores: ≤ 32-bit accumulators may
        // ride i32 lanes (sums mod 2^32 cover every k ≤ 32), UInt64 needs
        // exact i64 lanes, floats never fuse (f32 addition is not
        // associative, so a tree-reduce would not be bit-exact).
        let built = match out_ty {
            ScalarType::UInt8 | ScalarType::UInt16 | ScalarType::UInt32 | ScalarType::Int32 => {
                self.build_i32(g).or_else(|| self.build_i64(g))
            }
            ScalarType::UInt64 => self.build_i64(g),
            ScalarType::Float32 | ScalarType::Float64 => None,
        };
        let (prog, taps) = built?;
        // `g` must not read the accumulator: its chunks are evaluated before
        // the (single) store, so a read of `F` would observe a stale value
        // the reference path refreshes per element.
        if taps.iter().any(|t| t.slot == self.out_slot) {
            return None;
        }
        Some(ReduceKernel {
            prog,
            taps,
            out_slot: self.out_slot,
            out_ty,
            out_dims,
            casts,
        })
    }

    fn build_i32(&self, value: &Expr) -> Option<(LaneProgram, Vec<TapAccess>)> {
        let mut emit = VEmit::new();
        self.fuse(value, &mut emit)?;
        if emit.max > V_STACK {
            return None;
        }
        peephole(&mut emit.ops);
        Some((LaneProgram::I32(emit.ops), emit.taps))
    }

    fn build_i64(&self, value: &Expr) -> Option<(LaneProgram, Vec<TapAccess>)> {
        let mut emit = VEmit::new();
        self.fuse64(value, &mut emit)?;
        if emit.max > V_STACK {
            return None;
        }
        peephole(&mut emit.ops);
        Some((LaneProgram::I64(emit.ops), emit.taps))
    }

    fn build_f32(&self, value: &Expr) -> Option<(LaneProgram, Vec<TapAccess>)> {
        let mut emit = VEmit::new();
        // The `Float32` store narrows the value exactly like a `cast<float>`,
        // so the top level is itself a rounding point.
        self.fuse_f32_rounding(value, &mut emit)?;
        if emit.max > V_STACK {
            return None;
        }
        Some((LaneProgram::F32(emit.ops), emit.taps))
    }

    fn build_f64(&self, value: &Expr) -> Option<(LaneProgram, Vec<TapAccess>)> {
        let mut emit = VEmit::new();
        self.fuse_f64(value, &mut emit)?;
        if emit.max > V_STACK {
            return None;
        }
        Some((LaneProgram::F64(emit.ops), emit.taps))
    }

    /// Decompose an access's index expressions into per-dimension affine
    /// bases with the lane term removed, and classify the access along the
    /// lane variable: contiguous (dimension 0 steps by one, the rest
    /// invariant), broadcast (all invariant), or `None` lane classification
    /// for strided/transposed patterns.
    #[allow(clippy::type_complexity)]
    fn access_dims(&self, args: &[Expr]) -> Option<(Vec<DepthAffine>, Option<TapLane>)> {
        let affine: Vec<AffineIndex> = args
            .iter()
            .map(|arg| AffineIndex::decompose(arg, self.params))
            .collect::<Option<_>>()?;
        let mut dims = Vec::with_capacity(affine.len());
        for a in &affine {
            let mut terms = Vec::new();
            for (v, c) in &a.coeffs {
                if v == self.lane_var {
                    continue;
                }
                terms.push((*self.var_depths.get(v)?, *c));
            }
            dims.push(DepthAffine {
                konst: a.konst,
                terms,
            });
        }
        let lane = if access_contiguous_in(&affine, self.lane_var) {
            Some(TapLane::Contiguous)
        } else if access_invariant_in(&affine, self.lane_var) {
            Some(TapLane::Broadcast)
        } else {
            None
        };
        Some((dims, lane))
    }

    /// Classify and decompose a tap access.
    fn tap_dims(&self, args: &[Expr]) -> Option<(Vec<DepthAffine>, TapLane)> {
        let (dims, lane) = self.access_dims(args)?;
        lane.map(|lane| (dims, lane))
    }

    /// Compile `e`, pushing ops that leave its lanes on the stack, and return
    /// a sound interval of the reference `i64` value. `None` aborts fusion.
    fn fuse(&self, e: &Expr, out: &mut VEmit<VOp<i32>>) -> Option<Interval> {
        match e {
            Expr::ConstInt(v, ty) if !ty.is_float() => {
                out.push(VOp::Const(*v as i32), 1);
                Some(Interval::point(*v))
            }
            Expr::ConstInt(..) | Expr::ConstFloat(..) | Expr::Call(..) => None,
            Expr::Param(name, _) => match self.params.get(name) {
                Some(Value::Int(v)) => {
                    out.push(VOp::Const(*v as i32), 1);
                    Some(Interval::point(*v))
                }
                _ => None,
            },
            Expr::Var(name) | Expr::RVar(name) => {
                let depth = *self.var_depths.get(name)?;
                let iv = *self.var_bounds.get(name)?;
                // Lane ramps compute `x + l` in i32.
                if !iv.within(Interval::i32_range()) {
                    return None;
                }
                out.push(VOp::Var(depth), 1);
                Some(iv)
            }
            Expr::Cast(ty, inner) => {
                let iv = self.fuse(inner, out)?;
                match ty {
                    // Identity on the i64 value.
                    ScalarType::UInt64 => Some(iv),
                    // Reinterpretations of the low 32 bits: no lane op, only
                    // the interval changes.
                    ScalarType::UInt32 => Some(if iv.within(Interval::u32_range()) {
                        iv
                    } else {
                        Interval::u32_range()
                    }),
                    ScalarType::Int32 => Some(if iv.within(Interval::i32_range()) {
                        iv
                    } else {
                        Interval::i32_range()
                    }),
                    ScalarType::UInt16 | ScalarType::UInt8 => {
                        let mask = if *ty == ScalarType::UInt8 {
                            0xff
                        } else {
                            0xffff
                        };
                        if iv.within(Interval { min: 0, max: mask }) {
                            Some(iv)
                        } else {
                            out.push(VOp::Mask(mask as i32), 0);
                            Some(Interval { min: 0, max: mask })
                        }
                    }
                    ScalarType::Float32 | ScalarType::Float64 => None,
                }
            }
            Expr::Binary(op, a, b) => self.fuse_binary(*op, a, b, out),
            Expr::Cmp(op, a, b) => {
                let ia = self.fuse(a, out)?;
                let ib = self.fuse(b, out)?;
                if ia.within(Interval::i32_range()) && ib.within(Interval::i32_range()) {
                    out.push(VOp::CmpS(*op), -1);
                } else if ia.within(Interval::u32_range()) && ib.within(Interval::u32_range()) {
                    out.push(VOp::CmpU(*op), -1);
                } else {
                    return None;
                }
                Some(Interval { min: 0, max: 1 })
            }
            Expr::Select(c, t, f) => {
                let ic = self.fuse(c, out)?;
                // The truth test is on lanes; sound iff zero-faithful, i.e.
                // the value is within [i32::MIN, u32::MAX] so value == 0
                // exactly when its low 32 bits are 0.
                if !ic.within(Interval {
                    min: i32::MIN as i64,
                    max: u32::MAX as i64,
                }) {
                    return None;
                }
                let it = self.fuse(t, out)?;
                let if_ = self.fuse(f, out)?;
                out.push(VOp::Sel, -2);
                Some(it.union(if_))
            }
            Expr::Image(name, args) | Expr::FuncRef(name, args) => {
                let slot = *self.slot_ids.get(name)?;
                let ty = self.decls[slot].ty;
                let iv = Interval::of_type(ty)?;
                let (dims, lane) = self.tap_dims(args)?;
                let tap = TapAccess {
                    slot,
                    ty,
                    dims,
                    lane,
                };
                let idx = out.tap(tap);
                out.push(VOp::Load(idx), 1);
                Some(iv)
            }
        }
    }

    fn fuse_binary(
        &self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        out: &mut VEmit<VOp<i32>>,
    ) -> Option<Interval> {
        match op {
            // Quotient/remainder lanes would need exact i64 semantics
            // (including divide-by-zero and i32::MIN edge cases) — rare in
            // stencils; keep them on the per-op tier.
            BinOp::Div | BinOp::Mod => None,
            BinOp::Shr => {
                let s_raw = const_int_of(b, self.params)?;
                let s = (s_raw as u64 & 63) as u32;
                let ia = self.fuse(a, out)?;
                // The i64 shift is logical; it agrees with a 32-bit unsigned
                // shift only for operands within [0, 2^32).
                if !ia.within(Interval::u32_range()) {
                    return None;
                }
                if s == 0 {
                    Some(ia)
                } else if s >= 32 {
                    out.push(VOp::Mask(0), 0);
                    Some(Interval::point(0))
                } else {
                    out.push(VOp::ShrU(s), 0);
                    Some(Interval {
                        min: ia.min >> s,
                        max: ia.max >> s,
                    })
                }
            }
            BinOp::Shl => {
                let s_raw = const_int_of(b, self.params)?;
                // eval_binop: `wrapping_shl(y as u32)`, which masks by 63.
                let s = (s_raw as u32) & 63;
                let ia = self.fuse(a, out)?;
                let iv = combine(BinOp::Shl, ia, Interval::point(s_raw));
                if s < 32 {
                    if s > 0 {
                        out.push(VOp::Shl(s), 0);
                    }
                } else {
                    // The low 32 bits of `v << s` are zero for s >= 32.
                    out.push(VOp::Mask(0), 0);
                }
                Some(iv)
            }
            BinOp::Min | BinOp::Max => {
                let ia = self.fuse(a, out)?;
                let ib = self.fuse(b, out)?;
                let signed = ia.within(Interval::i32_range()) && ib.within(Interval::i32_range());
                let unsigned = ia.within(Interval::u32_range()) && ib.within(Interval::u32_range());
                let vop = match (op, signed, unsigned) {
                    (BinOp::Min, true, _) => VOp::MinS,
                    (BinOp::Max, true, _) => VOp::MaxS,
                    (BinOp::Min, false, true) => VOp::MinU,
                    (BinOp::Max, false, true) => VOp::MaxU,
                    _ => return None,
                };
                out.push(vop, -1);
                Some(combine(op, ia, ib))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor => {
                // Wrapping/bitwise ops are homomorphic in the low 32 bits, so
                // they are emitted unconditionally; the interval (saturating
                // to "everything" on potential i64 wrap) is what downstream
                // value-sensitive ops validate against.
                let ka = const_int_of(a, self.params);
                let kb = const_int_of(b, self.params);
                let commutes = matches!(
                    op,
                    BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
                );
                let fold = |k: i64, o: &mut VEmit<VOp<i32>>| match op {
                    BinOp::Add => o.push(VOp::AddC(k as i32), 0),
                    BinOp::Sub => o.push(VOp::AddC((k.wrapping_neg()) as i32), 0),
                    BinOp::Mul => o.push(VOp::MulC(k as i32), 0),
                    BinOp::And => o.push(VOp::AndC(k as i32), 0),
                    BinOp::Or => o.push(VOp::OrC(k as i32), 0),
                    BinOp::Xor => o.push(VOp::XorC(k as i32), 0),
                    _ => unreachable!("folded ops are wrapping/bitwise"),
                };
                if let Some(k) = kb {
                    let ia = self.fuse(a, out)?;
                    if !(k == 0 && matches!(op, BinOp::Add | BinOp::Sub)) {
                        fold(k, out);
                    }
                    return Some(combine(op, ia, Interval::point(k)));
                }
                if let (Some(k), true) = (ka, commutes) {
                    let ib = self.fuse(b, out)?;
                    if !(k == 0 && op == BinOp::Add) {
                        fold(k, out);
                    }
                    return Some(combine(op, Interval::point(k), ib));
                }
                let ia = self.fuse(a, out)?;
                let ib = self.fuse(b, out)?;
                let vop = match op {
                    BinOp::Add => VOp::Add,
                    BinOp::Sub => VOp::Sub,
                    BinOp::Mul => VOp::Mul,
                    BinOp::And => VOp::And,
                    BinOp::Or => VOp::Or,
                    BinOp::Xor => VOp::Xor,
                    _ => unreachable!("matched above"),
                };
                out.push(vop, -1);
                Some(combine(op, ia, ib))
            }
        }
    }

    // -- The `[i64; W/2]` family: lanes are the reference `i64` value -------

    /// Compile `e` onto i64 lanes. Unlike [`Self::fuse`] there is no interval
    /// bookkeeping: every emitted op replicates the [`eval_binop`] /
    /// [`eval_cmp`] / [`Value::cast`] integer semantics verbatim on the full
    /// 64-bit value, so exactness holds by construction and `None` only means
    /// "shape not expressible" (float operands, non-constant shift counts,
    /// division), never "unprovable".
    fn fuse64(&self, e: &Expr, out: &mut VEmit<VOp<i64>>) -> Option<()> {
        match e {
            Expr::ConstInt(v, ty) if !ty.is_float() => {
                out.push(VOp::Const(*v), 1);
                Some(())
            }
            Expr::ConstInt(..) | Expr::ConstFloat(..) | Expr::Call(..) => None,
            Expr::Param(name, _) => match self.params.get(name) {
                Some(Value::Int(v)) => {
                    out.push(VOp::Const(*v), 1);
                    Some(())
                }
                _ => None,
            },
            Expr::Var(name) | Expr::RVar(name) => {
                let depth = *self.var_depths.get(name)?;
                out.push(VOp::Var(depth), 1);
                Some(())
            }
            Expr::Cast(ty, inner) => {
                self.fuse64(inner, out)?;
                match ty {
                    // Value::cast keeps the i64 bits for UInt64.
                    ScalarType::UInt64 => {}
                    ScalarType::UInt8 => out.push(VOp::Mask(0xff), 0),
                    ScalarType::UInt16 => out.push(VOp::Mask(0xffff), 0),
                    ScalarType::UInt32 => out.push(VOp::Mask(0xffff_ffff), 0),
                    ScalarType::Int32 => out.push(VOp::Sext32, 0),
                    ScalarType::Float32 | ScalarType::Float64 => return None,
                }
                Some(())
            }
            Expr::Binary(op, a, b) => self.fuse64_binary(*op, a, b, out),
            Expr::Cmp(op, a, b) => {
                // eval_cmp's integer branch compares signed i64 regardless of
                // the operands' nominal unsigned types.
                self.fuse64(a, out)?;
                self.fuse64(b, out)?;
                out.push(VOp::CmpS(*op), -1);
                Some(())
            }
            Expr::Select(c, t, f) => {
                // Lanes hold the exact value, so `lane != 0` is Value::is_true
                // with no zero-faithfulness caveat.
                self.fuse64(c, out)?;
                self.fuse64(t, out)?;
                self.fuse64(f, out)?;
                out.push(VOp::Sel, -2);
                Some(())
            }
            Expr::Image(name, args) | Expr::FuncRef(name, args) => {
                let slot = *self.slot_ids.get(name)?;
                let ty = self.decls[slot].ty;
                if ty.is_float() {
                    return None;
                }
                let (dims, lane) = self.tap_dims(args)?;
                let idx = out.tap(TapAccess {
                    slot,
                    ty,
                    dims,
                    lane,
                });
                out.push(VOp::Load(idx), 1);
                Some(())
            }
        }
    }

    fn fuse64_binary(
        &self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        out: &mut VEmit<VOp<i64>>,
    ) -> Option<()> {
        match op {
            // Quotient/remainder lanes would have to replicate the
            // divide-by-zero and i64::MIN / -1 edge cases per lane — rare in
            // stencils; keep them on the per-op tier (as the i32 family does).
            BinOp::Div | BinOp::Mod => None,
            BinOp::Shr => {
                // eval_binop: `(x as u64) >> (y as u64 & 63)` — exactly ShrU.
                let s = (const_int_of(b, self.params)? as u64 & 63) as u32;
                self.fuse64(a, out)?;
                if s > 0 {
                    out.push(VOp::ShrU(s), 0);
                }
                Some(())
            }
            BinOp::Shl => {
                // eval_binop: `wrapping_shl(y as u32)`, which masks by 63.
                let s = (const_int_of(b, self.params)? as u32) & 63;
                self.fuse64(a, out)?;
                if s > 0 {
                    out.push(VOp::Shl(s), 0);
                }
                Some(())
            }
            BinOp::Min | BinOp::Max => {
                // eval_binop's integer branch is signed i64 min/max.
                self.fuse64(a, out)?;
                self.fuse64(b, out)?;
                out.push(
                    if op == BinOp::Min {
                        VOp::MinS
                    } else {
                        VOp::MaxS
                    },
                    -1,
                );
                Some(())
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor => {
                let ka = const_int_of(a, self.params);
                let kb = const_int_of(b, self.params);
                let commutes = matches!(
                    op,
                    BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
                );
                let fold = |k: i64, o: &mut VEmit<VOp<i64>>| match op {
                    BinOp::Add => o.push(VOp::AddC(k), 0),
                    BinOp::Sub => o.push(VOp::AddC(k.wrapping_neg()), 0),
                    BinOp::Mul => o.push(VOp::MulC(k), 0),
                    BinOp::And => o.push(VOp::AndC(k), 0),
                    BinOp::Or => o.push(VOp::OrC(k), 0),
                    BinOp::Xor => o.push(VOp::XorC(k), 0),
                    _ => unreachable!("folded ops are wrapping/bitwise"),
                };
                if let Some(k) = kb {
                    self.fuse64(a, out)?;
                    if !(k == 0 && matches!(op, BinOp::Add | BinOp::Sub)) {
                        fold(k, out);
                    }
                    return Some(());
                }
                if let (Some(k), true) = (ka, commutes) {
                    self.fuse64(b, out)?;
                    if !(k == 0 && op == BinOp::Add) {
                        fold(k, out);
                    }
                    return Some(());
                }
                self.fuse64(a, out)?;
                self.fuse64(b, out)?;
                let vop = match op {
                    BinOp::Add => VOp::Add,
                    BinOp::Sub => VOp::Sub,
                    BinOp::Mul => VOp::Mul,
                    BinOp::And => VOp::And,
                    BinOp::Or => VOp::Or,
                    BinOp::Xor => VOp::Xor,
                    _ => unreachable!("matched above"),
                };
                out.push(vop, -1);
                Some(())
            }
        }
    }

    // -- The `[f32; W]` family: rounding-point discipline -------------------

    /// Compile `e` onto f32 lanes under the invariant that the reference
    /// `f64` value of `e` is bit-exactly representable in `f32` for every
    /// input, and the lanes hold it. Returns the expression's reference kind
    /// (integer leaves stay `Kind::Int` — carried as exact f32 lanes — which
    /// [`Self::fuse_f32_rounding`] uses to reject all-integer arithmetic the
    /// reference would evaluate on i64).
    fn fuse_f32(&self, e: &Expr, out: &mut VEmit<FOp<f32>>) -> Option<Kind> {
        match e {
            Expr::ConstFloat(v, _) => {
                if !f64_is_f32_exact(*v) {
                    return None;
                }
                out.push(FOp::Const(*v as f32), 1);
                Some(Kind::Float)
            }
            Expr::ConstInt(v, ty) if ty.is_float() => {
                if !f64_is_f32_exact(*v as f64) {
                    return None;
                }
                out.push(FOp::Const(*v as f64 as f32), 1);
                Some(Kind::Float)
            }
            Expr::ConstInt(v, _) => {
                if !Interval::f32_exact_int_range().contains(*v) {
                    return None;
                }
                out.push(FOp::Const(*v as f32), 1);
                Some(Kind::Int)
            }
            Expr::Param(name, _) => match self.params.get(name)? {
                Value::Int(v) => {
                    if !Interval::f32_exact_int_range().contains(*v) {
                        return None;
                    }
                    out.push(FOp::Const(*v as f32), 1);
                    Some(Kind::Int)
                }
                Value::Float(f) => {
                    if !f64_is_f32_exact(*f) {
                        return None;
                    }
                    out.push(FOp::Const(*f as f32), 1);
                    Some(Kind::Float)
                }
            },
            Expr::Var(name) | Expr::RVar(name) => {
                let depth = *self.var_depths.get(name)?;
                let iv = *self.var_bounds.get(name)?;
                if !iv.within(Interval::f32_exact_int_range()) {
                    return None;
                }
                out.push(FOp::Var(depth), 1);
                Some(Kind::Int)
            }
            // The explicit rounding point: exactly where lifted
            // single-precision code rounds after every SSE instruction.
            Expr::Cast(ScalarType::Float32, inner) => {
                self.fuse_f32_rounding(inner, out)?;
                Some(Kind::Float)
            }
            // Widening an exact-f32 (or exactly promoted integer) value is
            // the identity on the carried lanes.
            Expr::Cast(ScalarType::Float64, inner) => {
                self.fuse_f32(inner, out)?;
                Some(Kind::Float)
            }
            // Integer casts leave the float-exact domain.
            Expr::Cast(..) => None,
            Expr::Binary(op @ (BinOp::Min | BinOp::Max), a, b) => {
                let ka = self.fuse_f32(a, out)?;
                let kb = self.fuse_f32(b, out)?;
                if ka == Kind::Int && kb == Kind::Int {
                    // The reference would take the i64 min/max; stay safe and
                    // leave all-integer shapes to the integer families.
                    return None;
                }
                // Selection of one exact operand: exact without a rounding
                // point (evaluated in f64 per lane to match eval_binop on
                // NaN and ±0.0).
                out.push(
                    if *op == BinOp::Min {
                        FOp::Min
                    } else {
                        FOp::Max
                    },
                    -1,
                );
                Some(Kind::Float)
            }
            // Arithmetic without an enclosing rounding point would make the
            // lanes diverge from the f64 reference value.
            Expr::Binary(..) => None,
            Expr::Cmp(op, a, b) => {
                // Comparison of exact values is order-preserving across
                // widths (NaN unordered in both), and the 0/1 result is
                // f32-exact.
                self.fuse_f32(a, out)?;
                self.fuse_f32(b, out)?;
                out.push(FOp::Cmp(*op), -1);
                Some(Kind::Int)
            }
            Expr::Select(c, t, f) => {
                self.fuse_f32(c, out)?;
                let kt = self.fuse_f32(t, out)?;
                let kf = self.fuse_f32(f, out)?;
                if kt != kf {
                    // Mirror the typed tier, which falls back on dynamically
                    // typed selects.
                    return None;
                }
                out.push(FOp::Sel, -2);
                Some(kt)
            }
            // Extern calls round at f64; only sqrt under a rounding point is
            // exact (handled by fuse_f32_rounding).
            Expr::Call(..) => None,
            Expr::Image(name, args) | Expr::FuncRef(name, args) => {
                let slot = *self.slot_ids.get(name)?;
                let ty = self.decls[slot].ty;
                // Float32 loads are exact by definition; narrow integer loads
                // (u8/u16) promote to f32 without loss.
                let kind = match ty {
                    ScalarType::Float32 => Kind::Float,
                    _ => {
                        let iv = Interval::of_type(ty)?;
                        if !iv.within(Interval::f32_exact_int_range()) {
                            return None;
                        }
                        Kind::Int
                    }
                };
                let (dims, lane) = self.tap_dims(args)?;
                let idx = out.tap(TapAccess {
                    slot,
                    ty,
                    dims,
                    lane,
                });
                out.push(FOp::Load(idx), 1);
                Some(kind)
            }
        }
    }

    /// Compile `e` in a *rounding context*: the caller (a `cast<float>` or
    /// the `Float32` store itself) rounds the reference `f64` value to `f32`.
    /// Here — and only here — f32 arithmetic may be emitted: one f32 rounding
    /// of bit-exact operands equals the reference's f64 op followed by the
    /// cast for +, −, ×, ÷ and sqrt (f64's 53 significant bits ≥ 2·24 + 2,
    /// so the double rounding is innocuous). Anything already exact passes
    /// through [`Self::fuse_f32`]; the rounding is then the identity.
    fn fuse_f32_rounding(&self, e: &Expr, out: &mut VEmit<FOp<f32>>) -> Option<Kind> {
        match e {
            Expr::Binary(op @ (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div), a, b) => {
                let ka = self.fuse_f32(a, out)?;
                let kb = self.fuse_f32(b, out)?;
                if ka == Kind::Int && kb == Kind::Int {
                    // The reference would wrap on i64 and round the integer
                    // result; leave all-integer arithmetic to the integer
                    // families.
                    return None;
                }
                out.push(
                    match op {
                        BinOp::Add => FOp::Add,
                        BinOp::Sub => FOp::Sub,
                        BinOp::Mul => FOp::Mul,
                        BinOp::Div => FOp::Div,
                        _ => unreachable!("matched above"),
                    },
                    -1,
                );
                Some(Kind::Float)
            }
            Expr::Call(ExternCall::Sqrt, args) if args.len() == 1 => {
                self.fuse_f32(&args[0], out)?;
                out.push(FOp::Sqrt, 0);
                Some(Kind::Float)
            }
            _ => self.fuse_f32(e, out),
        }
    }

    // -- The `[f64; W/2]` family: lanes are the reference values ------------

    /// Compile `e` onto f64 lanes. The reference evaluator carries floats as
    /// `f64`, so no rounding discipline exists: every emitted op mirrors the
    /// reference op bit-for-bit and the lanes hold the reference values by
    /// construction. Only integer *leaves* need a proof — within
    /// [`Interval::f64_exact_int_range`] their `i64 → f64` promotion is the
    /// exact, order-preserving map the reference itself applies in mixed
    /// arithmetic and comparisons. All-integer arithmetic is still rejected
    /// (the reference would wrap on `i64`), exactly like the f32 family.
    fn fuse_f64(&self, e: &Expr, out: &mut VEmit<FOp<f64>>) -> Option<Kind> {
        match e {
            Expr::ConstFloat(v, _) => {
                out.push(FOp::Const(*v), 1);
                Some(Kind::Float)
            }
            // `v as f64` is exactly the promotion the reference performs on
            // a float-typed integer constant, whatever its magnitude.
            Expr::ConstInt(v, ty) if ty.is_float() => {
                out.push(FOp::Const(*v as f64), 1);
                Some(Kind::Float)
            }
            Expr::ConstInt(v, _) => {
                if !Interval::f64_exact_int_range().contains(*v) {
                    return None;
                }
                out.push(FOp::Const(*v as f64), 1);
                Some(Kind::Int)
            }
            Expr::Param(name, _) => match self.params.get(name)? {
                Value::Int(v) => {
                    if !Interval::f64_exact_int_range().contains(*v) {
                        return None;
                    }
                    out.push(FOp::Const(*v as f64), 1);
                    Some(Kind::Int)
                }
                Value::Float(f) => {
                    out.push(FOp::Const(*f), 1);
                    Some(Kind::Float)
                }
            },
            Expr::Var(name) | Expr::RVar(name) => {
                let depth = *self.var_depths.get(name)?;
                let iv = *self.var_bounds.get(name)?;
                if !iv.within(Interval::f64_exact_int_range()) {
                    return None;
                }
                out.push(FOp::Var(depth), 1);
                Some(Kind::Int)
            }
            // Widening to the reference representation is the identity on
            // the carried lanes (an int operand promotes exactly, a float
            // operand already is the f64 value).
            Expr::Cast(ScalarType::Float64, inner) => {
                self.fuse_f64(inner, out)?;
                Some(Kind::Float)
            }
            // A `cast<float>` inserts an f32 rounding the f64 lanes cannot
            // replay; those shapes belong to the `[f32; W]` family. Integer
            // casts leave the exact domain entirely.
            Expr::Cast(..) => None,
            Expr::Binary(
                op @ (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max),
                a,
                b,
            ) => {
                let ka = self.fuse_f64(a, out)?;
                let kb = self.fuse_f64(b, out)?;
                if ka == Kind::Int && kb == Kind::Int {
                    // The reference would wrap (or min/max) on i64; leave
                    // all-integer shapes to the integer families.
                    return None;
                }
                out.push(
                    match op {
                        BinOp::Add => FOp::Add,
                        BinOp::Sub => FOp::Sub,
                        BinOp::Mul => FOp::Mul,
                        BinOp::Div => FOp::Div,
                        BinOp::Min => FOp::Min,
                        BinOp::Max => FOp::Max,
                        _ => unreachable!("matched above"),
                    },
                    -1,
                );
                Some(Kind::Float)
            }
            // Mod (and any op the reference defines on integers only).
            Expr::Binary(..) => None,
            Expr::Cmp(op, a, b) => {
                // Exact-range operands compare identically as f64 (the int
                // promotion is injective and order-preserving; NaN is
                // unordered in both representations).
                self.fuse_f64(a, out)?;
                self.fuse_f64(b, out)?;
                out.push(FOp::Cmp(*op), -1);
                Some(Kind::Int)
            }
            Expr::Select(c, t, f) => {
                self.fuse_f64(c, out)?;
                let kt = self.fuse_f64(t, out)?;
                let kf = self.fuse_f64(f, out)?;
                if kt != kf {
                    return None;
                }
                out.push(FOp::Sel, -2);
                Some(kt)
            }
            // The reference computes sqrt in f64 — mirrored exactly. Other
            // extern calls stay on the per-op tier.
            Expr::Call(ExternCall::Sqrt, args) if args.len() == 1 => {
                self.fuse_f64(&args[0], out)?;
                out.push(FOp::Sqrt, 0);
                Some(Kind::Float)
            }
            Expr::Call(..) => None,
            Expr::Image(name, args) | Expr::FuncRef(name, args) => {
                let slot = *self.slot_ids.get(name)?;
                let ty = self.decls[slot].ty;
                // f64 loads ARE the reference values; f32 loads widen
                // exactly; integer loads are exact within ±2^53 (UInt64's
                // range exceeds it and is rejected by `of_type`).
                let kind = match ty {
                    ScalarType::Float64 | ScalarType::Float32 => Kind::Float,
                    _ => {
                        let iv = Interval::of_type(ty)?;
                        if !iv.within(Interval::f64_exact_int_range()) {
                            return None;
                        }
                        Kind::Int
                    }
                };
                let (dims, lane) = self.tap_dims(args)?;
                let idx = out.tap(TapAccess {
                    slot,
                    ty,
                    dims,
                    lane,
                });
                out.push(FOp::Load(idx), 1);
                Some(kind)
            }
        }
    }
}

fn emitted_tap(taps: &[TapAccess], tap: &TapAccess) -> Option<usize> {
    taps.iter().position(|t| t == tap)
}

/// Constant carrier of an integer lane family: `i32` for the narrow family,
/// `i64` for the wide one. Gives the generic [`peephole`] the wrapping
/// negation it needs to sign-adjust folded coefficients.
trait LaneConst: Copy + PartialEq {
    /// Wrapping negation (two's complement).
    fn wneg(self) -> Self;
    /// The multiplicative identity (the implicit coefficient of a bare tap).
    fn one() -> Self;
}

impl LaneConst for i32 {
    fn wneg(self) -> Self {
        self.wrapping_neg()
    }
    fn one() -> Self {
        1
    }
}

impl LaneConst for i64 {
    fn wneg(self) -> Self {
        self.wrapping_neg()
    }
    fn one() -> Self {
        1
    }
}

/// Collapse the dominant stencil pattern — load, scale, accumulate — into
/// fused multiply-accumulate superops, shrinking both dispatch count and
/// stack traffic: an `Add`/`Sub` whose right operand was built as
/// `Load(t) [· c] (± taps ± consts)*` folds into the left operand as a chain
/// of `Axpy`/`AddC` ops. Sound because wrapping adds commute and associate
/// modulo the lane width (`a - (x + y) = a - x - y`); applies to both
/// integer lane families (float lanes never fold — a fused multiply-add
/// would change rounding).
fn peephole<C: LaneConst>(ops: &mut Vec<VOp<C>>) {
    let mut out: Vec<VOp<C>> = Vec::with_capacity(ops.len());
    for op in ops.drain(..) {
        match op {
            VOp::Add | VOp::Sub => {
                if !try_fold_additive(&mut out, matches!(op, VOp::Sub)) {
                    out.push(op);
                }
            }
            _ => out.push(op),
        }
    }
    *ops = out;
}

/// If the top stack operand of `out` is an additive chain rooted at a single
/// `Load`, fold the pending `Add`/`Sub` into it and return `true`.
fn try_fold_additive<C: LaneConst>(out: &mut Vec<VOp<C>>, negate: bool) -> bool {
    // Walk back over top-modifying additive ops to the operand's push.
    let n = out.len();
    let mut j = n;
    while j > 0 {
        match out[j - 1] {
            VOp::Axpy { .. } | VOp::AddC(_) | VOp::MulC(_) => j -= 1,
            VOp::Load(_) => {
                j -= 1;
                break;
            }
            _ => return false,
        }
    }
    let Some(VOp::Load(tap)) = out.get(j).cloned() else {
        return false;
    };
    // An optional scale directly after the load; any later MulC scales the
    // accumulated sum and is not additive — reject.
    let mut coeff = C::one();
    let mut k = j + 1;
    if let Some(VOp::MulC(c)) = out.get(k) {
        coeff = *c;
        k += 1;
    }
    if !out[k..]
        .iter()
        .all(|op| matches!(op, VOp::Axpy { .. } | VOp::AddC(_)))
    {
        return false;
    }
    // Rewrite: Load [MulC] => Axpy, then sign-adjust the tail.
    let neg = |c: C| if negate { c.wneg() } else { c };
    let tail: Vec<VOp<C>> = out.drain(k..).collect();
    out.truncate(j);
    out.push(VOp::Axpy {
        tap,
        coeff: neg(coeff),
    });
    for op in tail {
        out.push(match op {
            VOp::Axpy { tap, coeff } => VOp::Axpy {
                tap,
                coeff: neg(coeff),
            },
            VOp::AddC(c) => VOp::AddC(neg(c)),
            _ => unreachable!("validated additive"),
        });
    }
    true
}

// ---------------------------------------------------------------------------
// Preparation: walk the stmt, assign slots/depths, compile stores
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Prepared {
    decls: Vec<SlotDecl>,
    /// Slot id per Allocate node, keyed by buffer name (unique per tree).
    alloc_slots: BTreeMap<String, usize>,
    stores: Vec<Option<CompiledStore>>,
    max_depth: usize,
    max_stack: usize,
    max_arity: usize,
}

struct PrepareCtx<'a> {
    params: &'a BTreeMap<String, Value>,
    decls: Vec<SlotDecl>,
    slot_ids: BTreeMap<String, usize>,
    alloc_slots: BTreeMap<String, usize>,
    stores: Vec<Option<CompiledStore>>,
    var_depths: BTreeMap<String, usize>,
    /// Sound interval of each in-scope loop variable (from its bound
    /// expressions), consumed by the fused-kernel compiler's proofs.
    var_bounds: BTreeMap<String, Interval>,
    depth: usize,
    max_depth: usize,
    max_stack: usize,
    max_arity: usize,
}

impl PrepareCtx<'_> {
    fn add_slot(&mut self, name: &str, ty: ScalarType, writable: bool) -> usize {
        let id = self.decls.len();
        self.decls.push(SlotDecl { ty, writable });
        self.slot_ids.insert(name.to_string(), id);
        id
    }

    fn walk(&mut self, stmt: &Stmt) -> Result<(), RealizeError> {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.walk(s)?;
                }
                Ok(())
            }
            Stmt::Produce { body, .. } => self.walk(body),
            Stmt::Allocate { name, ty, body, .. } => {
                let prev = self.slot_ids.get(name).copied();
                let id = self.add_slot(name, *ty, true);
                self.alloc_slots.insert(name.clone(), id);
                self.walk(body)?;
                match prev {
                    Some(p) => {
                        self.slot_ids.insert(name.clone(), p);
                    }
                    None => {
                        self.slot_ids.remove(name);
                    }
                }
                Ok(())
            }
            Stmt::For {
                var,
                min,
                extent,
                body,
                ..
            } => {
                let prev = self.var_depths.insert(var.clone(), self.depth);
                // A sound interval for the loop variable: symbolic bounds
                // (tile tails) resolve through the enclosing vars' intervals.
                let imin = expr_interval(min, &self.var_bounds, self.params);
                let iext = expr_interval(extent, &self.var_bounds, self.params);
                let hi = imin.max.saturating_add(iext.max.saturating_sub(1).max(0));
                let prev_bounds = self
                    .var_bounds
                    .insert(var.clone(), Interval::new(imin.min, hi));
                self.depth += 1;
                self.max_depth = self.max_depth.max(self.depth);
                self.walk(body)?;
                self.depth -= 1;
                match prev {
                    Some(p) => {
                        self.var_depths.insert(var.clone(), p);
                    }
                    None => {
                        self.var_depths.remove(var);
                    }
                }
                match prev_bounds {
                    Some(p) => {
                        self.var_bounds.insert(var.clone(), p);
                    }
                    None => {
                        self.var_bounds.remove(var);
                    }
                }
                Ok(())
            }
            Stmt::SlideWindow {
                extent,
                warm_var,
                body,
                ..
            } => {
                // The warm-row count behaves like a loop variable bound once
                // per attach iteration: it occupies a depth slot (so the
                // producer nest's sliding loop can reference it through the
                // environment) with the sound interval [0, extent].
                let prev = self.var_depths.insert(warm_var.clone(), self.depth);
                let prev_bounds = self
                    .var_bounds
                    .insert(warm_var.clone(), Interval::new(0, *extent as i64));
                self.depth += 1;
                self.max_depth = self.max_depth.max(self.depth);
                self.walk(body)?;
                self.depth -= 1;
                match prev {
                    Some(p) => {
                        self.var_depths.insert(warm_var.clone(), p);
                    }
                    None => {
                        self.var_depths.remove(warm_var);
                    }
                }
                match prev_bounds {
                    Some(p) => {
                        self.var_bounds.insert(warm_var.clone(), p);
                    }
                    None => {
                        self.var_bounds.remove(warm_var);
                    }
                }
                Ok(())
            }
            Stmt::Store {
                id,
                buffer,
                indices,
                value,
            } => self.compile_store(*id, buffer, indices, value, false),
            Stmt::ReduceStore {
                id,
                buffer,
                indices,
                value,
            } => self.compile_store(*id, buffer, indices, value, true),
        }
    }

    /// Compile one store (pure or guarded) into its [`CompiledStore`]:
    /// typed/fallback programs, stack/arity accounting, and the tier-1
    /// kernel attempt — a [`FusedKernel`] for pure stores (`clamp = false`),
    /// a [`ReduceKernel`] for guarded reduction stores (`clamp = true`,
    /// which never take the pure fused tier: their value reads the buffer
    /// being written and the LHS may be data-dependent). Kernel compilation
    /// is best-effort — any failure keeps the typed/fallback tiers.
    fn compile_store(
        &mut self,
        id: usize,
        buffer: &str,
        indices: &[Expr],
        value: &Expr,
        clamp: bool,
    ) -> Result<(), RealizeError> {
        let slot = self
            .slot_ids
            .get(buffer)
            .copied()
            .ok_or_else(|| RealizeError::UndefinedFunc(buffer.to_string()))?;
        debug_assert!(
            self.decls[slot].writable,
            "store to read-only buffer {buffer}"
        );
        let lane_depth = self.depth.saturating_sub(1);
        let compiler = Compiler {
            var_depths: &self.var_depths,
            slot_ids: &self.slot_ids,
            decls: &self.decls,
            params: self.params,
        };
        let compiled = (|| -> Result<StoreExec, CompileFail> {
            let mut index_progs = Vec::with_capacity(indices.len());
            for idx in indices {
                index_progs.push(compiler.compile_program(idx, true)?);
            }
            let value_prog = compiler.compile_program(value, false)?;
            Ok(StoreExec::Typed(TypedStore {
                slot,
                index_progs,
                value_prog,
            }))
        })();
        let exec = match compiled {
            Ok(t) => t,
            Err(CompileFail::Hard(e)) => return Err(e),
            Err(CompileFail::Soft) => StoreExec::Fallback(Box::new(FallbackStore {
                slot,
                indices: indices.to_vec(),
                value: value.clone(),
                var_depths: self.var_depths.clone(),
                slots: self.slot_ids.clone(),
            })),
        };
        if let StoreExec::Typed(t) = &exec {
            for p in t.index_progs.iter().chain(std::iter::once(&t.value_prog)) {
                self.max_stack = self.max_stack.max(p.max_stack);
                for op in &p.ops {
                    if let TOp::Load { arity, .. } = op {
                        self.max_arity = self.max_arity.max(*arity);
                    }
                }
            }
            self.max_arity = self.max_arity.max(t.index_progs.len());
        }
        let (fused, reduce) = match &exec {
            StoreExec::Typed(_) if self.depth > 0 => {
                let lane_var = self
                    .var_depths
                    .iter()
                    .find(|(_, d)| **d == lane_depth)
                    .map(|(v, _)| v.clone());
                match lane_var {
                    Some(lane_var) => {
                        let builder = FusedBuilder {
                            var_depths: &self.var_depths,
                            var_bounds: &self.var_bounds,
                            slot_ids: &self.slot_ids,
                            decls: &self.decls,
                            params: self.params,
                            lane_var: &lane_var,
                            out_slot: slot,
                        };
                        if clamp {
                            (None, builder.build_reduce(indices, value))
                        } else {
                            // A store that reads its own buffer never fuses
                            // (chunked evaluation would observe its writes).
                            let self_alias = value_reads_buffer(value, buffer);
                            (builder.build(indices, value, self_alias), None)
                        }
                    }
                    None => (None, None),
                }
            }
            _ => (None, None),
        };
        let merge = if clamp {
            self.build_merge(slot, buffer, indices, value, &exec)
        } else {
            None
        };
        if self.stores.len() <= id {
            self.stores.resize_with(id + 1, || None);
        }
        self.stores[id] = Some(CompiledStore {
            exec,
            lane_depth,
            fused,
            clamp,
            reduce,
            merge,
        });
        Ok(())
    }

    /// Attempt the deferred-accumulation plan for a guarded store: peel the
    /// integer cast chain, split off the exact self-read, compile `g`, and
    /// record the slots the store reads (see [`MergeAcc`] for the
    /// admissibility conditions and the exactness argument). Best-effort —
    /// any failure keeps `merge = None` and the nest runs serially.
    fn build_merge(
        &mut self,
        slot: usize,
        buffer: &str,
        indices: &[Expr],
        value: &Expr,
        exec: &StoreExec,
    ) -> Option<MergeAcc> {
        let StoreExec::Typed(t) = exec else {
            return None;
        };
        let out_ty = self.decls[slot].ty;
        if matches!(out_ty, ScalarType::Float32 | ScalarType::Float64) {
            return None;
        }
        // Peel the cast chain: every cast must be integer and at least as
        // wide as the output element, so the chain is the identity on the
        // stored bytes and the merge needs no cast replay.
        let mut inner = value;
        while let Expr::Cast(ty, e) = inner {
            if matches!(ty, ScalarType::Float32 | ScalarType::Float64)
                || ty.bytes() < out_ty.bytes()
            {
                return None;
            }
            inner = e;
        }
        let Expr::Binary(BinOp::Add, a, b) = inner else {
            return None;
        };
        let is_self_read = |e: &Expr| {
            matches!(e, Expr::FuncRef(name, args)
                if name == buffer && args.as_slice() == indices)
        };
        let g = match (is_self_read(a), is_self_read(b)) {
            (true, false) => b.as_ref(),
            (false, true) => a.as_ref(),
            _ => return None,
        };
        if value_reads_buffer(g, buffer) || indices.iter().any(|i| value_reads_buffer(i, buffer)) {
            return None;
        }
        let compiler = Compiler {
            var_depths: &self.var_depths,
            slot_ids: &self.slot_ids,
            decls: &self.decls,
            params: self.params,
        };
        let g_prog = match compiler.compile_program(g, false) {
            Ok(p) if !p.float_result => p,
            _ => return None,
        };
        let mut read_slots: Vec<usize> = Vec::new();
        for p in t.index_progs.iter().chain(std::iter::once(&g_prog)) {
            for op in &p.ops {
                if let TOp::Load { slot, .. } = op {
                    if !read_slots.contains(slot) {
                        read_slots.push(*slot);
                    }
                }
            }
        }
        self.max_stack = self.max_stack.max(g_prog.max_stack);
        Some(MergeAcc { g_prog, read_slots })
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Per-thread scratch: lane register files, load offset buffers, and
/// reusable backing storage for `Allocate` nodes (an attach loop re-enters
/// its allocation once per iteration; reusing the heap buffer keeps the
/// allocator off the hot path).
struct Scratch {
    ints: Vec<i64>,
    floats: Vec<f64>,
    idx: Vec<i64>,
    offs: Vec<usize>,
    /// Per-row tap base offsets of the active fused kernel.
    tap_bases: Vec<i64>,
    allocs: BTreeMap<usize, Vec<u8>>,
    /// Last sliding-dimension region minimum seen per window allocation slot
    /// (keyed like `allocs`), consumed by [`Stmt::SlideWindow`] to decide how
    /// many rows of the previous iteration's content survive. Thread-local
    /// like the backing storage, so parallel attach loops simply start cold
    /// per worker chunk.
    windows: BTreeMap<usize, i64>,
}

impl Scratch {
    fn new(prepared: &Prepared) -> Scratch {
        let regs = prepared.max_stack.max(1) * MAX_LANES;
        Scratch {
            ints: vec![0; regs],
            floats: vec![0.0; regs],
            idx: vec![0; prepared.max_arity.max(1) * MAX_LANES],
            offs: vec![0; MAX_LANES],
            tap_bases: Vec::new(),
            allocs: BTreeMap::new(),
            windows: BTreeMap::new(),
        }
    }
}

struct Runner<'a> {
    prepared: &'a Prepared,
    params: &'a BTreeMap<String, Value>,
    /// The execution tier of the resolved [`Target`].
    tier: Tier,
    /// The chunk ISA resolved once per run via [`Target::effective_isa`]:
    /// [`Isa::Avx2`] only when the target carries the feature *and* the
    /// running CPU reports it, which is what makes the `arch` dispatch sound.
    isa: Isa,
}

/// Derive the in-range interior `[lo, hi]` (inclusive) of one innermost-loop
/// entry over `[min, end)`: the sub-range of the loop variable where every
/// tap access is provably within its buffer, filling `tap_bases` with each
/// tap's per-row base offset. Shared by the fused-kernel and fused-reduction
/// runners — the pre/post peels cover `[min, lo)` and `(hi, end)` with the
/// clamped per-op tier. `lo > hi` means no interior exists (e.g. a
/// lane-invariant index out of range, which the reference semantics clamp).
fn tap_interior(
    taps: &[TapAccess],
    binds: &BindTable,
    vars: &[i64],
    min: i64,
    end: i64,
    tap_bases: &mut Vec<i64>,
) -> (i64, i64) {
    let mut lo = min;
    let mut hi = end - 1;
    tap_bases.clear();
    for tap in taps {
        let bind = binds.0[tap.slot].as_ref().expect("tap source bound");
        let mut base = 0i64;
        for (d, aff) in tap.dims.iter().enumerate() {
            let b = aff.eval(vars);
            let ext = bind.extents[d] as i64;
            if d == 0 && tap.lane == TapLane::Contiguous {
                // 0 <= b + x <= ext - 1, and dimension 0 has stride 1.
                lo = lo.max(b.saturating_neg());
                hi = hi.min((ext - 1).saturating_sub(b));
                base = base.wrapping_add(b);
            } else {
                if b < 0 || b >= ext {
                    // A lane-invariant index out of range: the reference
                    // semantics clamp it, so no interior exists.
                    hi = lo - 1;
                }
                base = base.wrapping_add(b.wrapping_mul(bind.strides[d] as i64));
            }
        }
        tap_bases.push(base);
    }
    (lo, hi)
}

/// Evaluate a loop-bound expression to a scalar with the current environment.
fn eval_scalar(e: &Expr, env: &[(String, i64)]) -> Result<i64, RealizeError> {
    Ok(match e {
        Expr::Var(n) | Expr::RVar(n) => env
            .iter()
            .rev()
            .find(|(name, _)| name == n)
            .map(|(_, v)| *v)
            .ok_or_else(|| RealizeError::MissingParam(n.clone()))?,
        Expr::ConstInt(v, _) => *v,
        Expr::ConstFloat(v, _) => *v as i64,
        Expr::Binary(op, a, b) => eval_binop(
            *op,
            Value::Int(eval_scalar(a, env)?),
            Value::Int(eval_scalar(b, env)?),
        )
        .as_i64(),
        Expr::Cmp(op, a, b) => eval_cmp(
            *op,
            Value::Int(eval_scalar(a, env)?),
            Value::Int(eval_scalar(b, env)?),
        )
        .as_i64(),
        Expr::Select(c, t, f) => {
            if eval_scalar(c, env)? != 0 {
                eval_scalar(t, env)?
            } else {
                eval_scalar(f, env)?
            }
        }
        Expr::Cast(ty, inner) => Value::Int(eval_scalar(inner, env)?).cast(*ty).as_i64(),
        other => {
            return Err(RealizeError::MissingParam(format!(
                "unsupported loop bound expression: {other}"
            )))
        }
    })
}

impl Runner<'_> {
    fn run(
        &self,
        stmt: &Stmt,
        binds: &mut BindTable,
        env: &mut Vec<(String, i64)>,
        vars: &mut [i64],
        scratch: &mut Scratch,
        in_parallel: bool,
    ) -> Result<(), RealizeError> {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.run(s, binds, env, vars, scratch, in_parallel)?;
                }
                Ok(())
            }
            Stmt::Produce { body, .. } => self.run(body, binds, env, vars, scratch, in_parallel),
            Stmt::Allocate {
                name,
                ty,
                extents,
                body,
            } => {
                let slot = self.prepared.alloc_slots[name];
                let total: usize = extents.iter().product();
                let needed = total * ty.bytes();
                // Reuse this thread's backing buffer across iterations of the
                // attach loop. Skipping the re-zero is sound because the
                // produce nest lowered into `body` stores every element of
                // the region before anything reads it.
                let data = scratch.allocs.entry(slot).or_default();
                if data.len() != needed {
                    data.clear();
                    data.resize(needed, 0);
                }
                let mut strides = Vec::with_capacity(extents.len());
                let mut stride = 1usize;
                for &e in extents {
                    strides.push(stride);
                    stride *= e;
                }
                binds.0[slot] = Some(SlotBind {
                    ptr: data.as_mut_ptr(),
                    byte_len: needed,
                    extents: extents.clone(),
                    strides,
                });
                let result = self.run(body, binds, env, vars, scratch, in_parallel);
                binds.0[slot] = None;
                result
            }
            Stmt::SlideWindow {
                name,
                dim,
                extent,
                min,
                warm_var,
                body,
            } => {
                let slot = self.prepared.alloc_slots[name];
                let cur = eval_scalar(min, env)?;
                let ext = *extent as i64;
                // Warm rows: how much of the previous iteration's window
                // content is still in range after the region minimum advanced
                // from `prev` to `cur`. Content is a pure function of the
                // minimum (region inference proved every other dimension
                // stationary), so local row `p` must hold producer row
                // `p + cur`; the old buffer holds `p + prev` at row `p`, i.e.
                // the surviving rows sit `shift = cur - prev` higher — shift
                // them down in place and recompute only `[warm, extent)`.
                let warm = match scratch.windows.get(&slot) {
                    Some(&prev) if cur >= prev && cur - prev < ext => {
                        let shift = (cur - prev) as usize;
                        let warm = *extent - shift;
                        if shift > 0 {
                            let bind = binds.0[slot].as_ref().expect("window allocation bound");
                            debug_assert_eq!(bind.extents[*dim], *extent);
                            let total: usize = bind.extents.iter().product();
                            let elem = bind.byte_len / total.max(1);
                            let row = bind.strides[*dim] * elem;
                            // memmove within this thread's scratch backing:
                            // dst < src, ranges may overlap.
                            unsafe {
                                std::ptr::copy(bind.ptr.add(shift * row), bind.ptr, warm * row);
                            }
                        }
                        WINDOW_ROWS_REUSED.fetch_add(warm as u64, Ordering::Relaxed);
                        warm as i64
                    }
                    // Cold (first iteration, or the minimum moved backwards /
                    // jumped past the window): recompute every row.
                    _ => 0,
                };
                scratch.windows.insert(slot, cur);
                let depth = env.len();
                env.push((warm_var.clone(), warm));
                vars[depth] = warm;
                let result = self.run(body, binds, env, vars, scratch, in_parallel);
                env.pop();
                result
            }
            Stmt::For {
                var,
                min,
                extent,
                kind,
                body,
            } => {
                let min = eval_scalar(min, env)?;
                let extent = eval_scalar(extent, env)?.max(0);
                let depth = env.len();
                // The full scheduled width: each store visit dispatches this
                // many lanes, and `exec_store` batches them `MAX_LANES` at a
                // time — `vectorize(32)` really runs 32 lanes per dispatch.
                let batch = match kind {
                    LoopKind::Vectorized { width } => (*width).max(1),
                    _ => 1,
                };
                match kind {
                    LoopKind::Parallel { threads } if !in_parallel && extent > 1 => {
                        let avail = if *threads > 0 {
                            *threads
                        } else {
                            std::thread::available_parallelism()
                                .map(|n| n.get())
                                .unwrap_or(1)
                        };
                        let workers = avail.min(extent as usize);
                        if workers <= 1 {
                            return self.run_serial_loop(
                                var,
                                min,
                                extent,
                                batch,
                                body,
                                binds,
                                env,
                                vars,
                                scratch,
                                in_parallel,
                            );
                        }
                        let chunk = (extent as usize).div_ceil(workers);
                        let errors = std::sync::Mutex::new(Vec::new());
                        std::thread::scope(|scope| {
                            for w in 0..workers {
                                let start = min + (w * chunk) as i64;
                                let end = (min + extent).min(start + chunk as i64);
                                if start >= end {
                                    continue;
                                }
                                let mut binds = binds.clone();
                                let mut env = env.clone();
                                let mut vars = vars.to_vec();
                                let errors = &errors;
                                let body = &**body;
                                let var = var.as_str();
                                scope.spawn(move || {
                                    let mut scratch = Scratch::new(self.prepared);
                                    env.push((var.to_string(), 0));
                                    for i in start..end {
                                        env[depth].1 = i;
                                        vars[depth] = i;
                                        if let Err(e) = self.run(
                                            body,
                                            &mut binds,
                                            &mut env,
                                            &mut vars,
                                            &mut scratch,
                                            true,
                                        ) {
                                            errors.lock().expect("error mutex").push(e);
                                            return;
                                        }
                                    }
                                });
                            }
                        });
                        let mut errs = errors.into_inner().expect("error mutex");
                        match errs.pop() {
                            Some(e) => Err(e),
                            None => Ok(()),
                        }
                    }
                    LoopKind::ParallelReduce { threads }
                        if !in_parallel && extent > 1 && self.tier != Tier::Scalar =>
                    {
                        self.run_parallel_reduce(
                            var, min, extent, *threads, body, binds, env, vars, scratch,
                        )
                    }
                    _ => self.run_serial_loop(
                        var,
                        min,
                        extent,
                        batch,
                        body,
                        binds,
                        env,
                        vars,
                        scratch,
                        in_parallel,
                    ),
                }
            }
            Stmt::Store { id, .. } | Stmt::ReduceStore { id, .. } => {
                // A store not directly owned by a loop (e.g. beside an
                // Allocate in a Block, or an update over an empty reduction
                // domain): execute a single element at the current
                // environment.
                self.exec_store(*id, 1, binds, vars, scratch)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_serial_loop(
        &self,
        var: &str,
        min: i64,
        extent: i64,
        batch: usize,
        body: &Stmt,
        binds: &mut BindTable,
        env: &mut Vec<(String, i64)>,
        vars: &mut [i64],
        scratch: &mut Scratch,
        in_parallel: bool,
    ) -> Result<(), RealizeError> {
        let depth = env.len();
        env.push((var.to_string(), 0));
        let result = (|| {
            if let Stmt::Store { id, .. } | Stmt::ReduceStore { id, .. } = body {
                // Innermost loop over a single store: tier selection.
                let store = self.prepared.stores[*id].as_ref().expect("store compiled");
                let use_fused = match self.tier {
                    Tier::Scalar => false,
                    Tier::Auto => batch > 1,
                    Tier::Simd => true,
                };
                if use_fused {
                    if let Some(fused) = &store.fused {
                        debug_assert_eq!(store.lane_depth, depth, "lane depth mismatch");
                        let width = if batch > 1 { batch } else { MAX_LANES };
                        return self.run_fused_loop(
                            fused, *id, depth, min, extent, width, binds, vars, scratch,
                        );
                    }
                }
                // Fused accumulation kernels have no scheduled lane loop to
                // gate on (rdom loops are serial by construction), so Auto
                // uses them whenever one compiled; only the Scalar tier pins
                // the per-op tier.
                if self.tier != Tier::Scalar {
                    if let Some(reduce) = &store.reduce {
                        debug_assert_eq!(store.lane_depth, depth, "lane depth mismatch");
                        return self.run_reduce_loop(
                            reduce, *id, depth, min, extent, binds, vars, scratch,
                        );
                    }
                }
                // Per-op tier: run in lane batches of the scheduled width.
                // Guarded stores only ever see batch > 1 when the lowering
                // pass vectorized their lane loop (privatized accumulation:
                // per-lane writes are provably disjoint).
                let mut i = min;
                let end = min + extent;
                while i < end {
                    let n = batch.min((end - i) as usize);
                    env[depth].1 = i;
                    vars[depth] = i;
                    self.exec_store(*id, n, binds, vars, scratch)?;
                    i += n as i64;
                }
                Ok(())
            } else {
                for i in min..min + extent {
                    env[depth].1 = i;
                    vars[depth] = i;
                    self.run(body, binds, env, vars, scratch, in_parallel)?;
                }
                Ok(())
            }
        })();
        env.pop();
        result
    }

    /// Execute one full innermost loop of a fused store: derive the in-range
    /// interior from the tap bases and buffer extents, run the fused kernel
    /// over full-width chunks there (finishing with an overlapping or masked
    /// tail chunk, so sub-width remainders stay on tier 1), and peel the
    /// clamped borders through the per-op tier.
    #[allow(clippy::too_many_arguments)]
    fn run_fused_loop(
        &self,
        fused: &FusedKernel,
        store_id: usize,
        lane_depth: usize,
        min: i64,
        extent: i64,
        width: usize,
        binds: &BindTable,
        vars: &mut [i64],
        scratch: &mut Scratch,
    ) -> Result<(), RealizeError> {
        let end = min + extent;
        if extent <= 0 {
            return Ok(());
        }
        let (lo, hi) = tap_interior(&fused.taps, binds, vars, min, end, &mut scratch.tap_bases);
        if lo > hi {
            return self.general_range(
                store_id, lane_depth, min, end, MAX_LANES, binds, vars, scratch,
            );
        }
        // Output base offset (store indices are in range by construction).
        let out_bind = binds.0[fused.out_slot]
            .as_ref()
            .expect("store target bound");
        let mut out_base = 0i64;
        for (d, aff) in fused.out_dims.iter().enumerate() {
            out_base =
                out_base.wrapping_add(aff.eval(vars).wrapping_mul(out_bind.strides[d] as i64));
        }

        let w = fused.chunk_width(width);
        // Pre-peel (clamped border), full-width interior chunks, the fused
        // tail chunk, then the post-peel.
        self.general_range(
            store_id, lane_depth, min, lo, MAX_LANES, binds, vars, scratch,
        )?;
        let mut x = lo;
        while x + w as i64 <= hi + 1 {
            dispatch_fused_chunk(
                fused,
                x,
                w,
                w,
                &scratch.tap_bases,
                out_base,
                lane_depth,
                binds,
                vars,
                self.isa,
            );
            x += w as i64;
        }
        let rem = (hi + 1 - x) as usize;
        if rem > 0 {
            if x > lo {
                // Overlapping final chunk: step back so the chunk ends at the
                // interior's edge, re-storing lanes the previous chunk wrote.
                // Sound because the kernel is deterministic and reads nothing
                // the store writes — self-aliasing stores never fuse (the
                // `value_reads_buffer` / tap-slot checks at build time) — so
                // the re-stored lanes are bit-identical.
                dispatch_fused_chunk(
                    fused,
                    hi + 1 - w as i64,
                    w,
                    w,
                    &scratch.tap_bases,
                    out_base,
                    lane_depth,
                    binds,
                    vars,
                    self.isa,
                );
            } else {
                // Masked final chunk: load and store only the `rem` provably
                // in-range lanes (the rest are zero-filled and discarded).
                // This is what keeps interiors shorter than one chunk — small
                // tiles — on tier 1.
                dispatch_fused_chunk(
                    fused,
                    x,
                    w,
                    rem,
                    &scratch.tap_bases,
                    out_base,
                    lane_depth,
                    binds,
                    vars,
                    self.isa,
                );
            }
            x = hi + 1;
            FUSED_TAILS.fetch_add(1, Ordering::Relaxed);
        }
        self.general_range(
            store_id, lane_depth, x, end, MAX_LANES, binds, vars, scratch,
        )?;
        if x > lo {
            FUSED_ROWS.fetch_add(1, Ordering::Relaxed);
            if self.isa == Isa::Avx2 {
                ARCH_ROWS.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Run `[from, to)` of an innermost store loop through the per-op tier
    /// (the peel path of fused stores), in batches of at most `batch` lanes.
    /// Reduction peels pass `batch = 1`: a guarded store may read-modify-write
    /// one cell across consecutive iterations, which lane batching would
    /// reorder.
    #[allow(clippy::too_many_arguments)]
    fn general_range(
        &self,
        store_id: usize,
        lane_depth: usize,
        from: i64,
        to: i64,
        batch: usize,
        binds: &BindTable,
        vars: &mut [i64],
        scratch: &mut Scratch,
    ) -> Result<(), RealizeError> {
        let mut i = from;
        while i < to {
            let n = batch.max(1).min((to - i) as usize);
            vars[lane_depth] = i;
            self.exec_store(store_id, n, binds, vars, scratch)?;
            i += n as i64;
        }
        Ok(())
    }

    /// Execute one full innermost loop of a guarded store through its fused
    /// accumulation kernel: derive the in-range interior of `g`'s taps, read
    /// the accumulator once, fold tree-reduced chunks of `g` lanes into it,
    /// replay the update's cast chain, store once — and run everything the
    /// interior does not cover per element through the per-op tier (exact
    /// under any split because every step commutes mod the chain's width;
    /// see [`ReduceKernel`]).
    #[allow(clippy::too_many_arguments)]
    fn run_reduce_loop(
        &self,
        rk: &ReduceKernel,
        store_id: usize,
        lane_depth: usize,
        min: i64,
        extent: i64,
        binds: &BindTable,
        vars: &mut [i64],
        scratch: &mut Scratch,
    ) -> Result<(), RealizeError> {
        let end = min + extent;
        if extent <= 0 {
            return Ok(());
        }
        let (lo, hi) = tap_interior(&rk.taps, binds, vars, min, end, &mut scratch.tap_bases);
        let w = rk.chunk_width();
        if lo > hi || hi + 1 - lo < w as i64 {
            // No interior worth a chunk: the whole loop runs per element.
            return self.general_range(store_id, lane_depth, min, end, 1, binds, vars, scratch);
        }
        // The accumulator cell, clamped per dimension like `Buffer::set`.
        let out_bind = binds.0[rk.out_slot].as_ref().expect("store target bound");
        let mut out_off = 0usize;
        for (d, aff) in rk.out_dims.iter().enumerate() {
            let i = aff.eval(vars).clamp(0, out_bind.extents[d] as i64 - 1) as usize;
            out_off += i * out_bind.strides[d];
        }
        // Pre-peel, then accumulate the interior on lanes.
        self.general_range(store_id, lane_depth, min, lo, 1, binds, vars, scratch)?;
        let eb = rk.out_ty.bytes();
        let byte_off = out_off * eb;
        let mut acc =
            crate::buffer::read_scalar(rk.out_ty, &out_bind.data()[byte_off..byte_off + eb])
                .as_i64();
        let mut x = lo;
        while x <= hi {
            let n = (w as i64).min(hi + 1 - x) as usize;
            acc = acc.wrapping_add(dispatch_reduce_chunk(
                rk,
                x,
                n,
                &scratch.tap_bases,
                lane_depth,
                binds,
                vars,
                self.isa,
            ));
            x += n as i64;
            REDUCE_CHUNKS.fetch_add(1, Ordering::Relaxed);
        }
        if self.isa == Isa::Avx2 {
            ARCH_ROWS.fetch_add(1, Ordering::Relaxed);
        }
        // Replay the update's cast chain (innermost first) and store through
        // the buffer type, exactly as the per-element path would.
        let mut val = Value::Int(acc);
        for ty in rk.casts.iter().rev() {
            val = val.cast(*ty);
        }
        let mut tmp = [0u8; 8];
        crate::buffer::write_scalar(rk.out_ty, val, &mut tmp[..eb]);
        out_bind.write(byte_off, &tmp[..eb]);
        // Post-peel continues from the updated accumulator.
        self.general_range(store_id, lane_depth, hi + 1, end, 1, binds, vars, scratch)
    }

    /// Whether every statement under a [`LoopKind::ParallelReduce`] loop is
    /// admissible for deferred accumulation, collecting the merged store ids:
    /// only blocks, serial/vectorized loops, and guarded stores that compiled
    /// a [`MergeAcc`] plan. Anything else — nested parallel loops, scoped
    /// allocations, pure stores, fallback stores — degrades the nest to the
    /// serial reference path.
    fn collect_merge_stores(&self, stmt: &Stmt, ids: &mut Vec<usize>) -> bool {
        match stmt {
            Stmt::Block(stmts) => stmts.iter().all(|s| self.collect_merge_stores(s, ids)),
            Stmt::For { kind, body, .. } => {
                matches!(kind, LoopKind::Serial | LoopKind::Vectorized { .. })
                    && self.collect_merge_stores(body, ids)
            }
            Stmt::ReduceStore { id, .. } => {
                let store = self.prepared.stores[*id].as_ref().expect("store compiled");
                if store.clamp && store.merge.is_some() {
                    ids.push(*id);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Execute a [`LoopKind::ParallelReduce`] loop by privatize-then-merge
    /// deferred accumulation (see [`MergeAcc`] for the exactness argument):
    /// split the reduction domain across workers, each accumulating raw
    /// `i64` sums of `g` into private per-buffer side arrays, then merge
    /// them into the outputs with one wrapping add and one truncating store
    /// per touched cell.
    ///
    /// Even a single worker takes the deferred path: per element it skips
    /// the accumulator self-read, the second evaluation of the LHS indices
    /// inside the value program, and the per-step cast replay — and batches
    /// the index and `g` programs [`MAX_LANES`] lanes at a time, where the
    /// serial guarded path is pinned to one lane per dispatch.
    ///
    /// Degrades to [`Runner::run_serial_loop`] (bit-identical by the
    /// exactness argument, and the reference order when it matters) whenever
    /// the body is not admissible, a merged store reads a merged output, or
    /// the private buffers would exceed [`MERGE_MAX_CELLS`].
    #[allow(clippy::too_many_arguments)]
    fn run_parallel_reduce(
        &self,
        var: &str,
        min: i64,
        extent: i64,
        threads: usize,
        body: &Stmt,
        binds: &mut BindTable,
        env: &mut Vec<(String, i64)>,
        vars: &mut [i64],
        scratch: &mut Scratch,
    ) -> Result<(), RealizeError> {
        let mut ids = Vec::new();
        let admissible = self.collect_merge_stores(body, &mut ids) && !ids.is_empty();
        let store_slot = |id: usize| match &self.prepared.stores[id]
            .as_ref()
            .expect("store compiled")
            .exec
        {
            StoreExec::Typed(t) => t.slot,
            StoreExec::Fallback(_) => unreachable!("merge stores are typed"),
        };
        // Merged output slots, deduped (stores sharing a buffer share its
        // side array, preserving their relative accumulation).
        let mut slots: Vec<usize> = Vec::new();
        if admissible {
            for &id in &ids {
                let slot = store_slot(id);
                if !slots.contains(&slot) {
                    slots.push(slot);
                }
            }
        }
        // A merged store whose indices or `g` read a merged output would
        // observe privatized (deferred) writes out of order — run serially.
        let coherent = admissible
            && ids.iter().all(|&id| {
                let store = self.prepared.stores[id].as_ref().expect("store compiled");
                let merge = store.merge.as_ref().expect("admissible store has a plan");
                !merge.read_slots.iter().any(|r| slots.contains(r))
            });
        let cells: Vec<usize> = slots
            .iter()
            .map(|&slot| {
                let bind = binds.0[slot].as_ref().expect("store target bound");
                bind.byte_len / self.prepared.decls[slot].ty.bytes()
            })
            .collect();
        let avail = if threads > 0 {
            threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let workers = avail.min(extent as usize).max(1);
        let total_cells: usize = cells.iter().sum();
        if !coherent || workers.saturating_mul(total_cells) > MERGE_MAX_CELLS {
            return self
                .run_serial_loop(var, min, extent, 1, body, binds, env, vars, scratch, false);
        }
        let mut worker_bufs: Vec<Vec<Vec<i64>>> = (0..workers)
            .map(|_| cells.iter().map(|&c| vec![0i64; c]).collect())
            .collect();
        if workers == 1 {
            self.accumulate_outer(
                var,
                min,
                min + extent,
                body,
                &slots,
                &mut worker_bufs[0],
                binds,
                env,
                vars,
                scratch,
            )?;
        } else {
            let chunk = (extent as usize).div_ceil(workers);
            let errors = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for (w, bufs) in worker_bufs.iter_mut().enumerate() {
                    let start = min + (w * chunk) as i64;
                    let end = (min + extent).min(start + chunk as i64);
                    if start >= end {
                        continue;
                    }
                    let binds = binds.clone();
                    let mut env = env.clone();
                    let mut vars = vars.to_vec();
                    let errors = &errors;
                    let slots = &slots;
                    scope.spawn(move || {
                        let mut scratch = Scratch::new(self.prepared);
                        if let Err(e) = self.accumulate_outer(
                            var,
                            start,
                            end,
                            body,
                            slots,
                            bufs,
                            &binds,
                            &mut env,
                            &mut vars,
                            &mut scratch,
                        ) {
                            errors.lock().expect("error mutex").push(e);
                        }
                    });
                }
            });
            let mut errs = errors.into_inner().expect("error mutex");
            if let Some(e) = errs.pop() {
                // Nothing was merged: the outputs are untouched.
                return Err(e);
            }
        }
        // Merge: per buffer, fold the workers' sums cell-wise and apply each
        // nonzero total with one wrapping add and one truncating store — a
        // zero total (untouched, or touched summing to zero) round-trips the
        // stored bytes unchanged, so skipping it is exact.
        for (bi, &slot) in slots.iter().enumerate() {
            let bind = binds.0[slot].as_ref().expect("store target bound");
            let ty = self.prepared.decls[slot].ty;
            let eb = ty.bytes();
            let mut tmp = [0u8; 8];
            for off in 0..cells[bi] {
                let mut total = 0i64;
                for bufs in &worker_bufs {
                    total = total.wrapping_add(bufs[bi][off]);
                }
                if total == 0 {
                    continue;
                }
                let byte = off * eb;
                let raw = crate::buffer::read_scalar(ty, &bind.data()[byte..byte + eb]).as_i64();
                crate::buffer::write_scalar(
                    ty,
                    Value::Int(raw.wrapping_add(total)),
                    &mut tmp[..eb],
                );
                bind.write(byte, &tmp[..eb]);
            }
            PARALLEL_REDUCE_MERGES.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// One worker's slice `[start, end)` of a parallel-reduce loop: push the
    /// loop variable and accumulate the body per iteration — or, when the
    /// tagged loop is itself the innermost store loop (a 1-D reduction
    /// domain), hand the whole slice to the lane-batched store path.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_outer(
        &self,
        var: &str,
        start: i64,
        end: i64,
        body: &Stmt,
        slots: &[usize],
        side: &mut [Vec<i64>],
        binds: &BindTable,
        env: &mut Vec<(String, i64)>,
        vars: &mut [i64],
        scratch: &mut Scratch,
    ) -> Result<(), RealizeError> {
        let depth = env.len();
        env.push((var.to_string(), start));
        let result = (|| {
            if let Stmt::ReduceStore { id, .. } = body {
                vars[depth] = start;
                return self.accumulate_store_loop(
                    *id,
                    depth,
                    start,
                    end - start,
                    slots,
                    side,
                    binds,
                    vars,
                    scratch,
                );
            }
            for i in start..end {
                env[depth].1 = i;
                vars[depth] = i;
                self.accumulate(body, slots, side, binds, env, vars, scratch)?;
            }
            Ok(())
        })();
        env.pop();
        result
    }

    /// The deferred-accumulation walker over an admissible parallel-reduce
    /// body (mirrors [`Runner::run`]'s serial structure for the statement
    /// kinds the admissibility walk admits).
    #[allow(clippy::too_many_arguments)]
    fn accumulate(
        &self,
        stmt: &Stmt,
        slots: &[usize],
        side: &mut [Vec<i64>],
        binds: &BindTable,
        env: &mut Vec<(String, i64)>,
        vars: &mut [i64],
        scratch: &mut Scratch,
    ) -> Result<(), RealizeError> {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.accumulate(s, slots, side, binds, env, vars, scratch)?;
                }
                Ok(())
            }
            Stmt::For {
                var,
                min,
                extent,
                body,
                ..
            } => {
                let min = eval_scalar(min, env)?;
                let extent = eval_scalar(extent, env)?.max(0);
                self.accumulate_outer(
                    var,
                    min,
                    min + extent,
                    body,
                    slots,
                    side,
                    binds,
                    env,
                    vars,
                    scratch,
                )
            }
            Stmt::ReduceStore { id, .. } => {
                // A bare store at the current environment: one element.
                let lane_depth = self.prepared.stores[*id]
                    .as_ref()
                    .expect("store compiled")
                    .lane_depth;
                let at = vars[lane_depth];
                self.accumulate_store_loop(
                    *id, lane_depth, at, 1, slots, side, binds, vars, scratch,
                )
            }
            _ => unreachable!("admissibility walk rejected this statement"),
        }
    }

    /// Accumulate one innermost store loop `[min, min+extent)` into the
    /// store's side buffer. Loop-invariant accumulators keep riding the
    /// existing fused tree-reduce chunks ([`ReduceKernel`]) — the partial
    /// sums land in the side-buffer cell instead of the output — so that
    /// family loses nothing to deferral; everything else (and the chunk
    /// peels) runs the lane-batched element path.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_store_loop(
        &self,
        id: usize,
        lane_depth: usize,
        min: i64,
        extent: i64,
        slots: &[usize],
        side: &mut [Vec<i64>],
        binds: &BindTable,
        vars: &mut [i64],
        scratch: &mut Scratch,
    ) -> Result<(), RealizeError> {
        if extent <= 0 {
            return Ok(());
        }
        let store = self.prepared.stores[id].as_ref().expect("store compiled");
        let StoreExec::Typed(t) = &store.exec else {
            unreachable!("merge stores are typed");
        };
        let merge = store.merge.as_ref().expect("admissible store has a plan");
        let buf_idx = slots
            .iter()
            .position(|&s| s == t.slot)
            .expect("merged slot");
        let end = min + extent;
        debug_assert_eq!(store.lane_depth, lane_depth, "lane depth mismatch");
        if let Some(rk) = &store.reduce {
            let (lo, hi) = tap_interior(&rk.taps, binds, vars, min, end, &mut scratch.tap_bases);
            let w = rk.chunk_width();
            if lo <= hi && hi + 1 - lo >= w as i64 {
                let out_bind = binds.0[t.slot].as_ref().expect("store target bound");
                let mut out_off = 0usize;
                for (d, aff) in rk.out_dims.iter().enumerate() {
                    let i = aff.eval(vars).clamp(0, out_bind.extents[d] as i64 - 1) as usize;
                    out_off += i * out_bind.strides[d];
                }
                self.accumulate_elements(
                    t, merge, lane_depth, min, lo, buf_idx, side, binds, vars, scratch,
                );
                let mut acc = 0i64;
                let mut x = lo;
                while x <= hi {
                    let n = (w as i64).min(hi + 1 - x) as usize;
                    acc = acc.wrapping_add(dispatch_reduce_chunk(
                        rk,
                        x,
                        n,
                        &scratch.tap_bases,
                        lane_depth,
                        binds,
                        vars,
                        self.isa,
                    ));
                    x += n as i64;
                    REDUCE_CHUNKS.fetch_add(1, Ordering::Relaxed);
                }
                if self.isa == Isa::Avx2 {
                    ARCH_ROWS.fetch_add(1, Ordering::Relaxed);
                }
                side[buf_idx][out_off] = side[buf_idx][out_off].wrapping_add(acc);
                self.accumulate_elements(
                    t,
                    merge,
                    lane_depth,
                    hi + 1,
                    end,
                    buf_idx,
                    side,
                    binds,
                    vars,
                    scratch,
                );
                return Ok(());
            }
        }
        self.accumulate_elements(
            t, merge, lane_depth, min, end, buf_idx, side, binds, vars, scratch,
        );
        Ok(())
    }

    /// The lane-batched deferred element path over `[from, to)`: evaluate
    /// the LHS index programs and `g` [`MAX_LANES`] lanes at a time, clamp
    /// each destination like `Buffer::set`, and add the raw `g` values into
    /// the side buffer. No interior/boundary split is needed — every load in
    /// the programs clamps exactly like the reference semantics.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_elements(
        &self,
        t: &TypedStore,
        merge: &MergeAcc,
        lane_depth: usize,
        from: i64,
        to: i64,
        buf_idx: usize,
        side: &mut [Vec<i64>],
        binds: &BindTable,
        vars: &mut [i64],
        scratch: &mut Scratch,
    ) {
        if from >= to {
            return;
        }
        let bind = binds.0[t.slot].as_ref().expect("store target bound");
        let arity = t.index_progs.len();
        let base = vars[lane_depth];
        let buf = &mut side[buf_idx];
        let mut i = from;
        while i < to {
            let n = MAX_LANES.min((to - i) as usize);
            vars[lane_depth] = i;
            for (d, prog) in t.index_progs.iter().enumerate() {
                run_program(prog, lane_depth, n, binds, vars, scratch);
                for l in 0..n {
                    scratch.idx[d * MAX_LANES + l] = scratch.ints[l];
                }
            }
            run_program(&merge.g_prog, lane_depth, n, binds, vars, scratch);
            for l in 0..n {
                let mut off = 0usize;
                for d in 0..arity {
                    let idx = scratch.idx[d * MAX_LANES + l].clamp(0, bind.extents[d] as i64 - 1);
                    off += (idx as usize) * bind.strides[d];
                }
                buf[off] = buf[off].wrapping_add(scratch.ints[l]);
            }
            i += n as i64;
        }
        vars[lane_depth] = base;
    }

    /// Dispatch `n` lanes of a store starting at the current lane variable.
    /// Widths beyond [`MAX_LANES`] are batched `MAX_LANES` at a time (the
    /// scratch register files are `MAX_LANES` wide), advancing the lane
    /// variable per batch — results are identical to any other batching.
    fn exec_store(
        &self,
        id: usize,
        n: usize,
        binds: &BindTable,
        vars: &mut [i64],
        scratch: &mut Scratch,
    ) -> Result<(), RealizeError> {
        let store = self.prepared.stores[id].as_ref().expect("store compiled");
        let lane_depth = store.lane_depth;
        let base = vars[lane_depth];
        let mut done = 0usize;
        let result = (|| {
            while done < n {
                let m = MAX_LANES.min(n - done);
                vars[lane_depth] = base + done as i64;
                match &store.exec {
                    StoreExec::Typed(t) => {
                        self.exec_typed(t, store.clamp, lane_depth, m, binds, vars, scratch);
                    }
                    StoreExec::Fallback(f) => {
                        self.exec_fallback(f, lane_depth, m, binds, vars)?;
                    }
                }
                done += m;
            }
            Ok(())
        })();
        vars[lane_depth] = base;
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_typed(
        &self,
        t: &TypedStore,
        clamp: bool,
        lane_depth: usize,
        n: usize,
        binds: &BindTable,
        vars: &[i64],
        scratch: &mut Scratch,
    ) {
        // Evaluate the index programs, parking each result in scratch.idx.
        let arity = t.index_progs.len();
        for (d, prog) in t.index_progs.iter().enumerate() {
            run_program(prog, lane_depth, n, binds, vars, scratch);
            for l in 0..n {
                scratch.idx[d * MAX_LANES + l] = scratch.ints[l];
            }
        }
        run_program(&t.value_prog, lane_depth, n, binds, vars, scratch);

        let bind = binds.0[t.slot].as_ref().expect("store target bound");
        // Destination offsets. Pure stores are in-range by loop construction;
        // guarded (reduction) stores clamp per dimension like `Buffer::set` —
        // histogram LHS indices are data and may land anywhere.
        for l in 0..n {
            let mut off = 0usize;
            for d in 0..arity {
                let i = scratch.idx[d * MAX_LANES + l];
                let i = if clamp {
                    i.clamp(0, bind.extents[d] as i64 - 1)
                } else {
                    debug_assert!(
                        i >= 0 && (i as usize) < bind.extents[d],
                        "store index {i} out of range 0..{} (dim {d})",
                        bind.extents[d]
                    );
                    i
                };
                off += (i as usize) * bind.strides[d];
            }
            scratch.offs[l] = off;
        }
        let ty = self.prepared.decls[t.slot].ty;
        let offs = &scratch.offs;
        // Monomorphized store loops: cast exactly like `write_scalar`.
        if t.value_prog.float_result {
            let vals = &scratch.floats[..MAX_LANES];
            match ty {
                ScalarType::UInt8 => {
                    for l in 0..n {
                        bind.write(offs[l], &[(vals[l] as i64) as u8]);
                    }
                }
                ScalarType::UInt16 => {
                    for l in 0..n {
                        bind.write(offs[l] * 2, &((vals[l] as i64) as u16).to_le_bytes());
                    }
                }
                ScalarType::UInt32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &((vals[l] as i64) as u32).to_le_bytes());
                    }
                }
                ScalarType::UInt64 => {
                    for l in 0..n {
                        bind.write(offs[l] * 8, &((vals[l] as i64) as u64).to_le_bytes());
                    }
                }
                ScalarType::Int32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &((vals[l] as i64) as i32).to_le_bytes());
                    }
                }
                ScalarType::Float32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &(vals[l] as f32).to_le_bytes());
                    }
                }
                ScalarType::Float64 => {
                    for l in 0..n {
                        bind.write(offs[l] * 8, &vals[l].to_le_bytes());
                    }
                }
            }
        } else {
            let vals = &scratch.ints[..MAX_LANES];
            match ty {
                ScalarType::UInt8 => {
                    for l in 0..n {
                        bind.write(offs[l], &[vals[l] as u8]);
                    }
                }
                ScalarType::UInt16 => {
                    for l in 0..n {
                        bind.write(offs[l] * 2, &(vals[l] as u16).to_le_bytes());
                    }
                }
                ScalarType::UInt32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &(vals[l] as u32).to_le_bytes());
                    }
                }
                ScalarType::UInt64 => {
                    for l in 0..n {
                        bind.write(offs[l] * 8, &(vals[l] as u64).to_le_bytes());
                    }
                }
                ScalarType::Int32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &(vals[l] as i32).to_le_bytes());
                    }
                }
                ScalarType::Float32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &((vals[l] as f64) as f32).to_le_bytes());
                    }
                }
                ScalarType::Float64 => {
                    for l in 0..n {
                        bind.write(offs[l] * 8, &(vals[l] as f64).to_le_bytes());
                    }
                }
            }
        }
    }

    fn exec_fallback(
        &self,
        f: &FallbackStore,
        lane_depth: usize,
        n: usize,
        binds: &BindTable,
        vars: &[i64],
    ) -> Result<(), RealizeError> {
        let base = vars[lane_depth];
        let mut vars = vars.to_vec();
        for l in 0..n {
            vars[lane_depth] = base + l as i64;
            let src = FallbackSources {
                store: f,
                binds,
                prepared: self.prepared,
                params: self.params,
                vars: &vars,
            };
            let mut idx = Vec::with_capacity(f.indices.len());
            for e in &f.indices {
                idx.push(eval_expr(e, &src)?.as_i64());
            }
            let v = eval_expr(&f.value, &src)?;
            let bind = binds.0[f.slot].as_ref().expect("store target bound");
            let ty = self.prepared.decls[f.slot].ty;
            let mut off = 0usize;
            for (d, &i) in idx.iter().enumerate() {
                let i = i.clamp(0, bind.extents[d] as i64 - 1) as usize;
                off += i * bind.strides[d];
            }
            let bytes = ty.bytes();
            let mut tmp = [0u8; 8];
            crate::buffer::write_scalar(ty, v, &mut tmp[..bytes]);
            bind.write(off * bytes, &tmp[..bytes]);
        }
        Ok(())
    }
}

/// Sources of the fallback store path (stores whose types cannot be inferred
/// statically): variables resolve through the store's recorded loop depths,
/// loads go through the slot table with clamping — evaluation itself is the
/// shared [`crate::eval`] evaluator, so the fallback cannot drift from the
/// other backends.
struct FallbackSources<'a> {
    store: &'a FallbackStore,
    binds: &'a BindTable,
    prepared: &'a Prepared,
    params: &'a BTreeMap<String, Value>,
    vars: &'a [i64],
}

impl FallbackSources<'_> {
    fn load(&self, slot: usize, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
        let bind = self.binds.0[slot]
            .as_ref()
            .ok_or_else(|| RealizeError::UndefinedFunc(name.to_string()))?;
        let mut off = 0usize;
        for (d, &i) in indices.iter().enumerate() {
            let i = i.clamp(0, bind.extents[d] as i64 - 1) as usize;
            off += i * bind.strides[d];
        }
        let ty = self.prepared.decls[slot].ty;
        let bytes = ty.bytes();
        Ok(crate::buffer::read_scalar(
            ty,
            &bind.data()[off * bytes..off * bytes + bytes],
        ))
    }
}

impl EvalSources for FallbackSources<'_> {
    fn var(&self, name: &str) -> Option<i64> {
        self.store.var_depths.get(name).map(|d| self.vars[*d])
    }
    fn param(&self, name: &str) -> Option<Value> {
        self.params.get(name).copied()
    }
    fn load_image(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
        let slot = self
            .store
            .slots
            .get(name)
            .copied()
            .ok_or_else(|| RealizeError::MissingInput(name.to_string()))?;
        self.load(slot, name, indices)
    }
    fn load_func(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
        let slot = self
            .store
            .slots
            .get(name)
            .copied()
            .ok_or_else(|| RealizeError::UndefinedFunc(name.to_string()))?;
        self.load(slot, name, indices)
    }
}

/// Run one typed program over `n` lanes; the result lands in register 0 of
/// the matching scratch array.
fn run_program(
    prog: &Program,
    lane_depth: usize,
    n: usize,
    binds: &BindTable,
    vars: &[i64],
    scratch: &mut Scratch,
) {
    let mut sp = 0usize;
    let ints = &mut scratch.ints;
    let floats = &mut scratch.floats;
    let offs = &mut scratch.offs;
    for op in &prog.ops {
        match op {
            TOp::ConstI(v) => {
                for l in 0..n {
                    ints[sp * MAX_LANES + l] = *v;
                }
                sp += 1;
            }
            TOp::ConstF(v) => {
                for l in 0..n {
                    floats[sp * MAX_LANES + l] = *v;
                }
                sp += 1;
            }
            TOp::Var(depth) => {
                let base = vars[*depth];
                if *depth == lane_depth {
                    for l in 0..n {
                        ints[sp * MAX_LANES + l] = base + l as i64;
                    }
                } else {
                    for l in 0..n {
                        ints[sp * MAX_LANES + l] = base;
                    }
                }
                sp += 1;
            }
            TOp::I2F => {
                let s = (sp - 1) * MAX_LANES;
                for l in 0..n {
                    floats[s + l] = ints[s + l] as f64;
                }
            }
            TOp::F2I => {
                let s = (sp - 1) * MAX_LANES;
                for l in 0..n {
                    ints[s + l] = floats[s + l] as i64;
                }
            }
            TOp::BinII(op) => {
                let (a, b) = ((sp - 2) * MAX_LANES, (sp - 1) * MAX_LANES);
                match op {
                    BinOp::Add => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].wrapping_add(ints[b + l]);
                        }
                    }
                    BinOp::Sub => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].wrapping_sub(ints[b + l]);
                        }
                    }
                    BinOp::Mul => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].wrapping_mul(ints[b + l]);
                        }
                    }
                    BinOp::Div => {
                        for l in 0..n {
                            let y = ints[b + l];
                            ints[a + l] = if y == 0 { 0 } else { ints[a + l] / y };
                        }
                    }
                    BinOp::Mod => {
                        for l in 0..n {
                            let y = ints[b + l];
                            ints[a + l] = if y == 0 { 0 } else { ints[a + l] % y };
                        }
                    }
                    BinOp::Shr => {
                        for l in 0..n {
                            ints[a + l] =
                                ((ints[a + l] as u64) >> (ints[b + l] as u64 & 63)) as i64;
                        }
                    }
                    BinOp::Shl => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].wrapping_shl(ints[b + l] as u32);
                        }
                    }
                    BinOp::And => {
                        for l in 0..n {
                            ints[a + l] &= ints[b + l];
                        }
                    }
                    BinOp::Or => {
                        for l in 0..n {
                            ints[a + l] |= ints[b + l];
                        }
                    }
                    BinOp::Xor => {
                        for l in 0..n {
                            ints[a + l] ^= ints[b + l];
                        }
                    }
                    BinOp::Min => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].min(ints[b + l]);
                        }
                    }
                    BinOp::Max => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].max(ints[b + l]);
                        }
                    }
                }
                sp -= 1;
            }
            TOp::BinFF {
                op,
                promote_a,
                promote_b,
            } => {
                let (a, b) = ((sp - 2) * MAX_LANES, (sp - 1) * MAX_LANES);
                for l in 0..n {
                    let x = if *promote_a {
                        ints[a + l] as f64
                    } else {
                        floats[a + l]
                    };
                    let y = if *promote_b {
                        ints[b + l] as f64
                    } else {
                        floats[b + l]
                    };
                    floats[a + l] = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Mod => x % y,
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                        _ => unreachable!("bitwise float ops use BinBitFF"),
                    };
                }
                sp -= 1;
            }
            TOp::BinBitFF {
                op,
                promote_a,
                promote_b,
            } => {
                let (a, b) = ((sp - 2) * MAX_LANES, (sp - 1) * MAX_LANES);
                for l in 0..n {
                    let x = if *promote_a {
                        ints[a + l] as f64
                    } else {
                        floats[a + l]
                    };
                    let y = if *promote_b {
                        ints[b + l] as f64
                    } else {
                        floats[b + l]
                    };
                    // Exact `eval_binop` float-branch semantics.
                    ints[a + l] = match op {
                        BinOp::Shr => (x as i64) >> (y as i64),
                        BinOp::Shl => (x as i64) << (y as i64),
                        BinOp::And => (x as i64) & (y as i64),
                        BinOp::Or => (x as i64) | (y as i64),
                        BinOp::Xor => (x as i64) ^ (y as i64),
                        _ => unreachable!("arithmetic float ops use BinFF"),
                    };
                }
                sp -= 1;
            }
            TOp::CmpII(op) => {
                let (a, b) = ((sp - 2) * MAX_LANES, (sp - 1) * MAX_LANES);
                for l in 0..n {
                    let (x, y) = (ints[a + l], ints[b + l]);
                    ints[a + l] = match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    } as i64;
                }
                sp -= 1;
            }
            TOp::CmpFF {
                op,
                promote_a,
                promote_b,
            } => {
                let (a, b) = ((sp - 2) * MAX_LANES, (sp - 1) * MAX_LANES);
                for l in 0..n {
                    let x = if *promote_a {
                        ints[a + l] as f64
                    } else {
                        floats[a + l]
                    };
                    let y = if *promote_b {
                        ints[b + l] as f64
                    } else {
                        floats[b + l]
                    };
                    ints[a + l] = match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    } as i64;
                }
                sp -= 1;
            }
            TOp::CastI(ty) => {
                let s = (sp - 1) * MAX_LANES;
                match ty {
                    ScalarType::UInt8 => {
                        for l in 0..n {
                            ints[s + l] = (ints[s + l] as u8) as i64;
                        }
                    }
                    ScalarType::UInt16 => {
                        for l in 0..n {
                            ints[s + l] = (ints[s + l] as u16) as i64;
                        }
                    }
                    ScalarType::UInt32 => {
                        for l in 0..n {
                            ints[s + l] = (ints[s + l] as u32) as i64;
                        }
                    }
                    ScalarType::UInt64 => {} // Value::cast keeps the i64 bits
                    ScalarType::Int32 => {
                        for l in 0..n {
                            ints[s + l] = (ints[s + l] as i32) as i64;
                        }
                    }
                    ScalarType::Float32 => {
                        for l in 0..n {
                            floats[s + l] = (ints[s + l] as f64) as f32 as f64;
                        }
                    }
                    ScalarType::Float64 => {
                        for l in 0..n {
                            floats[s + l] = ints[s + l] as f64;
                        }
                    }
                }
            }
            TOp::CastF(ty) => {
                let s = (sp - 1) * MAX_LANES;
                match ty {
                    ScalarType::UInt8 => {
                        for l in 0..n {
                            ints[s + l] = ((floats[s + l] as i64) as u8) as i64;
                        }
                    }
                    ScalarType::UInt16 => {
                        for l in 0..n {
                            ints[s + l] = ((floats[s + l] as i64) as u16) as i64;
                        }
                    }
                    ScalarType::UInt32 => {
                        for l in 0..n {
                            ints[s + l] = ((floats[s + l] as i64) as u32) as i64;
                        }
                    }
                    ScalarType::UInt64 => {
                        for l in 0..n {
                            ints[s + l] = floats[s + l] as i64;
                        }
                    }
                    ScalarType::Int32 => {
                        for l in 0..n {
                            ints[s + l] = ((floats[s + l] as i64) as i32) as i64;
                        }
                    }
                    ScalarType::Float32 => {
                        for l in 0..n {
                            floats[s + l] = (floats[s + l] as f32) as f64;
                        }
                    }
                    ScalarType::Float64 => {}
                }
            }
            TOp::Sel {
                cond_float,
                branches_float,
            } => {
                let (c, t, f) = (
                    (sp - 3) * MAX_LANES,
                    (sp - 2) * MAX_LANES,
                    (sp - 1) * MAX_LANES,
                );
                for l in 0..n {
                    let cond = if *cond_float {
                        floats[c + l] != 0.0
                    } else {
                        ints[c + l] != 0
                    };
                    if *branches_float {
                        floats[c + l] = if cond { floats[t + l] } else { floats[f + l] };
                    } else {
                        ints[c + l] = if cond { ints[t + l] } else { ints[f + l] };
                    }
                }
                sp -= 2;
            }
            TOp::Call(call, arity) => {
                let base = (sp - arity) * MAX_LANES;
                for l in 0..n {
                    let a0 = floats[base + l];
                    floats[base + l] = match call {
                        ExternCall::Sqrt => a0.sqrt(),
                        ExternCall::Floor => a0.floor(),
                        ExternCall::Ceil => a0.ceil(),
                        ExternCall::Abs => a0.abs(),
                        ExternCall::Exp => a0.exp(),
                        ExternCall::Log => a0.ln(),
                        ExternCall::Pow => a0.powf(floats[base + MAX_LANES + l]),
                    };
                }
                sp = sp - arity + 1;
            }
            TOp::Load { slot, arity, ty } => {
                let bind = binds.0[*slot].as_ref().expect("load source bound");
                let base = sp - arity;
                for l in 0..n {
                    let mut off = 0usize;
                    for d in 0..*arity {
                        let i = ints[(base + d) * MAX_LANES + l]
                            .clamp(0, bind.extents[d] as i64 - 1)
                            as usize;
                        off += i * bind.strides[d];
                    }
                    offs[l] = off;
                }
                let data = bind.data();
                let out = base * MAX_LANES;
                // Monomorphized load loops, mirroring `read_scalar`.
                match ty {
                    ScalarType::UInt8 => {
                        for l in 0..n {
                            ints[out + l] = data[offs[l]] as i64;
                        }
                    }
                    ScalarType::UInt16 => {
                        for l in 0..n {
                            let o = offs[l] * 2;
                            ints[out + l] = u16::from_le_bytes([data[o], data[o + 1]]) as i64;
                        }
                    }
                    ScalarType::UInt32 => {
                        for l in 0..n {
                            let o = offs[l] * 4;
                            ints[out + l] =
                                u32::from_le_bytes(data[o..o + 4].try_into().expect("4 bytes"))
                                    as i64;
                        }
                    }
                    ScalarType::UInt64 => {
                        for l in 0..n {
                            let o = offs[l] * 8;
                            ints[out + l] =
                                u64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"))
                                    as i64;
                        }
                    }
                    ScalarType::Int32 => {
                        for l in 0..n {
                            let o = offs[l] * 4;
                            ints[out + l] =
                                i32::from_le_bytes(data[o..o + 4].try_into().expect("4 bytes"))
                                    as i64;
                        }
                    }
                    ScalarType::Float32 => {
                        for l in 0..n {
                            let o = offs[l] * 4;
                            floats[out + l] =
                                f32::from_le_bytes(data[o..o + 4].try_into().expect("4 bytes"))
                                    as f64;
                        }
                    }
                    ScalarType::Float64 => {
                        for l in 0..n {
                            let o = offs[l] * 8;
                            floats[out + l] =
                                f64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"));
                        }
                    }
                }
                sp = base + 1;
            }
        }
    }
    debug_assert_eq!(sp, 1, "program must leave exactly one register");
}

// ---------------------------------------------------------------------------
// Fused-kernel execution
// ---------------------------------------------------------------------------

/// Read one element of an integer tap as the lane-typed value the per-op
/// tier would produce (zero-extension for unsigned types, sign-extension for
/// `Int32`, bit-reinterpretation for `UInt64`), truncated to the lane width.
macro_rules! read_int_elem {
    ($lane:ty, $ty:expr, $data:expr, $off:expr) => {{
        let (ty, data, off): (ScalarType, &[u8], usize) = ($ty, $data, $off);
        match ty {
            ScalarType::UInt8 => data[off] as $lane,
            ScalarType::UInt16 => u16::from_le_bytes([data[off * 2], data[off * 2 + 1]]) as $lane,
            ScalarType::UInt32 => {
                u32::from_le_bytes(data[off * 4..off * 4 + 4].try_into().expect("4 bytes")) as $lane
            }
            ScalarType::Int32 => {
                i32::from_le_bytes(data[off * 4..off * 4 + 4].try_into().expect("4 bytes")) as $lane
            }
            ScalarType::UInt64 => {
                u64::from_le_bytes(data[off * 8..off * 8 + 8].try_into().expect("8 bytes")) as $lane
            }
            _ => unreachable!("integer fused taps are integer-typed"),
        }
    }};
}

/// Generate the tap loader of one integer lane family. `n` is the number of
/// in-range lanes: full chunks (`n == W`) use constant-trip slice loops LLVM
/// turns into vector loads; masked tails (`n < W`) read only the in-range
/// prefix and zero-fill the rest (the lanes are discarded at the store).
macro_rules! int_tap_loader {
    ($name:ident, $lane:ty) => {
        /// Load one tap's lanes for the chunk at lane-variable value `x`.
        /// In-bounds (for the first `n` lanes) by the interior derivation in
        /// `run_fused_loop`.
        #[inline]
        fn $name<const W: usize>(
            tap: &TapAccess,
            base: i64,
            x: i64,
            n: usize,
            binds: &BindTable,
        ) -> [$lane; W] {
            let bind = binds.0[tap.slot].as_ref().expect("tap source bound");
            let data = bind.data();
            let mut out = [0 as $lane; W];
            match tap.lane {
                TapLane::Contiguous => {
                    let off = (base + x) as usize;
                    if n >= W {
                        match tap.ty {
                            ScalarType::UInt8 => {
                                let src = &data[off..off + W];
                                for l in 0..W {
                                    out[l] = src[l] as $lane;
                                }
                            }
                            ScalarType::UInt16 => {
                                let src = &data[off * 2..off * 2 + W * 2];
                                for l in 0..W {
                                    out[l] =
                                        u16::from_le_bytes([src[2 * l], src[2 * l + 1]]) as $lane;
                                }
                            }
                            ScalarType::UInt32 => {
                                let src = &data[off * 4..off * 4 + W * 4];
                                for l in 0..W {
                                    out[l] = u32::from_le_bytes(
                                        src[4 * l..4 * l + 4].try_into().expect("4 bytes"),
                                    ) as $lane;
                                }
                            }
                            ScalarType::Int32 => {
                                let src = &data[off * 4..off * 4 + W * 4];
                                for l in 0..W {
                                    out[l] = i32::from_le_bytes(
                                        src[4 * l..4 * l + 4].try_into().expect("4 bytes"),
                                    ) as $lane;
                                }
                            }
                            ScalarType::UInt64 => {
                                let src = &data[off * 8..off * 8 + W * 8];
                                for l in 0..W {
                                    out[l] = u64::from_le_bytes(
                                        src[8 * l..8 * l + 8].try_into().expect("8 bytes"),
                                    ) as $lane;
                                }
                            }
                            _ => unreachable!("integer fused taps are integer-typed"),
                        }
                    } else {
                        for (l, lane) in out.iter_mut().enumerate().take(n) {
                            *lane = read_int_elem!($lane, tap.ty, data, off + l);
                        }
                    }
                }
                TapLane::Broadcast => {
                    let off = base as usize;
                    out = [read_int_elem!($lane, tap.ty, data, off); W];
                }
            }
            out
        }
    };
}

int_tap_loader!(load_tap_i32, i32);
int_tap_loader!(load_tap_i64, i64);

/// Load one `[f32; W]` tap's lanes: `Float32` loads are bit-exact, narrow
/// integer loads (u8/u16, proven f32-exact at compile time) convert without
/// loss. Masked tails (`n < W`) read only the in-range prefix.
#[inline]
fn load_tap_f32<const W: usize>(
    tap: &TapAccess,
    base: i64,
    x: i64,
    n: usize,
    binds: &BindTable,
) -> [f32; W] {
    let bind = binds.0[tap.slot].as_ref().expect("tap source bound");
    let data = bind.data();
    let read = |off: usize| -> f32 {
        match tap.ty {
            ScalarType::Float32 => {
                f32::from_le_bytes(data[off * 4..off * 4 + 4].try_into().expect("4 bytes"))
            }
            ScalarType::UInt8 => data[off] as f32,
            ScalarType::UInt16 => u16::from_le_bytes([data[off * 2], data[off * 2 + 1]]) as f32,
            _ => unreachable!("f32 fused taps are Float32 or narrow integers"),
        }
    };
    let mut out = [0.0f32; W];
    match tap.lane {
        TapLane::Contiguous => {
            let off = (base + x) as usize;
            if n >= W {
                match tap.ty {
                    ScalarType::Float32 => {
                        let src = &data[off * 4..off * 4 + W * 4];
                        for l in 0..W {
                            out[l] = f32::from_le_bytes(
                                src[4 * l..4 * l + 4].try_into().expect("4 bytes"),
                            );
                        }
                    }
                    ScalarType::UInt8 => {
                        let src = &data[off..off + W];
                        for l in 0..W {
                            out[l] = src[l] as f32;
                        }
                    }
                    ScalarType::UInt16 => {
                        let src = &data[off * 2..off * 2 + W * 2];
                        for l in 0..W {
                            out[l] = u16::from_le_bytes([src[2 * l], src[2 * l + 1]]) as f32;
                        }
                    }
                    _ => unreachable!("f32 fused taps are Float32 or narrow integers"),
                }
            } else {
                for (l, lane) in out.iter_mut().enumerate().take(n) {
                    *lane = read(off + l);
                }
            }
        }
        TapLane::Broadcast => {
            out = [read(base as usize); W];
        }
    }
    out
}

/// Load one `[f64; W/2]` tap's lanes: `Float64` loads are the reference
/// values themselves, `Float32` loads widen exactly, and integer loads
/// (proven within ±2^53 at compile time) promote exactly. Masked tails
/// (`n < W`) read only the in-range prefix.
#[inline]
fn load_tap_f64<const W: usize>(
    tap: &TapAccess,
    base: i64,
    x: i64,
    n: usize,
    binds: &BindTable,
) -> [f64; W] {
    let bind = binds.0[tap.slot].as_ref().expect("tap source bound");
    let data = bind.data();
    let read = |off: usize| -> f64 {
        match tap.ty {
            ScalarType::Float64 => {
                f64::from_le_bytes(data[off * 8..off * 8 + 8].try_into().expect("8 bytes"))
            }
            ScalarType::Float32 => {
                f32::from_le_bytes(data[off * 4..off * 4 + 4].try_into().expect("4 bytes")) as f64
            }
            ScalarType::UInt8 => data[off] as f64,
            ScalarType::UInt16 => u16::from_le_bytes([data[off * 2], data[off * 2 + 1]]) as f64,
            ScalarType::UInt32 => {
                u32::from_le_bytes(data[off * 4..off * 4 + 4].try_into().expect("4 bytes")) as f64
            }
            ScalarType::Int32 => {
                i32::from_le_bytes(data[off * 4..off * 4 + 4].try_into().expect("4 bytes")) as f64
            }
            _ => unreachable!("f64 fused taps exclude UInt64"),
        }
    };
    let mut out = [0.0f64; W];
    match tap.lane {
        TapLane::Contiguous => {
            let off = (base + x) as usize;
            if n >= W {
                match tap.ty {
                    ScalarType::Float64 => {
                        let src = &data[off * 8..off * 8 + W * 8];
                        for l in 0..W {
                            out[l] = f64::from_le_bytes(
                                src[8 * l..8 * l + 8].try_into().expect("8 bytes"),
                            );
                        }
                    }
                    _ => {
                        for (l, lane) in out.iter_mut().enumerate() {
                            *lane = read(off + l);
                        }
                    }
                }
            } else {
                for (l, lane) in out.iter_mut().enumerate().take(n) {
                    *lane = read(off + l);
                }
            }
        }
        TapLane::Broadcast => {
            out = [read(base as usize); W];
        }
    }
    out
}

/// Route one chunk to the monomorphized runner of the kernel's lane family
/// and chunk width. `w` is the chunk width (`fused.chunk_width`); `n ≤ w` is
/// the number of lanes to load and store (`n < w` only for masked tails).
/// `isa` selects the chunk evaluator body: [`Isa::Avx2`] routes the op
/// shapes with hand-written `core::arch` paths through the `arch` module
/// (bit-identical to the portable evaluators; see the module docs).
#[allow(clippy::too_many_arguments)]
fn dispatch_fused_chunk(
    fused: &FusedKernel,
    x: i64,
    w: usize,
    n: usize,
    tap_bases: &[i64],
    out_base: i64,
    lane_depth: usize,
    binds: &BindTable,
    vars: &[i64],
    isa: Isa,
) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: `Isa::Avx2` is only produced by `Target::effective_isa`
        // after `is_x86_feature_detected!("avx2")` succeeded on this CPU.
        unsafe {
            return arch::dispatch_fused_chunk_avx2(
                fused, x, w, n, tap_bases, out_base, lane_depth, binds, vars,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    match (&fused.prog, w) {
        (LaneProgram::I32(ops), 32) => run_chunk_i32::<32>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::I32(ops), 16) => run_chunk_i32::<16>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::I32(ops), _) => run_chunk_i32::<8>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::I64(ops), 16) => run_chunk_i64::<16>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::I64(ops), 8) => run_chunk_i64::<8>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::I64(ops), _) => run_chunk_i64::<4>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::F32(ops), 32) => run_chunk_f32::<32>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::F32(ops), 16) => run_chunk_f32::<16>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::F32(ops), _) => run_chunk_f32::<8>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::F64(ops), 16) => run_chunk_f64::<16>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::F64(ops), 8) => run_chunk_f64::<8>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
        (LaneProgram::F64(ops), _) => run_chunk_f64::<4>(
            ops, fused, x, n, tap_bases, out_base, lane_depth, binds, vars,
        ),
    }
}

/// Generate the chunk *evaluator* of one integer lane family: a stack
/// machine over `[$lane; W]` chunks with constant trip counts LLVM
/// auto-vectorizes, returning the final chunk. `n` lanes are loaded
/// (`n == W` except for masked tails; lanes beyond `n` are unspecified and
/// must be masked by the consumer — the fused store writes only `n` lanes,
/// the reduction epilogue zeroes them before summing).
macro_rules! int_chunk_eval {
    ($name:ident, $lane:ty, $ulane:ty, $load:ident) => {
        #[allow(clippy::too_many_arguments)]
        fn $name<const W: usize>(
            ops: &[VOp<$lane>],
            taps: &[TapAccess],
            x: i64,
            n: usize,
            tap_bases: &[i64],
            lane_depth: usize,
            binds: &BindTable,
            vars: &[i64],
        ) -> [$lane; W] {
            let mut st = [[0 as $lane; W]; V_STACK];
            let mut sp = 0usize;
            for op in ops {
                match op {
                    VOp::Const(v) => {
                        st[sp] = [*v; W];
                        sp += 1;
                    }
                    VOp::Var(depth) => {
                        if *depth == lane_depth {
                            let base = x as $lane;
                            for (l, lane) in st[sp].iter_mut().enumerate() {
                                *lane = base + l as $lane;
                            }
                        } else {
                            st[sp] = [vars[*depth] as $lane; W];
                        }
                        sp += 1;
                    }
                    VOp::Load(t) => {
                        st[sp] = $load::<W>(&taps[*t], tap_bases[*t], x, n, binds);
                        sp += 1;
                    }
                    VOp::Axpy { tap, coeff } => {
                        let v = $load::<W>(&taps[*tap], tap_bases[*tap], x, n, binds);
                        let dst = &mut st[sp - 1];
                        for l in 0..W {
                            dst[l] = dst[l].wrapping_add(coeff.wrapping_mul(v[l]));
                        }
                    }
                    VOp::AddC(c) => {
                        for l in &mut st[sp - 1] {
                            *l = l.wrapping_add(*c);
                        }
                    }
                    VOp::MulC(c) => {
                        for l in &mut st[sp - 1] {
                            *l = l.wrapping_mul(*c);
                        }
                    }
                    VOp::AndC(c) => {
                        for l in &mut st[sp - 1] {
                            *l &= *c;
                        }
                    }
                    VOp::OrC(c) => {
                        for l in &mut st[sp - 1] {
                            *l |= *c;
                        }
                    }
                    VOp::XorC(c) => {
                        for l in &mut st[sp - 1] {
                            *l ^= *c;
                        }
                    }
                    VOp::Mask(m) => {
                        for l in &mut st[sp - 1] {
                            *l &= *m;
                        }
                    }
                    VOp::ShrU(s) => {
                        for l in &mut st[sp - 1] {
                            *l = ((*l as $ulane) >> *s) as $lane;
                        }
                    }
                    VOp::Shl(s) => {
                        for l in &mut st[sp - 1] {
                            *l = l.wrapping_shl(*s);
                        }
                    }
                    VOp::Sext32 => {
                        // The Int32 cast on i64 lanes; the identity on i32.
                        for l in &mut st[sp - 1] {
                            *l = (*l as i32) as $lane;
                        }
                    }
                    VOp::Add
                    | VOp::Sub
                    | VOp::Mul
                    | VOp::And
                    | VOp::Or
                    | VOp::Xor
                    | VOp::MinS
                    | VOp::MaxS
                    | VOp::MinU
                    | VOp::MaxU => {
                        let (head, tail) = st.split_at_mut(sp - 1);
                        let a = &mut head[sp - 2];
                        let b = &tail[0];
                        match op {
                            VOp::Add => {
                                for l in 0..W {
                                    a[l] = a[l].wrapping_add(b[l]);
                                }
                            }
                            VOp::Sub => {
                                for l in 0..W {
                                    a[l] = a[l].wrapping_sub(b[l]);
                                }
                            }
                            VOp::Mul => {
                                for l in 0..W {
                                    a[l] = a[l].wrapping_mul(b[l]);
                                }
                            }
                            VOp::And => {
                                for l in 0..W {
                                    a[l] &= b[l];
                                }
                            }
                            VOp::Or => {
                                for l in 0..W {
                                    a[l] |= b[l];
                                }
                            }
                            VOp::Xor => {
                                for l in 0..W {
                                    a[l] ^= b[l];
                                }
                            }
                            VOp::MinS => {
                                for l in 0..W {
                                    a[l] = a[l].min(b[l]);
                                }
                            }
                            VOp::MaxS => {
                                for l in 0..W {
                                    a[l] = a[l].max(b[l]);
                                }
                            }
                            VOp::MinU => {
                                for l in 0..W {
                                    a[l] = (a[l] as $ulane).min(b[l] as $ulane) as $lane;
                                }
                            }
                            VOp::MaxU => {
                                for l in 0..W {
                                    a[l] = (a[l] as $ulane).max(b[l] as $ulane) as $lane;
                                }
                            }
                            _ => unreachable!("binary group"),
                        }
                        sp -= 1;
                    }
                    VOp::CmpS(cmp) => {
                        let (head, tail) = st.split_at_mut(sp - 1);
                        let a = &mut head[sp - 2];
                        let b = &tail[0];
                        for l in 0..W {
                            let (x, y) = (a[l], b[l]);
                            a[l] = cmp_lanes(*cmp, x, y) as $lane;
                        }
                        sp -= 1;
                    }
                    VOp::CmpU(cmp) => {
                        let (head, tail) = st.split_at_mut(sp - 1);
                        let a = &mut head[sp - 2];
                        let b = &tail[0];
                        for l in 0..W {
                            let (x, y) = (a[l] as $ulane, b[l] as $ulane);
                            a[l] = cmp_lanes(*cmp, x, y) as $lane;
                        }
                        sp -= 1;
                    }
                    VOp::Sel => {
                        let (head, tail) = st.split_at_mut(sp - 2);
                        let c = &mut head[sp - 3];
                        let (t, f) = (&tail[0], &tail[1]);
                        for l in 0..W {
                            c[l] = if c[l] != 0 { t[l] } else { f[l] };
                        }
                        sp -= 2;
                    }
                }
            }
            debug_assert_eq!(sp, 1, "fused kernel must leave exactly one chunk");
            st[0]
        }
    };
}

int_chunk_eval!(eval_chunk_i32, i32, u32, load_tap_i32);
int_chunk_eval!(eval_chunk_i64, i64, u64, load_tap_i64);

#[allow(clippy::too_many_arguments)]
fn run_chunk_i32<const W: usize>(
    ops: &[VOp<i32>],
    fused: &FusedKernel,
    x: i64,
    n: usize,
    tap_bases: &[i64],
    out_base: i64,
    lane_depth: usize,
    binds: &BindTable,
    vars: &[i64],
) {
    let lanes = eval_chunk_i32::<W>(ops, &fused.taps, x, n, tap_bases, lane_depth, binds, vars);
    store_chunk_i32::<W>(fused, out_base, x, n, &lanes, binds);
}

#[allow(clippy::too_many_arguments)]
fn run_chunk_i64<const W: usize>(
    ops: &[VOp<i64>],
    fused: &FusedKernel,
    x: i64,
    n: usize,
    tap_bases: &[i64],
    out_base: i64,
    lane_depth: usize,
    binds: &BindTable,
    vars: &[i64],
) {
    let lanes = eval_chunk_i64::<W>(ops, &fused.taps, x, n, tap_bases, lane_depth, binds, vars);
    store_chunk_i64::<W>(fused, out_base, x, n, &lanes, binds);
}

/// Wrapping in-lane tree reduce of the first `n` lanes of a chunk. Exact for
/// any summation order because wrapping integer addition is commutative and
/// associative; the halving tree is the shape LLVM turns into vector
/// reductions.
macro_rules! tree_sum {
    ($name:ident, $lane:ty) => {
        fn $name<const W: usize>(mut lanes: [$lane; W], n: usize) -> $lane {
            for lane in lanes.iter_mut().skip(n) {
                *lane = 0;
            }
            let mut width = W;
            while width > 1 {
                width /= 2;
                for l in 0..width {
                    lanes[l] = lanes[l].wrapping_add(lanes[l + width]);
                }
            }
            lanes[0]
        }
    };
}

tree_sum!(tree_sum_i32, i32);
tree_sum!(tree_sum_i64, i64);

/// Evaluate one chunk of a reduction kernel's `g` and tree-reduce its first
/// `n` lanes, returning the partial sum as an `i64` (for the i32 family the
/// value is the sum mod `2^32`, which is all its ≤ 32-bit accumulator needs).
#[allow(clippy::too_many_arguments)]
fn dispatch_reduce_chunk(
    rk: &ReduceKernel,
    x: i64,
    n: usize,
    tap_bases: &[i64],
    lane_depth: usize,
    binds: &BindTable,
    vars: &[i64],
    isa: Isa,
) -> i64 {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: `Isa::Avx2` is only produced by `Target::effective_isa`
        // after `is_x86_feature_detected!("avx2")` succeeded on this CPU.
        unsafe {
            return arch::dispatch_reduce_chunk_avx2(rk, x, n, tap_bases, lane_depth, binds, vars);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    match &rk.prog {
        LaneProgram::I32(ops) => {
            let lanes = eval_chunk_i32::<MAX_CHUNK>(
                ops, &rk.taps, x, n, tap_bases, lane_depth, binds, vars,
            );
            tree_sum_i32(lanes, n) as i64
        }
        LaneProgram::I64(ops) => {
            let lanes = eval_chunk_i64::<{ MAX_CHUNK / 2 }>(
                ops, &rk.taps, x, n, tap_bases, lane_depth, binds, vars,
            );
            tree_sum_i64(lanes, n)
        }
        LaneProgram::F32(_) | LaneProgram::F64(_) => {
            unreachable!("reduce kernels are integer-only")
        }
    }
}

/// Run one `[f32; W]` fused kernel chunk. Arithmetic ops round once in f32
/// (emitted only at reference rounding points); min/max evaluate through f64
/// per lane to replicate [`eval_binop`]'s float branch bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn run_chunk_f32<const W: usize>(
    ops: &[FOp<f32>],
    fused: &FusedKernel,
    x: i64,
    n: usize,
    tap_bases: &[i64],
    out_base: i64,
    lane_depth: usize,
    binds: &BindTable,
    vars: &[i64],
) {
    let mut st = [[0.0f32; W]; V_STACK];
    let mut sp = 0usize;
    for op in ops {
        match op {
            FOp::Const(v) => {
                st[sp] = [*v; W];
                sp += 1;
            }
            FOp::Var(depth) => {
                if *depth == lane_depth {
                    for (l, lane) in st[sp].iter_mut().enumerate() {
                        // Exact: the variable's interval was proven within
                        // the f32-exact integer range.
                        *lane = (x + l as i64) as f32;
                    }
                } else {
                    st[sp] = [vars[*depth] as f32; W];
                }
                sp += 1;
            }
            FOp::Load(t) => {
                st[sp] = load_tap_f32::<W>(&fused.taps[*t], tap_bases[*t], x, n, binds);
                sp += 1;
            }
            FOp::Sqrt => {
                for l in &mut st[sp - 1] {
                    *l = l.sqrt();
                }
            }
            FOp::Add | FOp::Sub | FOp::Mul | FOp::Div | FOp::Min | FOp::Max | FOp::Cmp(_) => {
                let (head, tail) = st.split_at_mut(sp - 1);
                let a = &mut head[sp - 2];
                let b = &tail[0];
                match op {
                    FOp::Add => {
                        for l in 0..W {
                            a[l] += b[l];
                        }
                    }
                    FOp::Sub => {
                        for l in 0..W {
                            a[l] -= b[l];
                        }
                    }
                    FOp::Mul => {
                        for l in 0..W {
                            a[l] *= b[l];
                        }
                    }
                    FOp::Div => {
                        for l in 0..W {
                            a[l] /= b[l];
                        }
                    }
                    FOp::Min => {
                        for l in 0..W {
                            a[l] = (a[l] as f64).min(b[l] as f64) as f32;
                        }
                    }
                    FOp::Max => {
                        for l in 0..W {
                            a[l] = (a[l] as f64).max(b[l] as f64) as f32;
                        }
                    }
                    FOp::Cmp(cmp) => {
                        for l in 0..W {
                            let (x, y) = (a[l], b[l]);
                            a[l] = cmp_lanes(*cmp, x, y) as f32;
                        }
                    }
                    _ => unreachable!("binary group"),
                }
                sp -= 1;
            }
            FOp::Sel => {
                let (head, tail) = st.split_at_mut(sp - 2);
                let c = &mut head[sp - 3];
                let (t, f) = (&tail[0], &tail[1]);
                for l in 0..W {
                    c[l] = if c[l] != 0.0 { t[l] } else { f[l] };
                }
                sp -= 2;
            }
        }
    }
    debug_assert_eq!(sp, 1, "fused kernel must leave exactly one chunk");
    store_chunk_f32::<W>(fused, out_base, x, n, &st[0], binds);
}

/// Generate the contiguous chunk store of one integer lane family: truncate
/// the lanes to the output type and write the first `n` lanes.
macro_rules! int_chunk_store {
    ($name:ident, $lane:ty) => {
        #[inline]
        fn $name<const W: usize>(
            fused: &FusedKernel,
            out_base: i64,
            x: i64,
            n: usize,
            vals: &[$lane; W],
            binds: &BindTable,
        ) {
            let bind = binds.0[fused.out_slot]
                .as_ref()
                .expect("store target bound");
            let off = (out_base + x) as usize;
            let n = n.min(W);
            let mut tmp = [0u8; MAX_CHUNK * 8];
            match fused.out_ty {
                ScalarType::UInt8 => {
                    for l in 0..n {
                        tmp[l] = vals[l] as u8;
                    }
                    bind.write(off, &tmp[..n]);
                }
                ScalarType::UInt16 => {
                    for l in 0..n {
                        tmp[2 * l..2 * l + 2].copy_from_slice(&(vals[l] as u16).to_le_bytes());
                    }
                    bind.write(off * 2, &tmp[..n * 2]);
                }
                ScalarType::UInt32 => {
                    for l in 0..n {
                        tmp[4 * l..4 * l + 4].copy_from_slice(&(vals[l] as u32).to_le_bytes());
                    }
                    bind.write(off * 4, &tmp[..n * 4]);
                }
                ScalarType::Int32 => {
                    for l in 0..n {
                        tmp[4 * l..4 * l + 4].copy_from_slice(&(vals[l] as i32).to_le_bytes());
                    }
                    bind.write(off * 4, &tmp[..n * 4]);
                }
                ScalarType::UInt64 => {
                    for l in 0..n {
                        tmp[8 * l..8 * l + 8].copy_from_slice(&(vals[l] as u64).to_le_bytes());
                    }
                    bind.write(off * 8, &tmp[..n * 8]);
                }
                _ => unreachable!("integer fused outputs are integer-typed"),
            }
        }
    };
}

int_chunk_store!(store_chunk_i32, i32);
int_chunk_store!(store_chunk_i64, i64);

/// Contiguous `[f32; W]` chunk store: write the first `n` lanes bit-exactly.
#[inline]
fn store_chunk_f32<const W: usize>(
    fused: &FusedKernel,
    out_base: i64,
    x: i64,
    n: usize,
    vals: &[f32; W],
    binds: &BindTable,
) {
    debug_assert_eq!(fused.out_ty, ScalarType::Float32);
    let bind = binds.0[fused.out_slot]
        .as_ref()
        .expect("store target bound");
    let off = (out_base + x) as usize;
    let n = n.min(W);
    let mut tmp = [0u8; MAX_CHUNK * 4];
    for l in 0..n {
        tmp[4 * l..4 * l + 4].copy_from_slice(&vals[l].to_le_bytes());
    }
    bind.write(off * 4, &tmp[..n * 4]);
}

/// Run one `[f64; W/2]` fused kernel chunk. Every op mirrors the reference
/// evaluator's f64 op directly — the lanes hold the reference values, so no
/// rounding-point bookkeeping exists on this family.
#[allow(clippy::too_many_arguments)]
fn run_chunk_f64<const W: usize>(
    ops: &[FOp<f64>],
    fused: &FusedKernel,
    x: i64,
    n: usize,
    tap_bases: &[i64],
    out_base: i64,
    lane_depth: usize,
    binds: &BindTable,
    vars: &[i64],
) {
    let lanes = eval_chunk_f64::<W>(ops, &fused.taps, x, n, tap_bases, lane_depth, binds, vars);
    store_chunk_f64::<W>(fused, out_base, x, n, &lanes, binds);
}

#[allow(clippy::too_many_arguments)]
fn eval_chunk_f64<const W: usize>(
    ops: &[FOp<f64>],
    taps: &[TapAccess],
    x: i64,
    n: usize,
    tap_bases: &[i64],
    lane_depth: usize,
    binds: &BindTable,
    vars: &[i64],
) -> [f64; W] {
    let mut st = [[0.0f64; W]; V_STACK];
    let mut sp = 0usize;
    for op in ops {
        match op {
            FOp::Const(v) => {
                st[sp] = [*v; W];
                sp += 1;
            }
            FOp::Var(depth) => {
                if *depth == lane_depth {
                    for (l, lane) in st[sp].iter_mut().enumerate() {
                        // Exact: the variable's interval was proven within
                        // the f64-exact integer range.
                        *lane = (x + l as i64) as f64;
                    }
                } else {
                    st[sp] = [vars[*depth] as f64; W];
                }
                sp += 1;
            }
            FOp::Load(t) => {
                st[sp] = load_tap_f64::<W>(&taps[*t], tap_bases[*t], x, n, binds);
                sp += 1;
            }
            FOp::Sqrt => {
                for l in &mut st[sp - 1] {
                    *l = l.sqrt();
                }
            }
            FOp::Add | FOp::Sub | FOp::Mul | FOp::Div | FOp::Min | FOp::Max | FOp::Cmp(_) => {
                let (head, tail) = st.split_at_mut(sp - 1);
                let a = &mut head[sp - 2];
                let b = &tail[0];
                match op {
                    FOp::Add => {
                        for l in 0..W {
                            a[l] += b[l];
                        }
                    }
                    FOp::Sub => {
                        for l in 0..W {
                            a[l] -= b[l];
                        }
                    }
                    FOp::Mul => {
                        for l in 0..W {
                            a[l] *= b[l];
                        }
                    }
                    FOp::Div => {
                        for l in 0..W {
                            a[l] /= b[l];
                        }
                    }
                    FOp::Min => {
                        // f64::min IS eval_binop's float branch here.
                        for l in 0..W {
                            a[l] = a[l].min(b[l]);
                        }
                    }
                    FOp::Max => {
                        for l in 0..W {
                            a[l] = a[l].max(b[l]);
                        }
                    }
                    FOp::Cmp(cmp) => {
                        for l in 0..W {
                            let (x, y) = (a[l], b[l]);
                            a[l] = cmp_lanes(*cmp, x, y) as f64;
                        }
                    }
                    _ => unreachable!("binary group"),
                }
                sp -= 1;
            }
            FOp::Sel => {
                let (head, tail) = st.split_at_mut(sp - 2);
                let c = &mut head[sp - 3];
                let (t, f) = (&tail[0], &tail[1]);
                for l in 0..W {
                    c[l] = if c[l] != 0.0 { t[l] } else { f[l] };
                }
                sp -= 2;
            }
        }
    }
    debug_assert_eq!(sp, 1, "fused kernel must leave exactly one chunk");
    st[0]
}

/// Contiguous `[f64; W/2]` chunk store: write the first `n` lanes bit-exactly.
#[inline]
fn store_chunk_f64<const W: usize>(
    fused: &FusedKernel,
    out_base: i64,
    x: i64,
    n: usize,
    vals: &[f64; W],
    binds: &BindTable,
) {
    debug_assert_eq!(fused.out_ty, ScalarType::Float64);
    let bind = binds.0[fused.out_slot]
        .as_ref()
        .expect("store target bound");
    let off = (out_base + x) as usize;
    let n = n.min(W);
    let mut tmp = [0u8; MAX_CHUNK * 8];
    for l in 0..n {
        tmp[8 * l..8 * l + 8].copy_from_slice(&vals[l].to_le_bytes());
    }
    bind.write(off * 8, &tmp[..n * 8]);
}

#[inline]
fn cmp_lanes<T: PartialOrd>(op: CmpOp, x: T, y: T) -> i32 {
    (match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }) as i32
}

// ---------------------------------------------------------------------------
// Hand-written AVX2 chunk evaluators (`core::arch::x86_64`)
// ---------------------------------------------------------------------------

/// Explicit AVX2 implementations of the fused chunk evaluators, dispatched
/// by [`dispatch_fused_chunk`] / [`dispatch_reduce_chunk`] when the resolved
/// [`Target`] carries [`crate::target::Feature::Avx2`] and the running CPU
/// confirms it (see [`Target::effective_isa`]). The portable constant-trip
/// lane loops above remain the oracle; everything here must be — and per
/// `tests/prop_simd.rs` is — **bit-identical** to them:
///
/// - Integer ops are wrapping two's-complement on both paths, so every
///   `VOp` has an exact vector form: `Axpy`/`MulC`/`Mul` via
///   `_mm256_mullo_epi32` (i32) or the `mul_epu32` cross-term emulation
///   (i64 — AVX2 has no 64-bit mullo), shifts via `_mm256_srl/sll` with the
///   count register, clamp via `min/max_epi32`/`min/max_epu32` (i32) or
///   `cmpgt_epi64` + `blendv` (i64). Ops with no profitable AVX2 form
///   (comparisons-to-0/1, selects, the rare i64 unsigned min/max and
///   `Sext32`) run the same scalar lane loops as the portable evaluator —
///   trivially identical, and still compiled with AVX2 enabled.
/// - Float arch coverage is exactly the IEEE-exact single-rounding ops
///   (`Add`/`Sub`/`Mul`/`Div`/`Sqrt` — one rounding per op on both paths,
///   so `_mm256_*_ps/pd` are bit-identical by IEEE 754). `Min`/`Max`/`Cmp`
///   keep the portable scalar bodies: `_mm256_min_ps` resolves NaN and ±0
///   operands differently from the reference's `f64::min`, and the
///   differential matrix includes NaN inputs.
/// - The tree-reduce epilogue halves with `_mm256_add_epi32/epi64` — the
///   same reduction shape, wrapping addition, any order exact.
///
/// Tap loading and chunk stores reuse the portable helpers (`load_tap_*`,
/// `store_chunk_*`): they fill stack arrays, which keeps masked tails from
/// ever issuing an out-of-bounds vector load, and the vector ops read the
/// arrays with unaligned loads.
///
/// SAFETY: every `#[target_feature(enable = "avx2")]` fn below must only be
/// reached via [`Isa::Avx2`], which `Target::effective_isa` returns only
/// after `is_x86_feature_detected!("avx2")` succeeded in this process.
#[cfg(target_arch = "x86_64")]
mod arch {
    use super::*;
    use std::arch::x86_64::*;

    // -- 256-bit block helpers over `[T; W]` stack arrays -------------------
    // W is a multiple of 8 for i32/f32 chunks and of 4 for i64/f64 chunks,
    // so the block loops cover the arrays exactly.

    /// `a[l] = a[l] OP b[l]` for a two-operand `si256` op.
    macro_rules! avx2_bin_i32 {
        ($name:ident, $intr:ident) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $name<const W: usize>(a: &mut [i32; W], b: &[i32; W]) {
                let mut i = 0;
                while i + 8 <= W {
                    let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                    let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
                    _mm256_storeu_si256(a.as_mut_ptr().add(i) as *mut __m256i, $intr(va, vb));
                    i += 8;
                }
            }
        };
    }

    avx2_bin_i32!(add_i32, _mm256_add_epi32);
    avx2_bin_i32!(sub_i32, _mm256_sub_epi32);
    avx2_bin_i32!(mul_i32, _mm256_mullo_epi32);
    avx2_bin_i32!(and_i32, _mm256_and_si256);
    avx2_bin_i32!(or_i32, _mm256_or_si256);
    avx2_bin_i32!(xor_i32, _mm256_xor_si256);
    avx2_bin_i32!(mins_i32, _mm256_min_epi32);
    avx2_bin_i32!(maxs_i32, _mm256_max_epi32);
    avx2_bin_i32!(minu_i32, _mm256_min_epu32);
    avx2_bin_i32!(maxu_i32, _mm256_max_epu32);

    /// `a[l] = a[l] OP c` for a broadcast constant.
    macro_rules! avx2_binc_i32 {
        ($name:ident, $intr:ident) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $name<const W: usize>(a: &mut [i32; W], c: i32) {
                let vc = _mm256_set1_epi32(c);
                let mut i = 0;
                while i + 8 <= W {
                    let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                    _mm256_storeu_si256(a.as_mut_ptr().add(i) as *mut __m256i, $intr(va, vc));
                    i += 8;
                }
            }
        };
    }

    avx2_binc_i32!(addc_i32, _mm256_add_epi32);
    avx2_binc_i32!(mulc_i32, _mm256_mullo_epi32);
    avx2_binc_i32!(andc_i32, _mm256_and_si256);
    avx2_binc_i32!(orc_i32, _mm256_or_si256);
    avx2_binc_i32!(xorc_i32, _mm256_xor_si256);

    /// `a[l] += coeff * v[l]` (wrapping) — the Axpy tap-accumulation spine
    /// of stencil kernels.
    #[target_feature(enable = "avx2")]
    unsafe fn axpy_i32<const W: usize>(a: &mut [i32; W], v: &[i32; W], coeff: i32) {
        let vc = _mm256_set1_epi32(coeff);
        let mut i = 0;
        while i + 8 <= W {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vv = _mm256_loadu_si256(v.as_ptr().add(i) as *const __m256i);
            let prod = _mm256_mullo_epi32(vv, vc);
            _mm256_storeu_si256(
                a.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_add_epi32(va, prod),
            );
            i += 8;
        }
    }

    /// Logical shift right; counts ≥ 32 yield 0, matching the portable
    /// `(l as u32) >> s` domain (compile guarantees `s < 32`).
    #[target_feature(enable = "avx2")]
    unsafe fn shru_i32<const W: usize>(a: &mut [i32; W], s: u32) {
        let count = _mm_cvtsi32_si128(s as i32);
        let mut i = 0;
        while i + 8 <= W {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                a.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_srl_epi32(va, count),
            );
            i += 8;
        }
    }

    /// Wrapping shift left: the count is masked mod 32 exactly like
    /// `i32::wrapping_shl`.
    #[target_feature(enable = "avx2")]
    unsafe fn shl_i32<const W: usize>(a: &mut [i32; W], s: u32) {
        let count = _mm_cvtsi32_si128((s & 31) as i32);
        let mut i = 0;
        while i + 8 <= W {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                a.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_sll_epi32(va, count),
            );
            i += 8;
        }
    }

    macro_rules! avx2_bin_i64 {
        ($name:ident, $intr:ident) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $name<const W: usize>(a: &mut [i64; W], b: &[i64; W]) {
                let mut i = 0;
                while i + 4 <= W {
                    let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                    let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
                    _mm256_storeu_si256(a.as_mut_ptr().add(i) as *mut __m256i, $intr(va, vb));
                    i += 4;
                }
            }
        };
    }

    avx2_bin_i64!(add_i64, _mm256_add_epi64);
    avx2_bin_i64!(sub_i64, _mm256_sub_epi64);
    avx2_bin_i64!(and_i64, _mm256_and_si256);
    avx2_bin_i64!(or_i64, _mm256_or_si256);
    avx2_bin_i64!(xor_i64, _mm256_xor_si256);

    /// 64-bit wrapping mullo — AVX2 has no `_mm256_mullo_epi64`, so build it
    /// from 32×32→64 partial products: `lo(a)·lo(b) + ((hi(a)·lo(b) +
    /// lo(a)·hi(b)) << 32)`, which is exactly `a·b mod 2^64`.
    #[target_feature(enable = "avx2")]
    unsafe fn mullo64(a: __m256i, b: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64(a, 32);
        let b_hi = _mm256_srli_epi64(b, 32);
        let lo = _mm256_mul_epu32(a, b);
        let cross1 = _mm256_mul_epu32(a_hi, b);
        let cross2 = _mm256_mul_epu32(a, b_hi);
        let cross = _mm256_slli_epi64(_mm256_add_epi64(cross1, cross2), 32);
        _mm256_add_epi64(lo, cross)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mul_i64<const W: usize>(a: &mut [i64; W], b: &[i64; W]) {
        let mut i = 0;
        while i + 4 <= W {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(a.as_mut_ptr().add(i) as *mut __m256i, mullo64(va, vb));
            i += 4;
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn axpy_i64<const W: usize>(a: &mut [i64; W], v: &[i64; W], coeff: i64) {
        let vc = _mm256_set1_epi64x(coeff);
        let mut i = 0;
        while i + 4 <= W {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vv = _mm256_loadu_si256(v.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                a.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_add_epi64(va, mullo64(vv, vc)),
            );
            i += 4;
        }
    }

    /// `a[l] = a[l] OP set1(c)` on i64 lanes, routed through `$apply`.
    macro_rules! avx2_binc_i64 {
        ($name:ident, $apply:expr) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $name<const W: usize>(a: &mut [i64; W], c: i64) {
                let vc = _mm256_set1_epi64x(c);
                let mut i = 0;
                while i + 4 <= W {
                    let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                    #[allow(clippy::redundant_closure_call)]
                    let r = $apply(va, vc);
                    _mm256_storeu_si256(a.as_mut_ptr().add(i) as *mut __m256i, r);
                    i += 4;
                }
            }
        };
    }

    avx2_binc_i64!(addc_i64, |a, c| _mm256_add_epi64(a, c));
    avx2_binc_i64!(mulc_i64, |a, c| mullo64(a, c));
    avx2_binc_i64!(andc_i64, |a, c| _mm256_and_si256(a, c));
    avx2_binc_i64!(orc_i64, |a, c| _mm256_or_si256(a, c));
    avx2_binc_i64!(xorc_i64, |a, c| _mm256_xor_si256(a, c));

    #[target_feature(enable = "avx2")]
    unsafe fn shru_i64<const W: usize>(a: &mut [i64; W], s: u32) {
        let count = _mm_cvtsi32_si128(s as i32);
        let mut i = 0;
        while i + 4 <= W {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                a.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_srl_epi64(va, count),
            );
            i += 4;
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn shl_i64<const W: usize>(a: &mut [i64; W], s: u32) {
        let count = _mm_cvtsi32_si128((s & 63) as i32);
        let mut i = 0;
        while i + 4 <= W {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                a.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_sll_epi64(va, count),
            );
            i += 4;
        }
    }

    /// Signed 64-bit min/max via `cmpgt` + byte blend (AVX2 has no
    /// `min/max_epi64`): `blendv(b, a, a OP b)` keeps `a` where the mask is
    /// set. Ties (equal lanes) pick either operand — identical values.
    #[target_feature(enable = "avx2")]
    unsafe fn mins_i64<const W: usize>(a: &mut [i64; W], b: &[i64; W]) {
        let mut i = 0;
        while i + 4 <= W {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let b_gt_a = _mm256_cmpgt_epi64(vb, va);
            _mm256_storeu_si256(
                a.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_blendv_epi8(vb, va, b_gt_a),
            );
            i += 4;
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn maxs_i64<const W: usize>(a: &mut [i64; W], b: &[i64; W]) {
        let mut i = 0;
        while i + 4 <= W {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let a_gt_b = _mm256_cmpgt_epi64(va, vb);
            _mm256_storeu_si256(
                a.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_blendv_epi8(vb, va, a_gt_b),
            );
            i += 4;
        }
    }

    /// `a[l] = a[l] OP b[l]` on float lanes: IEEE-exact single-rounding ops
    /// only (each vector op rounds once, exactly like the portable scalar).
    macro_rules! avx2_bin_f32 {
        ($name:ident, $intr:ident) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $name<const W: usize>(a: &mut [f32; W], b: &[f32; W]) {
                let mut i = 0;
                while i + 8 <= W {
                    let va = _mm256_loadu_ps(a.as_ptr().add(i));
                    let vb = _mm256_loadu_ps(b.as_ptr().add(i));
                    _mm256_storeu_ps(a.as_mut_ptr().add(i), $intr(va, vb));
                    i += 8;
                }
            }
        };
    }

    avx2_bin_f32!(add_f32, _mm256_add_ps);
    avx2_bin_f32!(sub_f32, _mm256_sub_ps);
    avx2_bin_f32!(mul_f32, _mm256_mul_ps);
    avx2_bin_f32!(div_f32, _mm256_div_ps);

    #[target_feature(enable = "avx2")]
    unsafe fn sqrt_f32<const W: usize>(a: &mut [f32; W]) {
        let mut i = 0;
        while i + 8 <= W {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            _mm256_storeu_ps(a.as_mut_ptr().add(i), _mm256_sqrt_ps(va));
            i += 8;
        }
    }

    macro_rules! avx2_bin_f64 {
        ($name:ident, $intr:ident) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $name<const W: usize>(a: &mut [f64; W], b: &[f64; W]) {
                let mut i = 0;
                while i + 4 <= W {
                    let va = _mm256_loadu_pd(a.as_ptr().add(i));
                    let vb = _mm256_loadu_pd(b.as_ptr().add(i));
                    _mm256_storeu_pd(a.as_mut_ptr().add(i), $intr(va, vb));
                    i += 4;
                }
            }
        };
    }

    avx2_bin_f64!(add_f64, _mm256_add_pd);
    avx2_bin_f64!(sub_f64, _mm256_sub_pd);
    avx2_bin_f64!(mul_f64, _mm256_mul_pd);
    avx2_bin_f64!(div_f64, _mm256_div_pd);

    #[target_feature(enable = "avx2")]
    unsafe fn sqrt_f64<const W: usize>(a: &mut [f64; W]) {
        let mut i = 0;
        while i + 4 <= W {
            let va = _mm256_loadu_pd(a.as_ptr().add(i));
            _mm256_storeu_pd(a.as_mut_ptr().add(i), _mm256_sqrt_pd(va));
            i += 4;
        }
    }

    // -- Chunk evaluators ---------------------------------------------------

    /// AVX2 `[i32; W]` chunk evaluator: the portable stack machine with the
    /// hot op bodies replaced by the block helpers above. Comparisons and
    /// selects keep the scalar lane loops (no profitable 0/1-mask form).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn eval_chunk_i32_avx2<const W: usize>(
        ops: &[VOp<i32>],
        taps: &[TapAccess],
        x: i64,
        n: usize,
        tap_bases: &[i64],
        lane_depth: usize,
        binds: &BindTable,
        vars: &[i64],
    ) -> [i32; W] {
        let mut st = [[0i32; W]; V_STACK];
        let mut sp = 0usize;
        for op in ops {
            match op {
                VOp::Const(v) => {
                    st[sp] = [*v; W];
                    sp += 1;
                }
                VOp::Var(depth) => {
                    if *depth == lane_depth {
                        let base = x as i32;
                        for (l, lane) in st[sp].iter_mut().enumerate() {
                            *lane = base + l as i32;
                        }
                    } else {
                        st[sp] = [vars[*depth] as i32; W];
                    }
                    sp += 1;
                }
                VOp::Load(t) => {
                    st[sp] = load_tap_i32::<W>(&taps[*t], tap_bases[*t], x, n, binds);
                    sp += 1;
                }
                VOp::Axpy { tap, coeff } => {
                    let v = load_tap_i32::<W>(&taps[*tap], tap_bases[*tap], x, n, binds);
                    axpy_i32(&mut st[sp - 1], &v, *coeff);
                }
                VOp::AddC(c) => addc_i32(&mut st[sp - 1], *c),
                VOp::MulC(c) => mulc_i32(&mut st[sp - 1], *c),
                VOp::AndC(c) => andc_i32(&mut st[sp - 1], *c),
                VOp::OrC(c) => orc_i32(&mut st[sp - 1], *c),
                VOp::XorC(c) => xorc_i32(&mut st[sp - 1], *c),
                VOp::Mask(m) => andc_i32(&mut st[sp - 1], *m),
                VOp::ShrU(s) => shru_i32(&mut st[sp - 1], *s),
                VOp::Shl(s) => shl_i32(&mut st[sp - 1], *s),
                VOp::Sext32 => {
                    // Identity on i32 lanes (never emitted here; kept total).
                }
                VOp::Add
                | VOp::Sub
                | VOp::Mul
                | VOp::And
                | VOp::Or
                | VOp::Xor
                | VOp::MinS
                | VOp::MaxS
                | VOp::MinU
                | VOp::MaxU => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    match op {
                        VOp::Add => add_i32(a, b),
                        VOp::Sub => sub_i32(a, b),
                        VOp::Mul => mul_i32(a, b),
                        VOp::And => and_i32(a, b),
                        VOp::Or => or_i32(a, b),
                        VOp::Xor => xor_i32(a, b),
                        VOp::MinS => mins_i32(a, b),
                        VOp::MaxS => maxs_i32(a, b),
                        VOp::MinU => minu_i32(a, b),
                        VOp::MaxU => maxu_i32(a, b),
                        _ => unreachable!("binary group"),
                    }
                    sp -= 1;
                }
                VOp::CmpS(cmp) => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    for l in 0..W {
                        let (x, y) = (a[l], b[l]);
                        a[l] = cmp_lanes(*cmp, x, y);
                    }
                    sp -= 1;
                }
                VOp::CmpU(cmp) => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    for l in 0..W {
                        let (x, y) = (a[l] as u32, b[l] as u32);
                        a[l] = cmp_lanes(*cmp, x, y);
                    }
                    sp -= 1;
                }
                VOp::Sel => {
                    let (head, tail) = st.split_at_mut(sp - 2);
                    let c = &mut head[sp - 3];
                    let (t, f) = (&tail[0], &tail[1]);
                    for l in 0..W {
                        c[l] = if c[l] != 0 { t[l] } else { f[l] };
                    }
                    sp -= 2;
                }
            }
        }
        debug_assert_eq!(sp, 1, "fused kernel must leave exactly one chunk");
        st[0]
    }

    /// AVX2 `[i64; W/2]` chunk evaluator. Multiplies use the `mullo64`
    /// emulation; `MinU`/`MaxU`, comparisons, selects and `Sext32` keep the
    /// scalar lane loops.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn eval_chunk_i64_avx2<const W: usize>(
        ops: &[VOp<i64>],
        taps: &[TapAccess],
        x: i64,
        n: usize,
        tap_bases: &[i64],
        lane_depth: usize,
        binds: &BindTable,
        vars: &[i64],
    ) -> [i64; W] {
        let mut st = [[0i64; W]; V_STACK];
        let mut sp = 0usize;
        for op in ops {
            match op {
                VOp::Const(v) => {
                    st[sp] = [*v; W];
                    sp += 1;
                }
                VOp::Var(depth) => {
                    if *depth == lane_depth {
                        for (l, lane) in st[sp].iter_mut().enumerate() {
                            *lane = x + l as i64;
                        }
                    } else {
                        st[sp] = [vars[*depth]; W];
                    }
                    sp += 1;
                }
                VOp::Load(t) => {
                    st[sp] = load_tap_i64::<W>(&taps[*t], tap_bases[*t], x, n, binds);
                    sp += 1;
                }
                VOp::Axpy { tap, coeff } => {
                    let v = load_tap_i64::<W>(&taps[*tap], tap_bases[*tap], x, n, binds);
                    axpy_i64(&mut st[sp - 1], &v, *coeff);
                }
                VOp::AddC(c) => addc_i64(&mut st[sp - 1], *c),
                VOp::MulC(c) => mulc_i64(&mut st[sp - 1], *c),
                VOp::AndC(c) => andc_i64(&mut st[sp - 1], *c),
                VOp::OrC(c) => orc_i64(&mut st[sp - 1], *c),
                VOp::XorC(c) => xorc_i64(&mut st[sp - 1], *c),
                VOp::Mask(m) => andc_i64(&mut st[sp - 1], *m),
                VOp::ShrU(s) => shru_i64(&mut st[sp - 1], *s),
                VOp::Shl(s) => shl_i64(&mut st[sp - 1], *s),
                VOp::Sext32 => {
                    for l in &mut st[sp - 1] {
                        *l = (*l as i32) as i64;
                    }
                }
                VOp::Add
                | VOp::Sub
                | VOp::Mul
                | VOp::And
                | VOp::Or
                | VOp::Xor
                | VOp::MinS
                | VOp::MaxS => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    match op {
                        VOp::Add => add_i64(a, b),
                        VOp::Sub => sub_i64(a, b),
                        VOp::Mul => mul_i64(a, b),
                        VOp::And => and_i64(a, b),
                        VOp::Or => or_i64(a, b),
                        VOp::Xor => xor_i64(a, b),
                        VOp::MinS => mins_i64(a, b),
                        VOp::MaxS => maxs_i64(a, b),
                        _ => unreachable!("binary group"),
                    }
                    sp -= 1;
                }
                VOp::MinU | VOp::MaxU => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    for l in 0..W {
                        let (x, y) = (a[l] as u64, b[l] as u64);
                        a[l] = if matches!(op, VOp::MinU) {
                            x.min(y)
                        } else {
                            x.max(y)
                        } as i64;
                    }
                    sp -= 1;
                }
                VOp::CmpS(cmp) => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    for l in 0..W {
                        let (x, y) = (a[l], b[l]);
                        a[l] = cmp_lanes(*cmp, x, y) as i64;
                    }
                    sp -= 1;
                }
                VOp::CmpU(cmp) => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    for l in 0..W {
                        let (x, y) = (a[l] as u64, b[l] as u64);
                        a[l] = cmp_lanes(*cmp, x, y) as i64;
                    }
                    sp -= 1;
                }
                VOp::Sel => {
                    let (head, tail) = st.split_at_mut(sp - 2);
                    let c = &mut head[sp - 3];
                    let (t, f) = (&tail[0], &tail[1]);
                    for l in 0..W {
                        c[l] = if c[l] != 0 { t[l] } else { f[l] };
                    }
                    sp -= 2;
                }
            }
        }
        debug_assert_eq!(sp, 1, "fused kernel must leave exactly one chunk");
        st[0]
    }

    /// AVX2 `[f32; W]` chunk evaluator: vector bodies for the IEEE-exact
    /// single-rounding ops only; `Min`/`Max`/`Cmp`/`Sel` keep the portable
    /// scalar bodies (NaN/±0 semantics; see the module docs).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn eval_chunk_f32_avx2<const W: usize>(
        ops: &[FOp<f32>],
        taps: &[TapAccess],
        x: i64,
        n: usize,
        tap_bases: &[i64],
        lane_depth: usize,
        binds: &BindTable,
        vars: &[i64],
    ) -> [f32; W] {
        let mut st = [[0.0f32; W]; V_STACK];
        let mut sp = 0usize;
        for op in ops {
            match op {
                FOp::Const(v) => {
                    st[sp] = [*v; W];
                    sp += 1;
                }
                FOp::Var(depth) => {
                    if *depth == lane_depth {
                        for (l, lane) in st[sp].iter_mut().enumerate() {
                            *lane = (x + l as i64) as f32;
                        }
                    } else {
                        st[sp] = [vars[*depth] as f32; W];
                    }
                    sp += 1;
                }
                FOp::Load(t) => {
                    st[sp] = load_tap_f32::<W>(&taps[*t], tap_bases[*t], x, n, binds);
                    sp += 1;
                }
                FOp::Sqrt => sqrt_f32(&mut st[sp - 1]),
                FOp::Add | FOp::Sub | FOp::Mul | FOp::Div => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    match op {
                        FOp::Add => add_f32(a, b),
                        FOp::Sub => sub_f32(a, b),
                        FOp::Mul => mul_f32(a, b),
                        FOp::Div => div_f32(a, b),
                        _ => unreachable!("binary group"),
                    }
                    sp -= 1;
                }
                FOp::Min | FOp::Max | FOp::Cmp(_) => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    match op {
                        FOp::Min => {
                            for l in 0..W {
                                a[l] = (a[l] as f64).min(b[l] as f64) as f32;
                            }
                        }
                        FOp::Max => {
                            for l in 0..W {
                                a[l] = (a[l] as f64).max(b[l] as f64) as f32;
                            }
                        }
                        FOp::Cmp(cmp) => {
                            for l in 0..W {
                                let (x, y) = (a[l], b[l]);
                                a[l] = cmp_lanes(*cmp, x, y) as f32;
                            }
                        }
                        _ => unreachable!("binary group"),
                    }
                    sp -= 1;
                }
                FOp::Sel => {
                    let (head, tail) = st.split_at_mut(sp - 2);
                    let c = &mut head[sp - 3];
                    let (t, f) = (&tail[0], &tail[1]);
                    for l in 0..W {
                        c[l] = if c[l] != 0.0 { t[l] } else { f[l] };
                    }
                    sp -= 2;
                }
            }
        }
        debug_assert_eq!(sp, 1, "fused kernel must leave exactly one chunk");
        st[0]
    }

    /// AVX2 `[f64; W/2]` chunk evaluator (same coverage split as f32).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn eval_chunk_f64_avx2<const W: usize>(
        ops: &[FOp<f64>],
        taps: &[TapAccess],
        x: i64,
        n: usize,
        tap_bases: &[i64],
        lane_depth: usize,
        binds: &BindTable,
        vars: &[i64],
    ) -> [f64; W] {
        let mut st = [[0.0f64; W]; V_STACK];
        let mut sp = 0usize;
        for op in ops {
            match op {
                FOp::Const(v) => {
                    st[sp] = [*v; W];
                    sp += 1;
                }
                FOp::Var(depth) => {
                    if *depth == lane_depth {
                        for (l, lane) in st[sp].iter_mut().enumerate() {
                            *lane = (x + l as i64) as f64;
                        }
                    } else {
                        st[sp] = [vars[*depth] as f64; W];
                    }
                    sp += 1;
                }
                FOp::Load(t) => {
                    st[sp] = load_tap_f64::<W>(&taps[*t], tap_bases[*t], x, n, binds);
                    sp += 1;
                }
                FOp::Sqrt => sqrt_f64(&mut st[sp - 1]),
                FOp::Add | FOp::Sub | FOp::Mul | FOp::Div => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    match op {
                        FOp::Add => add_f64(a, b),
                        FOp::Sub => sub_f64(a, b),
                        FOp::Mul => mul_f64(a, b),
                        FOp::Div => div_f64(a, b),
                        _ => unreachable!("binary group"),
                    }
                    sp -= 1;
                }
                FOp::Min | FOp::Max | FOp::Cmp(_) => {
                    let (head, tail) = st.split_at_mut(sp - 1);
                    let a = &mut head[sp - 2];
                    let b = &tail[0];
                    match op {
                        FOp::Min => {
                            for l in 0..W {
                                a[l] = a[l].min(b[l]);
                            }
                        }
                        FOp::Max => {
                            for l in 0..W {
                                a[l] = a[l].max(b[l]);
                            }
                        }
                        FOp::Cmp(cmp) => {
                            for l in 0..W {
                                let (x, y) = (a[l], b[l]);
                                a[l] = cmp_lanes(*cmp, x, y) as f64;
                            }
                        }
                        _ => unreachable!("binary group"),
                    }
                    sp -= 1;
                }
                FOp::Sel => {
                    let (head, tail) = st.split_at_mut(sp - 2);
                    let c = &mut head[sp - 3];
                    let (t, f) = (&tail[0], &tail[1]);
                    for l in 0..W {
                        c[l] = if c[l] != 0.0 { t[l] } else { f[l] };
                    }
                    sp -= 2;
                }
            }
        }
        debug_assert_eq!(sp, 1, "fused kernel must leave exactly one chunk");
        st[0]
    }

    /// Maximum tap count the plan evaluators stage per chunk. Kernels with
    /// more taps fall back to the full-chunk stack evaluators above (still
    /// AVX2, just without the register-resident plan).
    pub(super) const A_TAPS: usize = 16;

    /// One register-width tap load for the plan evaluators: streamed straight
    /// from the buffer when the chunk staging proved the direct pointer, else
    /// from the materialized array (written by the staging loop exactly when
    /// the pointer is null — the `MaybeUninit` is initialized on that path).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tap_vec_f32<const W: usize>(
        ptrs: &[*const f32; A_TAPS],
        arrs: &[core::mem::MaybeUninit<[f32; W]>; A_TAPS],
        t: usize,
        o: usize,
    ) -> __m256 {
        if ptrs[t].is_null() {
            _mm256_loadu_ps(arrs[t].assume_init_ref().as_ptr().add(o))
        } else {
            _mm256_loadu_ps(ptrs[t].add(o))
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tap_vec_f64<const W: usize>(
        ptrs: &[*const f64; A_TAPS],
        arrs: &[core::mem::MaybeUninit<[f64; W]>; A_TAPS],
        t: usize,
        o: usize,
    ) -> __m256d {
        if ptrs[t].is_null() {
            _mm256_loadu_pd(arrs[t].assume_init_ref().as_ptr().add(o))
        } else {
            _mm256_loadu_pd(ptrs[t].add(o))
        }
    }

    /// Generate one plan evaluator (see [`AOp`]): the float fused kernel as
    /// a register-resident stack machine. Taps are staged once per chunk —
    /// full-width contiguous taps of the native element type stream straight
    /// from the bound buffer, everything else materializes through the shared
    /// tap loader — then each register-width block runs the whole pre-fused
    /// plan in `__m256` registers, touching memory only for tap loads and the
    /// final store. This is where the arch tier earns its keep over the
    /// portable lane programs: a k-tap stencil does k loads and ~2k register
    /// ops per block instead of ~2k full-chunk passes through stack arrays.
    ///
    /// Exactness: every body performs the identical roundings in the
    /// identical operand order as the portable evaluator (`AOp`'s contract);
    /// `Min`/`Max`/`Cmp`/`Sel` spill to lanes and reuse the scalar bodies.
    macro_rules! plan_eval {
        ($name:ident, $elem:ty, $vec:ty, $vw:literal, $set1:ident, $loadu:ident,
         $storeu:ident, $zero:ident, $add:ident, $sub:ident, $mul:ident,
         $div:ident, $sqrt:ident, $direct_ty:pat, $esize:literal,
         $minmax:expr, $load_tap:ident, $tap_vec:ident) => {
            #[target_feature(enable = "avx2")]
            #[allow(clippy::too_many_arguments)]
            unsafe fn $name<const W: usize>(
                plan: &[AOp<$elem>],
                taps: &[TapAccess],
                x: i64,
                n: usize,
                tap_bases: &[i64],
                lane_depth: usize,
                binds: &BindTable,
                vars: &[i64],
            ) -> [$elem; W] {
                // Stage every tap once. A null pointer means "use the
                // materialized array"; a non-null one streams loads directly
                // from the bound buffer bytes (valid: the `get` proved
                // `W * size` bytes in range, and x86 loads are little-endian
                // like the portable byte decoder). The arrays stay
                // uninitialized unless their tap actually materializes —
                // zero-filling A_TAPS chunk-wide arrays per chunk would cost
                // more than the kernel itself.
                let mut ptrs = [core::ptr::null::<$elem>(); A_TAPS];
                let mut arrs = [const { core::mem::MaybeUninit::<[$elem; W]>::uninit() }; A_TAPS];
                for (t, tap) in taps.iter().enumerate() {
                    let mut direct = None;
                    if matches!(tap.lane, TapLane::Contiguous)
                        && matches!(tap.ty, $direct_ty)
                        && n >= W
                    {
                        let bind = binds.0[tap.slot].as_ref().expect("tap source bound");
                        let data = bind.data();
                        direct = usize::try_from(tap_bases[t] + x)
                            .ok()
                            .and_then(|o| o.checked_mul($esize))
                            .and_then(|b| Some((b, b.checked_add(W * $esize)?)))
                            .and_then(|(b, e)| data.get(b..e))
                            .map(|s| s.as_ptr() as *const $elem);
                    }
                    match direct {
                        Some(p) => ptrs[t] = p,
                        None => {
                            arrs[t].write($load_tap::<W>(tap, tap_bases[t], x, n, binds));
                        }
                    }
                }
                // Accumulator-shaped plans — one push, then only in-place
                // accumulate/unary ops, i.e. every sum-of-products stencil —
                // skip the block stack machine entirely: the running value
                // lives in one register per block, the plan is walked once,
                // and each op applies to every block, so op dispatch
                // amortizes over the whole chunk and the accumulate chain
                // gains cross-block ILP.
                let acc_shaped = matches!(
                    plan.first(),
                    Some(
                        AOp::Op(FOp::Const(_) | FOp::Var(_) | FOp::Load(_))
                            | AOp::PushCMulLoad { .. }
                            | AOp::PushLoadMulC { .. }
                    )
                ) && plan[1..].iter().all(|op| {
                    matches!(
                        op,
                        AOp::Op(FOp::Sqrt)
                            | AOp::AccAddLoad(_)
                            | AOp::AccSubLoad(_)
                            | AOp::AccMulLoad(_)
                            | AOp::AccDivLoad(_)
                            | AOp::AccAddC(_)
                            | AOp::AccSubC(_)
                            | AOp::AccMulC(_)
                            | AOp::AccDivC(_)
                            | AOp::AccAddCMulLoad { .. }
                            | AOp::AccAddLoadMulC { .. }
                    )
                });
                if acc_shaped {
                    let blk = W / $vw;
                    let mut acc = [$zero(); MAX_CHUNK / $vw];
                    match &plan[0] {
                        AOp::Op(FOp::Const(v)) => {
                            let s = $set1(*v);
                            for a in acc.iter_mut().take(blk) {
                                *a = s;
                            }
                        }
                        AOp::Op(FOp::Var(depth)) => {
                            if *depth == lane_depth {
                                let mut tmp = [0.0 as $elem; MAX_CHUNK];
                                for (l, lane) in tmp.iter_mut().enumerate().take(W) {
                                    *lane = (x + l as i64) as $elem;
                                }
                                for b in 0..blk {
                                    acc[b] = $loadu(tmp.as_ptr().add(b * $vw));
                                }
                            } else {
                                let s = $set1(vars[*depth] as $elem);
                                for a in acc.iter_mut().take(blk) {
                                    *a = s;
                                }
                            }
                        }
                        AOp::Op(FOp::Load(t)) => {
                            for b in 0..blk {
                                acc[b] = $tap_vec(&ptrs, &arrs, *t, b * $vw);
                            }
                        }
                        AOp::PushCMulLoad { tap, c } => {
                            let s = $set1(*c);
                            for b in 0..blk {
                                acc[b] = $mul(s, $tap_vec(&ptrs, &arrs, *tap, b * $vw));
                            }
                        }
                        AOp::PushLoadMulC { tap, c } => {
                            let s = $set1(*c);
                            for b in 0..blk {
                                acc[b] = $mul($tap_vec(&ptrs, &arrs, *tap, b * $vw), s);
                            }
                        }
                        _ => unreachable!("acc-shaped plan starts with a push"),
                    }
                    for op in &plan[1..] {
                        match op {
                            AOp::Op(FOp::Sqrt) => {
                                for a in acc.iter_mut().take(blk) {
                                    *a = $sqrt(*a);
                                }
                            }
                            AOp::AccAddLoad(t) => {
                                for b in 0..blk {
                                    acc[b] = $add(acc[b], $tap_vec(&ptrs, &arrs, *t, b * $vw));
                                }
                            }
                            AOp::AccSubLoad(t) => {
                                for b in 0..blk {
                                    acc[b] = $sub(acc[b], $tap_vec(&ptrs, &arrs, *t, b * $vw));
                                }
                            }
                            AOp::AccMulLoad(t) => {
                                for b in 0..blk {
                                    acc[b] = $mul(acc[b], $tap_vec(&ptrs, &arrs, *t, b * $vw));
                                }
                            }
                            AOp::AccDivLoad(t) => {
                                for b in 0..blk {
                                    acc[b] = $div(acc[b], $tap_vec(&ptrs, &arrs, *t, b * $vw));
                                }
                            }
                            AOp::AccAddC(c) => {
                                let s = $set1(*c);
                                for a in acc.iter_mut().take(blk) {
                                    *a = $add(*a, s);
                                }
                            }
                            AOp::AccSubC(c) => {
                                let s = $set1(*c);
                                for a in acc.iter_mut().take(blk) {
                                    *a = $sub(*a, s);
                                }
                            }
                            AOp::AccMulC(c) => {
                                let s = $set1(*c);
                                for a in acc.iter_mut().take(blk) {
                                    *a = $mul(*a, s);
                                }
                            }
                            AOp::AccDivC(c) => {
                                let s = $set1(*c);
                                for a in acc.iter_mut().take(blk) {
                                    *a = $div(*a, s);
                                }
                            }
                            AOp::AccAddCMulLoad { tap, c } => {
                                let s = $set1(*c);
                                for b in 0..blk {
                                    let v = $mul(s, $tap_vec(&ptrs, &arrs, *tap, b * $vw));
                                    acc[b] = $add(acc[b], v);
                                }
                            }
                            AOp::AccAddLoadMulC { tap, c } => {
                                let s = $set1(*c);
                                for b in 0..blk {
                                    let v = $mul($tap_vec(&ptrs, &arrs, *tap, b * $vw), s);
                                    acc[b] = $add(acc[b], v);
                                }
                            }
                            _ => unreachable!("acc-shaped plan body"),
                        }
                    }
                    let mut out = [0.0 as $elem; W];
                    for b in 0..blk {
                        $storeu(out.as_mut_ptr().add(b * $vw), acc[b]);
                    }
                    return out;
                }
                let mut out = [0.0 as $elem; W];
                let mut o = 0usize;
                while o < W {
                    let mut st = [$zero(); V_STACK];
                    let mut sp = 0usize;
                    for op in plan {
                        match op {
                            AOp::Op(FOp::Const(v)) => {
                                st[sp] = $set1(*v);
                                sp += 1;
                            }
                            AOp::Op(FOp::Var(depth)) => {
                                if *depth == lane_depth {
                                    let mut tmp = [0.0 as $elem; $vw];
                                    for (l, lane) in tmp.iter_mut().enumerate() {
                                        *lane = (x + (o + l) as i64) as $elem;
                                    }
                                    st[sp] = $loadu(tmp.as_ptr());
                                } else {
                                    st[sp] = $set1(vars[*depth] as $elem);
                                }
                                sp += 1;
                            }
                            AOp::Op(FOp::Load(t)) => {
                                st[sp] = $tap_vec(&ptrs, &arrs, *t, o);
                                sp += 1;
                            }
                            AOp::Op(FOp::Sqrt) => st[sp - 1] = $sqrt(st[sp - 1]),
                            AOp::Op(FOp::Add) => {
                                st[sp - 2] = $add(st[sp - 2], st[sp - 1]);
                                sp -= 1;
                            }
                            AOp::Op(FOp::Sub) => {
                                st[sp - 2] = $sub(st[sp - 2], st[sp - 1]);
                                sp -= 1;
                            }
                            AOp::Op(FOp::Mul) => {
                                st[sp - 2] = $mul(st[sp - 2], st[sp - 1]);
                                sp -= 1;
                            }
                            AOp::Op(FOp::Div) => {
                                st[sp - 2] = $div(st[sp - 2], st[sp - 1]);
                                sp -= 1;
                            }
                            AOp::Op(op @ (FOp::Min | FOp::Max | FOp::Cmp(_))) => {
                                let mut a = [0.0 as $elem; $vw];
                                let mut b = [0.0 as $elem; $vw];
                                $storeu(a.as_mut_ptr(), st[sp - 2]);
                                $storeu(b.as_mut_ptr(), st[sp - 1]);
                                match op {
                                    FOp::Min | FOp::Max => {
                                        #[allow(clippy::redundant_closure_call)]
                                        ($minmax)(&mut a, &b, matches!(op, FOp::Min));
                                    }
                                    FOp::Cmp(cmp) => {
                                        for l in 0..$vw {
                                            let (x, y) = (a[l], b[l]);
                                            a[l] = cmp_lanes(*cmp, x, y) as $elem;
                                        }
                                    }
                                    _ => unreachable!("scalar-body group"),
                                }
                                st[sp - 2] = $loadu(a.as_ptr());
                                sp -= 1;
                            }
                            AOp::Op(FOp::Sel) => {
                                let mut c = [0.0 as $elem; $vw];
                                let mut t = [0.0 as $elem; $vw];
                                let mut f = [0.0 as $elem; $vw];
                                $storeu(c.as_mut_ptr(), st[sp - 3]);
                                $storeu(t.as_mut_ptr(), st[sp - 2]);
                                $storeu(f.as_mut_ptr(), st[sp - 1]);
                                for l in 0..$vw {
                                    c[l] = if c[l] != 0.0 { t[l] } else { f[l] };
                                }
                                st[sp - 3] = $loadu(c.as_ptr());
                                sp -= 2;
                            }
                            AOp::PushCMulLoad { tap, c } => {
                                st[sp] = $mul($set1(*c), $tap_vec(&ptrs, &arrs, *tap, o));
                                sp += 1;
                            }
                            AOp::PushLoadMulC { tap, c } => {
                                st[sp] = $mul($tap_vec(&ptrs, &arrs, *tap, o), $set1(*c));
                                sp += 1;
                            }
                            AOp::AccAddCMulLoad { tap, c } => {
                                let v = $mul($set1(*c), $tap_vec(&ptrs, &arrs, *tap, o));
                                st[sp - 1] = $add(st[sp - 1], v);
                            }
                            AOp::AccAddLoadMulC { tap, c } => {
                                let v = $mul($tap_vec(&ptrs, &arrs, *tap, o), $set1(*c));
                                st[sp - 1] = $add(st[sp - 1], v);
                            }
                            AOp::AccAddLoad(t) => {
                                st[sp - 1] = $add(st[sp - 1], $tap_vec(&ptrs, &arrs, *t, o));
                            }
                            AOp::AccSubLoad(t) => {
                                st[sp - 1] = $sub(st[sp - 1], $tap_vec(&ptrs, &arrs, *t, o));
                            }
                            AOp::AccMulLoad(t) => {
                                st[sp - 1] = $mul(st[sp - 1], $tap_vec(&ptrs, &arrs, *t, o));
                            }
                            AOp::AccDivLoad(t) => {
                                st[sp - 1] = $div(st[sp - 1], $tap_vec(&ptrs, &arrs, *t, o));
                            }
                            AOp::AccAddC(c) => st[sp - 1] = $add(st[sp - 1], $set1(*c)),
                            AOp::AccSubC(c) => st[sp - 1] = $sub(st[sp - 1], $set1(*c)),
                            AOp::AccMulC(c) => st[sp - 1] = $mul(st[sp - 1], $set1(*c)),
                            AOp::AccDivC(c) => st[sp - 1] = $div(st[sp - 1], $set1(*c)),
                        }
                    }
                    debug_assert_eq!(sp, 1, "fused kernel must leave exactly one chunk");
                    $storeu(out.as_mut_ptr().add(o), st[0]);
                    o += $vw;
                }
                out
            }
        };
    }

    plan_eval!(
        eval_plan_f32_avx2,
        f32,
        __m256,
        8,
        _mm256_set1_ps,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_setzero_ps,
        _mm256_add_ps,
        _mm256_sub_ps,
        _mm256_mul_ps,
        _mm256_div_ps,
        _mm256_sqrt_ps,
        ScalarType::Float32,
        4,
        // Portable f32 Min/Max evaluates in f64 per lane (see FOp::Min).
        |a: &mut [f32; 8], b: &[f32; 8], is_min: bool| {
            for l in 0..8 {
                a[l] = if is_min {
                    (a[l] as f64).min(b[l] as f64) as f32
                } else {
                    (a[l] as f64).max(b[l] as f64) as f32
                };
            }
        },
        load_tap_f32,
        tap_vec_f32
    );

    plan_eval!(
        eval_plan_f64_avx2,
        f64,
        __m256d,
        4,
        _mm256_set1_pd,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_setzero_pd,
        _mm256_add_pd,
        _mm256_sub_pd,
        _mm256_mul_pd,
        _mm256_div_pd,
        _mm256_sqrt_pd,
        ScalarType::Float64,
        8,
        |a: &mut [f64; 4], b: &[f64; 4], is_min: bool| {
            for l in 0..4 {
                a[l] = if is_min {
                    a[l].min(b[l])
                } else {
                    a[l].max(b[l])
                };
            }
        },
        load_tap_f64,
        tap_vec_f64
    );

    /// AVX2 wrapping tree-sum of the first `n` i32 lanes: vector halving
    /// adds down to one 256-bit register, then a scalar finish. Any order
    /// is exact for wrapping addition.
    #[target_feature(enable = "avx2")]
    unsafe fn tree_sum_i32_avx2<const W: usize>(mut lanes: [i32; W], n: usize) -> i32 {
        for lane in lanes.iter_mut().skip(n) {
            *lane = 0;
        }
        let mut width = W;
        while width > 8 {
            width /= 2;
            let mut i = 0;
            while i + 8 <= width {
                let lo = _mm256_loadu_si256(lanes.as_ptr().add(i) as *const __m256i);
                let hi = _mm256_loadu_si256(lanes.as_ptr().add(i + width) as *const __m256i);
                _mm256_storeu_si256(
                    lanes.as_mut_ptr().add(i) as *mut __m256i,
                    _mm256_add_epi32(lo, hi),
                );
                i += 8;
            }
        }
        while width > 1 {
            width /= 2;
            for l in 0..width {
                lanes[l] = lanes[l].wrapping_add(lanes[l + width]);
            }
        }
        lanes[0]
    }

    #[target_feature(enable = "avx2")]
    unsafe fn tree_sum_i64_avx2<const W: usize>(mut lanes: [i64; W], n: usize) -> i64 {
        for lane in lanes.iter_mut().skip(n) {
            *lane = 0;
        }
        let mut width = W;
        while width > 4 {
            width /= 2;
            let mut i = 0;
            while i + 4 <= width {
                let lo = _mm256_loadu_si256(lanes.as_ptr().add(i) as *const __m256i);
                let hi = _mm256_loadu_si256(lanes.as_ptr().add(i + width) as *const __m256i);
                _mm256_storeu_si256(
                    lanes.as_mut_ptr().add(i) as *mut __m256i,
                    _mm256_add_epi64(lo, hi),
                );
                i += 4;
            }
        }
        while width > 1 {
            width /= 2;
            for l in 0..width {
                lanes[l] = lanes[l].wrapping_add(lanes[l + width]);
            }
        }
        lanes[0]
    }

    // -- Dispatch (the `arch` twins of the portable dispatchers) ------------

    /// SAFETY: caller must have verified AVX2 support (the `Isa::Avx2` gate).
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn dispatch_fused_chunk_avx2(
        fused: &FusedKernel,
        x: i64,
        w: usize,
        n: usize,
        tap_bases: &[i64],
        out_base: i64,
        lane_depth: usize,
        binds: &BindTable,
        vars: &[i64],
    ) {
        macro_rules! run {
            ($eval:ident, $store:ident, $ops:expr, $w:literal) => {{
                let lanes =
                    $eval::<$w>($ops, &fused.taps, x, n, tap_bases, lane_depth, binds, vars);
                $store::<$w>(fused, out_base, x, n, &lanes, binds);
            }};
        }
        match (&fused.prog, w) {
            (LaneProgram::I32(ops), 32) => run!(eval_chunk_i32_avx2, store_chunk_i32, ops, 32),
            (LaneProgram::I32(ops), 16) => run!(eval_chunk_i32_avx2, store_chunk_i32, ops, 16),
            (LaneProgram::I32(ops), _) => run!(eval_chunk_i32_avx2, store_chunk_i32, ops, 8),
            (LaneProgram::I64(ops), 16) => run!(eval_chunk_i64_avx2, store_chunk_i64, ops, 16),
            (LaneProgram::I64(ops), 8) => run!(eval_chunk_i64_avx2, store_chunk_i64, ops, 8),
            (LaneProgram::I64(ops), _) => run!(eval_chunk_i64_avx2, store_chunk_i64, ops, 4),
            // Float kernels prefer the register-resident plan evaluators
            // (bit-identical; see `AOp`); kernels staging more taps than the
            // plan path supports keep the full-chunk stack evaluators.
            (LaneProgram::F32(ops), _) => match (&fused.arch_plan, w) {
                (ArchPlan::F32(plan), 32) if fused.taps.len() <= A_TAPS => {
                    run!(eval_plan_f32_avx2, store_chunk_f32, plan, 32)
                }
                (ArchPlan::F32(plan), 16) if fused.taps.len() <= A_TAPS => {
                    run!(eval_plan_f32_avx2, store_chunk_f32, plan, 16)
                }
                (ArchPlan::F32(plan), 8) if fused.taps.len() <= A_TAPS => {
                    run!(eval_plan_f32_avx2, store_chunk_f32, plan, 8)
                }
                (_, 32) => run!(eval_chunk_f32_avx2, store_chunk_f32, ops, 32),
                (_, 16) => run!(eval_chunk_f32_avx2, store_chunk_f32, ops, 16),
                _ => run!(eval_chunk_f32_avx2, store_chunk_f32, ops, 8),
            },
            (LaneProgram::F64(ops), _) => match (&fused.arch_plan, w) {
                (ArchPlan::F64(plan), 16) if fused.taps.len() <= A_TAPS => {
                    run!(eval_plan_f64_avx2, store_chunk_f64, plan, 16)
                }
                (ArchPlan::F64(plan), 8) if fused.taps.len() <= A_TAPS => {
                    run!(eval_plan_f64_avx2, store_chunk_f64, plan, 8)
                }
                (ArchPlan::F64(plan), 4) if fused.taps.len() <= A_TAPS => {
                    run!(eval_plan_f64_avx2, store_chunk_f64, plan, 4)
                }
                (_, 16) => run!(eval_chunk_f64_avx2, store_chunk_f64, ops, 16),
                (_, 8) => run!(eval_chunk_f64_avx2, store_chunk_f64, ops, 8),
                _ => run!(eval_chunk_f64_avx2, store_chunk_f64, ops, 4),
            },
        }
    }

    /// SAFETY: caller must have verified AVX2 support (the `Isa::Avx2` gate).
    pub(super) unsafe fn dispatch_reduce_chunk_avx2(
        rk: &ReduceKernel,
        x: i64,
        n: usize,
        tap_bases: &[i64],
        lane_depth: usize,
        binds: &BindTable,
        vars: &[i64],
    ) -> i64 {
        match &rk.prog {
            LaneProgram::I32(ops) => {
                let lanes = eval_chunk_i32_avx2::<MAX_CHUNK>(
                    ops, &rk.taps, x, n, tap_bases, lane_depth, binds, vars,
                );
                tree_sum_i32_avx2(lanes, n) as i64
            }
            LaneProgram::I64(ops) => {
                let lanes = eval_chunk_i64_avx2::<{ MAX_CHUNK / 2 }>(
                    ops, &rk.taps, x, n, tap_bases, lane_depth, binds, vars,
                );
                tree_sum_i64_avx2(lanes, n)
            }
            LaneProgram::F32(_) | LaneProgram::F64(_) => {
                unreachable!("reduce kernels are integer-only")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points: prepare (compile once) / run (execute many)
// ---------------------------------------------------------------------------

/// A lowered statement compiled for repeated execution: every store's typed
/// lane programs, the slot table (output, images, roots, scoped allocations)
/// and the loop-nest metadata. Building the plan is the expensive step;
/// [`run`] only binds buffers and walks the loops.
///
/// The plan bakes scalar-parameter values and buffer element types into its
/// programs, so it is only valid for the binding signature it was prepared
/// against — [`crate::cache::CacheKey`] enforces this for cached plans.
#[derive(Debug)]
pub struct ExecPlan {
    stmt: Stmt,
    prepared: Prepared,
    /// Element type of each output buffer, in slot order (slot `i` is output
    /// `i`). Single-output plans have exactly one entry; multi-output fused
    /// nests ([`prepare_multi`]) have one per produced stage.
    output_tys: Vec<ScalarType>,
    image_names: Vec<String>,
    root_names: Vec<String>,
}

impl ExecPlan {
    /// Number of stores compiled with a fused SIMD lane kernel (tier 1),
    /// across all lane families. The kernel selection is part of the plan,
    /// so cached plans keep it.
    pub fn fused_store_count(&self) -> usize {
        self.fused_store_counts().total()
    }

    /// Per-lane-family fused-kernel counts (see [`FusedStoreCounts`]): which
    /// of the plan's stores run `[i32; W]`, `[i64; W/2]`, `[f32; W]` or
    /// `[f64; W/2]` chunks on tier 1.
    pub fn fused_store_counts(&self) -> FusedStoreCounts {
        let mut counts = FusedStoreCounts::default();
        for store in self.prepared.stores.iter().flatten() {
            match store.fused.as_ref().map(|f| f.family()) {
                Some(LaneFamily::I32) => counts.lanes_i32 += 1,
                Some(LaneFamily::I64) => counts.lanes_i64 += 1,
                Some(LaneFamily::F32) => counts.lanes_f32 += 1,
                Some(LaneFamily::F64) => counts.lanes_f64 += 1,
                None => {}
            }
        }
        counts
    }

    /// Number of compiled stores in the plan.
    pub fn store_count(&self) -> usize {
        self.prepared.stores.iter().filter(|s| s.is_some()).count()
    }

    /// Number of output buffers the plan produces (1 for ordinary plans,
    /// more for multi-output fused nests built via [`prepare_multi`]).
    pub fn output_count(&self) -> usize {
        self.output_tys.len()
    }

    /// Number of [`Stmt::SlideWindow`] nodes in the plan's loop nest — the
    /// sliding-window `compute_at` allocations the locality tier manages.
    pub fn sliding_window_count(&self) -> usize {
        self.stmt.sliding_window_count()
    }

    /// Window extents (rows of the slid dimension) of every
    /// [`Stmt::SlideWindow`] node in the plan, in visit order. A window of
    /// extent `E` re-uses `E - 1` rows per warm attach iteration.
    pub fn sliding_window_extents(&self) -> Vec<usize> {
        self.stmt.sliding_window_extents()
    }

    /// Number of guarded (reduction) stores in the plan — the lowered update
    /// definitions executing through the compiled engine.
    pub fn guarded_store_count(&self) -> usize {
        self.prepared
            .stores
            .iter()
            .flatten()
            .filter(|s| s.clamp)
            .count()
    }

    /// Number of guarded stores that compiled a fused accumulation kernel
    /// (the lane tree-reduce path), by lane family.
    pub fn reduce_store_counts(&self) -> FusedStoreCounts {
        let mut counts = FusedStoreCounts::default();
        for store in self.prepared.stores.iter().flatten() {
            match store.reduce.as_ref().map(|r| r.family()) {
                Some(LaneFamily::I32) => counts.lanes_i32 += 1,
                Some(LaneFamily::I64) => counts.lanes_i64 += 1,
                Some(LaneFamily::F32) | Some(LaneFamily::F64) | None => {}
            }
        }
        counts
    }

    /// Per-store compile-time profiles (see [`StoreProfile`]): the tier each
    /// store selected plus the shape facts — tap count, stencil halo radius,
    /// guarded/reduce/merge admissibility — that a cost model needs to
    /// predict the plan's run time without executing it. Kernel selection is
    /// part of the plan, so cached plans report the same profiles.
    ///
    /// `target` is the resolved [`Target`] the plan will execute under; each
    /// store with a fused or reduce kernel reports the lane ISA
    /// ([`StoreProfile::selected_isa`]) that target resolves to on this host,
    /// so a dry run predicts exactly what the executing path will count.
    pub fn store_profiles(&self, target: Target) -> Vec<StoreProfile> {
        let isa = target.effective_isa();
        self.prepared
            .stores
            .iter()
            .flatten()
            .map(|store| {
                let (taps, max_tap_offset) = match &store.fused {
                    Some(f) => (
                        f.taps.len(),
                        f.taps
                            .iter()
                            .flat_map(|t| t.dims.iter())
                            .map(|d| d.konst.abs())
                            .max()
                            .unwrap_or(0),
                    ),
                    None => (0, 0),
                };
                let has_lanes = store.fused.is_some() || store.reduce.is_some();
                StoreProfile {
                    fused: store.fused.as_ref().map(|f| f.family()),
                    taps,
                    max_tap_offset,
                    guarded: store.clamp,
                    reduce: store.reduce.as_ref().map(|r| r.family()),
                    parallel_reduce: store.merge.is_some(),
                    selected_isa: if has_lanes { isa } else { Isa::Portable },
                }
            })
            .collect()
    }
}

/// Compile a lowered statement into an [`ExecPlan`].
///
/// `images` and `roots` declare the read-only source buffers by name and
/// element type, in the exact order [`run`] will bind them; `output_name` is
/// bound writable with element type `output_ty`. Slot registration order
/// mirrors the interpreter's source resolution: images first, then roots
/// (which shadow same-named images), with the output always addressable under
/// its own name.
///
/// # Errors
/// Returns an error if a referenced buffer or parameter is missing.
pub fn prepare(
    stmt: Stmt,
    output_name: &str,
    output_ty: ScalarType,
    images: &[(String, ScalarType)],
    roots: &[(String, ScalarType)],
    params: &BTreeMap<String, Value>,
) -> Result<ExecPlan, RealizeError> {
    prepare_multi(
        stmt,
        &[(output_name.to_string(), output_ty)],
        images,
        roots,
        params,
    )
}

/// Compile a lowered statement producing several output buffers (a
/// multi-output fused nest) into an [`ExecPlan`]. The outputs occupy slots
/// `0..outputs.len()` writable, in order, followed by the images and roots —
/// [`run_multi_with_target`] binds output buffers in the same order. With a
/// single output this is exactly [`prepare`].
///
/// # Errors
/// Returns an error if a referenced buffer or parameter is missing.
pub fn prepare_multi(
    stmt: Stmt,
    outputs: &[(String, ScalarType)],
    images: &[(String, ScalarType)],
    roots: &[(String, ScalarType)],
    params: &BTreeMap<String, Value>,
) -> Result<ExecPlan, RealizeError> {
    let mut ctx = PrepareCtx {
        params,
        decls: Vec::new(),
        slot_ids: BTreeMap::new(),
        alloc_slots: BTreeMap::new(),
        stores: Vec::new(),
        var_depths: BTreeMap::new(),
        var_bounds: BTreeMap::new(),
        depth: 0,
        max_depth: 0,
        max_stack: 1,
        max_arity: 1,
    };
    for (name, ty) in outputs {
        ctx.add_slot(name, *ty, true);
    }
    for (name, ty) in images {
        ctx.add_slot(name, *ty, false);
    }
    for (name, ty) in roots {
        ctx.add_slot(name, *ty, false);
    }
    ctx.walk(&stmt)?;
    Ok(ExecPlan {
        stmt,
        prepared: Prepared {
            decls: ctx.decls,
            alloc_slots: ctx.alloc_slots,
            stores: ctx.stores,
            max_depth: ctx.max_depth,
            max_stack: ctx.max_stack,
            max_arity: ctx.max_arity,
        },
        output_tys: outputs.iter().map(|(_, ty)| *ty).collect(),
        image_names: images.iter().map(|(n, _)| n.clone()).collect(),
        root_names: roots.iter().map(|(n, _)| n.clone()).collect(),
    })
}

/// Execute a prepared plan against the given buffers with the process-wide
/// [`Target::current`]. See [`run_with_target`].
///
/// # Errors
/// Returns an error if a declared image or root buffer is not provided.
pub fn run(
    plan: &ExecPlan,
    output: &mut Buffer,
    images: &BTreeMap<String, &Buffer>,
    roots: &BTreeMap<String, Buffer>,
    params: &BTreeMap<String, Value>,
) -> Result<(), RealizeError> {
    run_with_target(plan, output, images, roots, params, Target::current())
}

/// Execute a prepared plan against the given buffers: the per-call half of
/// the compile/run split. Binds the output writable plus the declared images
/// and roots read-only (`Allocate` nodes bind their scratch buffers during
/// execution), then walks the loop nest. `target` selects which execution
/// tiers fused stores may use and which lane ISA the fused chunks execute on
/// (its features resolve through [`Target::effective_isa`] once per run);
/// every target produces bit-identical buffers.
///
/// # Errors
/// Returns an error if a declared image or root buffer is not provided.
pub fn run_with_target(
    plan: &ExecPlan,
    output: &mut Buffer,
    images: &BTreeMap<String, &Buffer>,
    roots: &BTreeMap<String, Buffer>,
    params: &BTreeMap<String, Value>,
    target: Target,
) -> Result<(), RealizeError> {
    run_multi_with_target(plan, &mut [output], images, roots, params, target)
}

/// Execute a prepared multi-output plan: binds `outputs` writable to slots
/// `0..outputs.len()` in the order [`prepare_multi`] declared them, then runs
/// like [`run_with_target`]. Increments the [`multi_output_nests_executed`]
/// counter when more than one output is produced.
///
/// # Errors
/// Returns an error if a declared image or root buffer is not provided.
pub fn run_multi_with_target(
    plan: &ExecPlan,
    outputs: &mut [&mut Buffer],
    images: &BTreeMap<String, &Buffer>,
    roots: &BTreeMap<String, Buffer>,
    params: &BTreeMap<String, Value>,
    target: Target,
) -> Result<(), RealizeError> {
    debug_assert_eq!(
        outputs.len(),
        plan.output_tys.len(),
        "output buffer count must match the prepared plan"
    );
    let bind_of = |b: &Buffer| SlotBind {
        ptr: b.bytes().as_ptr() as *mut u8,
        byte_len: b.bytes().len(),
        extents: b.extents().to_vec(),
        strides: b.strides().to_vec(),
    };
    let mut binds: Vec<Option<SlotBind>> = Vec::with_capacity(plan.prepared.decls.len());
    for (output, ty) in outputs.iter_mut().zip(&plan.output_tys) {
        debug_assert_eq!(
            output.scalar_type(),
            *ty,
            "output buffer type must match the prepared plan"
        );
        binds.push(Some(SlotBind {
            ptr: output.bytes_mut().as_mut_ptr(),
            byte_len: output.bytes().len(),
            extents: output.extents().to_vec(),
            strides: output.strides().to_vec(),
        }));
    }
    if outputs.len() > 1 {
        MULTI_OUTPUT_NESTS.fetch_add(1, Ordering::Relaxed);
    }
    for name in &plan.image_names {
        let buf = images
            .get(name)
            .ok_or_else(|| RealizeError::MissingInput(name.clone()))?;
        binds.push(Some(bind_of(buf)));
    }
    for name in &plan.root_names {
        let buf = roots
            .get(name)
            .ok_or_else(|| RealizeError::UndefinedFunc(name.clone()))?;
        binds.push(Some(bind_of(buf)));
    }
    // Allocate slots bind at runtime.
    binds.resize(plan.prepared.decls.len(), None);

    let runner = Runner {
        prepared: &plan.prepared,
        params,
        tier: target.tier(),
        isa: target.effective_isa(),
    };
    let mut binds = BindTable(binds);
    let mut env: Vec<(String, i64)> = Vec::new();
    let mut vars = vec![0i64; plan.prepared.max_depth.max(1)];
    let mut scratch = Scratch::new(&plan.prepared);
    runner.run(
        &plan.stmt,
        &mut binds,
        &mut env,
        &mut vars,
        &mut scratch,
        false,
    )
}

/// One-shot convenience: [`prepare`] + [`run`] against the given buffers.
///
/// # Errors
/// Returns an error if a referenced buffer or parameter is missing.
pub fn execute(
    stmt: &Stmt,
    output_name: &str,
    output: &mut Buffer,
    images: &BTreeMap<String, &Buffer>,
    roots: &BTreeMap<String, Buffer>,
    params: &BTreeMap<String, Value>,
) -> Result<(), RealizeError> {
    let image_decls: Vec<(String, ScalarType)> = images
        .iter()
        .map(|(n, b)| (n.clone(), b.scalar_type()))
        .collect();
    let root_decls: Vec<(String, ScalarType)> = roots
        .iter()
        .map(|(n, b)| (n.clone(), b.scalar_type()))
        .collect();
    let plan = prepare(
        stmt.clone(),
        output_name,
        output.scalar_type(),
        &image_decls,
        &root_decls,
        params,
    )?;
    run(&plan, output, images, roots, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn u32c(e: Expr) -> Expr {
        Expr::cast(ScalarType::UInt32, e)
    }

    fn tap(dx: i64, dy: i64) -> Expr {
        u32c(Expr::Image(
            "in".into(),
            vec![
                Expr::add(Expr::var("x"), Expr::int(dx)),
                Expr::add(Expr::var("y"), Expr::int(dy)),
            ],
        ))
    }

    /// `for y: for[vectorized(width)] x: out[x, y] = value`
    fn nest(w: i64, h: i64, width: usize, value: Expr) -> Stmt {
        Stmt::Produce {
            func: "out".into(),
            body: Box::new(Stmt::For {
                var: "y".into(),
                min: Expr::int(0),
                extent: Expr::int(h),
                kind: LoopKind::Serial,
                body: Box::new(Stmt::For {
                    var: "x".into(),
                    min: Expr::int(0),
                    extent: Expr::int(w),
                    kind: LoopKind::Vectorized { width },
                    body: Box::new(Stmt::Store {
                        id: 0,
                        buffer: "out".into(),
                        indices: vec![Expr::var("x"), Expr::var("y")],
                        value,
                    }),
                }),
            }),
        }
    }

    fn input(w: usize, h: usize, seed: u64) -> Buffer {
        let mut b = Buffer::new(ScalarType::UInt8, &[w, h]);
        let mut s = seed | 1;
        for c in b.coords().collect::<Vec<_>>() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.set(&c, Value::Int(((s >> 33) % 256) as i64));
        }
        b
    }

    fn plan_for(stmt: Stmt, out_ty: ScalarType) -> ExecPlan {
        prepare(
            stmt,
            "out",
            out_ty,
            &[("in".to_string(), ScalarType::UInt8)],
            &[],
            &BTreeMap::new(),
        )
        .expect("prepare")
    }

    /// Run the plan under both forced modes and assert bit-identical outputs
    /// (the per-op tier is the established oracle).
    fn assert_modes_agree(plan: &ExecPlan, extents: &[usize], img: &Buffer) {
        let images: BTreeMap<String, &Buffer> = [("in".to_string(), img)].into_iter().collect();
        let mut scalar = Buffer::new(plan.output_tys[0], extents);
        let mut simd = Buffer::new(plan.output_tys[0], extents);
        let params = BTreeMap::new();
        run_with_target(
            plan,
            &mut scalar,
            &images,
            &BTreeMap::new(),
            &params,
            Target::detect().with_tier(Tier::Scalar),
        )
        .expect("scalar run");
        run_with_target(
            plan,
            &mut simd,
            &images,
            &BTreeMap::new(),
            &params,
            Target::detect().with_tier(Tier::Simd),
        )
        .expect("simd run");
        assert_eq!(scalar, simd, "tiers diverged");
    }

    /// The lifted sharpen shape: negative taps encoded as `4294967295 * x`
    /// relying on u32 wrap-around, then a logical shift of the wrapped sum.
    #[test]
    fn fused_kernel_covers_u32_wraparound_shapes() {
        let neg = |e: Expr| u32c(Expr::mul(Expr::int(4294967295), e));
        let sum = u32c(Expr::add(
            u32c(Expr::add(
                u32c(Expr::add(
                    Expr::int(2),
                    u32c(Expr::mul(Expr::int(8), tap(1, 1))),
                )),
                neg(tap(0, 1)),
            )),
            neg(tap(2, 1)),
        ));
        let value = Expr::cast(
            ScalarType::UInt8,
            u32c(Expr::bin(BinOp::Shr, sum, Expr::uint(2))),
        );
        for (w, h) in [(13i64, 7i64), (31, 5), (8, 8)] {
            let plan = plan_for(nest(w, h, 8, value.clone()), ScalarType::UInt8);
            assert_eq!(plan.fused_store_count(), 1, "sharpen shape must fuse");
            for seed in [1u64, 99] {
                assert_modes_agree(&plan, &[w as usize, h as usize], &input(17, 11, seed));
            }
        }
    }

    /// The peephole collapses load/scale/accumulate chains into Axpy superops.
    #[test]
    fn peephole_fuses_multiply_accumulate_taps() {
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Shr,
                Expr::add(
                    Expr::add(Expr::int(2), Expr::mul(Expr::int(2), tap(1, 1))),
                    Expr::add(tap(0, 1), tap(2, 1)),
                ),
                Expr::uint(2),
            ),
        );
        let plan = plan_for(nest(16, 8, 8, value), ScalarType::UInt8);
        let fused = plan.prepared.stores[0]
            .as_ref()
            .and_then(|s| s.fused.as_ref())
            .expect("blur shape must fuse");
        let LaneProgram::I32(ops) = &fused.prog else {
            panic!("blur shape must fuse on i32 lanes, got {:?}", fused.prog);
        };
        let axpys = ops
            .iter()
            .filter(|op| matches!(op, VOp::Axpy { .. }))
            .count();
        assert!(axpys >= 2, "expected fused taps, got ops {ops:?}");
        assert_eq!(fused.taps.len(), 3, "distinct taps deduplicated");
    }

    /// Boundary clamping (negative and past-the-end offsets) is preserved by
    /// the interior/boundary split on odd/prime extents.
    #[test]
    fn interior_split_preserves_boundary_clamping() {
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Shr,
                Expr::add(tap(-2, -1), Expr::add(tap(0, 0), tap(3, 2))),
                Expr::uint(1),
            ),
        );
        for width in [8usize, 16, 32] {
            for (w, h) in [(7i64, 5i64), (13, 11), (37, 3), (4, 4)] {
                let plan = plan_for(nest(w, h, width, value.clone()), ScalarType::UInt8);
                assert_eq!(plan.fused_store_count(), 1);
                assert_modes_agree(
                    &plan,
                    &[w as usize, h as usize],
                    &input(w as usize, h as usize, 7),
                );
            }
        }
    }

    /// Lane ramps (the loop variable in the value) and broadcast taps
    /// (lane-invariant loads) both fuse and agree with the per-op tier.
    #[test]
    fn ramp_and_broadcast_taps_fuse() {
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::add(
                Expr::mul(Expr::var("x"), Expr::int(3)),
                u32c(Expr::Image("in".into(), vec![Expr::int(0), Expr::var("y")])),
            ),
        );
        let plan = plan_for(nest(19, 5, 16, value), ScalarType::UInt8);
        assert_eq!(plan.fused_store_count(), 1);
        assert_modes_agree(&plan, &[19, 5], &input(19, 5, 3));
    }

    /// Scheduled widths beyond MAX_LANES batch rather than truncate: a
    /// vectorize(32) loop produces the same buffer as vectorize(1), on the
    /// per-op tier (forced scalar) as well as the fused tier.
    #[test]
    fn wide_vector_widths_batch_rather_than_truncate() {
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::add(Expr::mul(Expr::var("x"), Expr::int(7)), tap(1, 0)),
        );
        let baseline_plan = plan_for(nest(45, 3, 1, value.clone()), ScalarType::UInt8);
        let wide_plan = plan_for(nest(45, 3, 32, value), ScalarType::UInt8);
        let img = input(45, 3, 11);
        let images: BTreeMap<String, &Buffer> = [("in".to_string(), &img)].into_iter().collect();
        let params = BTreeMap::new();
        let mut baseline = Buffer::new(ScalarType::UInt8, &[45, 3]);
        run_with_target(
            &baseline_plan,
            &mut baseline,
            &images,
            &BTreeMap::new(),
            &params,
            Target::detect().with_tier(Tier::Scalar),
        )
        .expect("baseline");
        for mode in [
            Target::detect().with_tier(Tier::Scalar),
            Target::detect(),
            Target::detect().with_tier(Tier::Simd),
        ] {
            let mut out = Buffer::new(ScalarType::UInt8, &[45, 3]);
            run_with_target(
                &wide_plan,
                &mut out,
                &images,
                &BTreeMap::new(),
                &params,
                mode,
            )
            .expect("wide");
            assert_eq!(out, baseline, "vectorize(32) diverged under {mode:?}");
        }
    }

    /// Shapes the 32-bit lane invariant cannot cover stay on the per-op tier:
    /// float outputs, float math, u64-typed loads, strided lane access.
    #[test]
    fn unfusable_shapes_keep_per_op_tier() {
        // Float output type.
        let plan = plan_for(nest(8, 4, 8, tap(0, 0)), ScalarType::Float32);
        assert_eq!(plan.fused_store_count(), 0);
        // Float arithmetic in the value.
        let fvalue = Expr::cast(
            ScalarType::UInt8,
            Expr::mul(tap(0, 0), Expr::ConstFloat(0.5, ScalarType::Float32)),
        );
        let plan = plan_for(nest(8, 4, 8, fvalue), ScalarType::UInt8);
        assert_eq!(plan.fused_store_count(), 0);
        // Strided (non-contiguous, non-broadcast) lane access.
        let strided = Expr::cast(
            ScalarType::UInt8,
            Expr::Image(
                "in".into(),
                vec![Expr::mul(Expr::var("x"), Expr::int(2)), Expr::var("y")],
            ),
        );
        let plan = plan_for(nest(8, 4, 8, strided), ScalarType::UInt8);
        assert_eq!(plan.fused_store_count(), 0);
        // And the per-op tier still executes them correctly (smoke).
        assert_modes_agree(&plan, &[8, 4], &input(16, 4, 5));
    }

    /// The fused-rows counter observes tier-1 execution.
    #[test]
    fn fused_rows_counter_advances_under_force_simd() {
        let plan = plan_for(nest(64, 16, 16, tap(0, 0)), ScalarType::UInt8);
        assert_eq!(plan.fused_store_count(), 1);
        let img = input(64, 16, 23);
        let images: BTreeMap<String, &Buffer> = [("in".to_string(), &img)].into_iter().collect();
        let params = BTreeMap::new();
        let mut out = Buffer::new(ScalarType::UInt8, &[64, 16]);
        let before = fused_rows_executed();
        run_with_target(
            &plan,
            &mut out,
            &images,
            &BTreeMap::new(),
            &params,
            Target::detect().with_tier(Tier::Simd),
        )
        .expect("run");
        assert!(
            fused_rows_executed() > before,
            "fused interior must have executed"
        );
    }

    /// Min/max and select shapes fuse when intervals prove them exact.
    #[test]
    fn min_max_select_shapes_fuse_and_agree() {
        let clamped = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Min,
                Expr::bin(
                    BinOp::Max,
                    Expr::bin(BinOp::Sub, tap(1, 0), tap(0, 1)),
                    Expr::int(0),
                ),
                Expr::int(200),
            ),
        );
        let plan = plan_for(nest(23, 9, 8, clamped), ScalarType::UInt8);
        assert_eq!(plan.fused_store_count(), 1, "clamp shape must fuse");
        assert_modes_agree(&plan, &[23, 9], &input(23, 9, 13));

        let select = Expr::cast(
            ScalarType::UInt8,
            Expr::select(
                Expr::cmp(CmpOp::Lt, tap(0, 0), Expr::int(128)),
                Expr::int(255),
                tap(1, 1),
            ),
        );
        let plan = plan_for(nest(23, 9, 8, select), ScalarType::UInt8);
        assert_eq!(plan.fused_store_count(), 1, "select shape must fuse");
        assert_modes_agree(&plan, &[23, 9], &input(23, 9, 17));
    }

    /// UInt16 outputs (narrow but not byte-wide) stay narrow end-to-end.
    #[test]
    fn u16_outputs_fuse() {
        let value = Expr::cast(
            ScalarType::UInt16,
            Expr::add(Expr::mul(tap(0, 0), Expr::int(257)), Expr::int(1)),
        );
        let plan = plan_for(nest(29, 6, 16, value), ScalarType::UInt16);
        assert_eq!(plan.fused_store_count(), 1);
        assert_modes_agree(&plan, &[29, 6], &input(29, 6, 29));
    }

    // -- The `[i64; W/2]` and `[f32; W]` lane families and masked tails -----

    fn plan_with_input(stmt: Stmt, out_ty: ScalarType, in_ty: ScalarType) -> ExecPlan {
        prepare(
            stmt,
            "out",
            out_ty,
            &[("in".to_string(), in_ty)],
            &[],
            &BTreeMap::new(),
        )
        .expect("prepare")
    }

    /// A Float32 input with NaN, infinities, a subnormal and
    /// rounding-sensitive values sprinkled among ordinary data.
    fn finput(w: usize, h: usize, seed: u64) -> Buffer {
        let mut b = Buffer::new(ScalarType::Float32, &[w, h]);
        let specials = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-40, // f32 subnormal after the store's narrowing
            -0.0,
            0.1,
            1.0 / 3.0,
        ];
        let mut s = seed | 1;
        for (i, c) in b.coords().collect::<Vec<_>>().into_iter().enumerate() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = if i % 5 == 3 {
                specials[(s >> 33) as usize % specials.len()]
            } else {
                ((s >> 29) as i64 % 4096) as f64 / 8.0 - 128.0
            };
            b.set(&c, Value::Float(v));
        }
        b
    }

    /// A raw Float32 tap (bit-exact load, no widening cast in the AST).
    fn ftap(dx: i64, dy: i64) -> Expr {
        Expr::Image(
            "in".into(),
            vec![
                Expr::add(Expr::var("x"), Expr::int(dx)),
                Expr::add(Expr::var("y"), Expr::int(dy)),
            ],
        )
    }

    fn f32c(e: Expr) -> Expr {
        Expr::cast(ScalarType::Float32, e)
    }

    /// The f32 lane family fuses rounding-disciplined float stencils (every
    /// op under a `cast<float>`, as lifted single-precision SSE code is) and
    /// matches the per-op tier bit-for-bit — including NaN/Inf/subnormal
    /// inputs.
    #[test]
    fn f32_lane_family_fuses_and_agrees() {
        // smooth-like: ((a + b) rounded) * w rounded, + center * w2 rounded.
        let value = f32c(Expr::add(
            f32c(Expr::mul(
                f32c(Expr::add(ftap(-1, 0), ftap(1, 0))),
                Expr::ConstFloat((1.0f32 / 12.0) as f64, ScalarType::Float32),
            )),
            f32c(Expr::mul(
                ftap(0, 0),
                Expr::ConstFloat(0.5, ScalarType::Float32),
            )),
        ));
        for width in [8usize, 16, 32] {
            for (w, h) in [(13i64, 7i64), (31, 5), (8, 8), (5, 3)] {
                let plan = plan_with_input(
                    nest(w, h, width, value.clone()),
                    ScalarType::Float32,
                    ScalarType::Float32,
                );
                assert_eq!(plan.fused_store_counts().lanes_f32, 1, "must fuse on f32");
                for seed in [1u64, 77] {
                    assert_modes_agree(
                        &plan,
                        &[w as usize, h as usize],
                        &finput(w as usize + 2, h as usize + 2, seed),
                    );
                }
            }
        }
    }

    /// Min/max, compares, selects, division and sqrt fuse on f32 lanes under
    /// rounding discipline and agree bit-for-bit (NaN propagation and ±0.0
    /// selection included).
    #[test]
    fn f32_value_sensitive_shapes_fuse_and_agree() {
        let value = Expr::select(
            Expr::cmp(
                CmpOp::Lt,
                ftap(0, 0),
                Expr::ConstFloat(0.0, ScalarType::Float32),
            ),
            f32c(Expr::Call(ExternCall::Sqrt, vec![ftap(1, 1)])),
            Expr::bin(
                BinOp::Min,
                f32c(Expr::bin(BinOp::Div, ftap(1, 0), ftap(0, 1))),
                Expr::bin(
                    BinOp::Max,
                    ftap(0, 0),
                    Expr::ConstFloat(-2.5, ScalarType::Float32),
                ),
            ),
        );
        let plan = plan_with_input(
            nest(23, 9, 8, value),
            ScalarType::Float32,
            ScalarType::Float32,
        );
        assert_eq!(plan.fused_store_counts().lanes_f32, 1);
        assert_modes_agree(&plan, &[23, 9], &finput(25, 11, 9));
    }

    /// Float shapes outside the rounding discipline must not fuse: unrounded
    /// arithmetic (the reference computes it in f64), f64-only constants, and
    /// Float64 outputs.
    #[test]
    fn f32_family_rejects_unrounded_shapes() {
        // An inner a + b with no cast<float> between it and the enclosing
        // multiply: the reference keeps the unrounded f64 sum as the multiply
        // operand, which no f32 lane can carry. (A top-level a + b *does*
        // fuse — the Float32 store itself is the rounding point.)
        let unrounded = f32c(Expr::mul(
            Expr::add(ftap(-1, 0), ftap(1, 0)),
            Expr::ConstFloat(0.5, ScalarType::Float32),
        ));
        let plan = plan_with_input(
            nest(8, 4, 8, unrounded.clone()),
            ScalarType::Float32,
            ScalarType::Float32,
        );
        assert_eq!(plan.fused_store_count(), 0, "unrounded add must not fuse");
        // A constant that needs f64 precision.
        let f64_const = f32c(Expr::mul(
            ftap(0, 0),
            Expr::ConstFloat(0.1, ScalarType::Float64),
        ));
        let plan = plan_with_input(
            nest(8, 4, 8, f64_const),
            ScalarType::Float32,
            ScalarType::Float32,
        );
        assert_eq!(
            plan.fused_store_count(),
            0,
            "f64-only constant must not fuse"
        );
        // Float64 output: the reference representation itself, no shortcut.
        let plan = plan_with_input(
            nest(
                8,
                4,
                8,
                f32c(Expr::mul(
                    ftap(0, 0),
                    Expr::ConstFloat(0.5, ScalarType::Float32),
                )),
            ),
            ScalarType::Float64,
            ScalarType::Float32,
        );
        assert_eq!(plan.fused_store_count(), 0, "f64 output must not fuse");
        // And the per-op tier still executes them correctly (smoke).
        let plan = plan_with_input(
            nest(8, 4, 8, unrounded),
            ScalarType::Float32,
            ScalarType::Float32,
        );
        assert_modes_agree(&plan, &[8, 4], &finput(10, 6, 5));
    }

    /// UInt64 outputs — where the 32-bit wrap proofs are vacuous — fuse on
    /// the i64 family, whose lanes are the exact reference values.
    #[test]
    fn i64_lane_family_covers_u64_outputs() {
        let value = Expr::cast(
            ScalarType::UInt64,
            Expr::add(
                Expr::mul(tap(0, 0), Expr::int(0x1_0000_0001)),
                Expr::bin(
                    BinOp::Shl,
                    Expr::cast(ScalarType::UInt64, tap(1, 1)),
                    Expr::int(33),
                ),
            ),
        );
        for width in [8usize, 16, 32] {
            let plan = plan_for(nest(21, 6, width, value.clone()), ScalarType::UInt64);
            assert_eq!(plan.fused_store_counts().lanes_i64, 1, "must fuse on i64");
            assert_modes_agree(&plan, &[21, 6], &input(23, 8, 3));
        }
    }

    /// A ≤32-bit output whose interval proofs fail falls back from the i32
    /// family to the i64 family rather than to the per-op tier.
    #[test]
    fn i64_family_rescues_unprovable_narrow_outputs() {
        // min over values far outside u32: the i32 family cannot prove MinS
        // or MinU exact, the i64 family needs no proof.
        let value = Expr::cast(
            ScalarType::UInt32,
            Expr::bin(
                BinOp::Min,
                Expr::mul(tap(0, 0), Expr::int(1 << 40)),
                Expr::int(1 << 41),
            ),
        );
        let plan = plan_for(nest(19, 5, 8, value), ScalarType::UInt32);
        let counts = plan.fused_store_counts();
        assert_eq!(
            (counts.lanes_i32, counts.lanes_i64),
            (0, 1),
            "unprovable narrow output must ride the i64 family"
        );
        assert_modes_agree(&plan, &[19, 5], &input(21, 7, 11));
    }

    // -- The `[f64; W/2]` lane family and the arch (AVX2) dispatch ----------

    /// A Float64 input with NaN, infinities, ±0 and irrationals sprinkled
    /// among ordinary data — f64 lanes carry the reference values, so even
    /// the specials must survive every path bit-for-bit.
    fn dinput(w: usize, h: usize, seed: u64) -> Buffer {
        let mut b = Buffer::new(ScalarType::Float64, &[w, h]);
        let specials = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
        ];
        let mut s = seed | 1;
        for (i, c) in b.coords().collect::<Vec<_>>().into_iter().enumerate() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = if i % 5 == 3 {
                specials[(s >> 33) as usize % specials.len()]
            } else {
                ((s >> 29) as i64 % 4096) as f64 / 8.0 - 128.0
            };
            b.set(&c, Value::Float(v));
        }
        b
    }

    fn dconst(v: f64) -> Expr {
        Expr::ConstFloat(v, ScalarType::Float64)
    }

    /// The f64 family needs no rounding discipline: unrounded smooth-style
    /// arithmetic (the exact shape the f32 family must reject) fuses directly
    /// because the lanes are the reference representation. This is the
    /// original double-precision miniGMG smooth shape.
    #[test]
    fn f64_lane_family_fuses_and_agrees() {
        let value = Expr::add(
            Expr::mul(Expr::add(ftap(-1, 0), ftap(1, 0)), dconst(1.0 / 12.0)),
            Expr::mul(ftap(0, 0), dconst(0.5)),
        );
        for width in [8usize, 16, 32] {
            for (w, h) in [(13i64, 7i64), (31, 5), (8, 8), (5, 3)] {
                let plan = plan_with_input(
                    nest(w, h, width, value.clone()),
                    ScalarType::Float64,
                    ScalarType::Float64,
                );
                assert_eq!(plan.fused_store_counts().lanes_f64, 1, "must fuse on f64");
                for seed in [1u64, 77] {
                    assert_modes_agree(
                        &plan,
                        &[w as usize, h as usize],
                        &dinput(w as usize + 2, h as usize + 2, seed),
                    );
                }
            }
        }
    }

    /// Min/max, compares, selects, division and sqrt on f64 lanes are the
    /// reference ops verbatim and agree bit-for-bit (NaN propagation and
    /// ±0.0 selection included).
    #[test]
    fn f64_value_sensitive_shapes_fuse_and_agree() {
        let value = Expr::select(
            Expr::cmp(CmpOp::Lt, ftap(0, 0), dconst(0.0)),
            Expr::Call(ExternCall::Sqrt, vec![ftap(1, 1)]),
            Expr::bin(
                BinOp::Min,
                Expr::bin(BinOp::Div, ftap(1, 0), ftap(0, 1)),
                Expr::bin(BinOp::Max, ftap(0, 0), dconst(-2.5)),
            ),
        );
        let plan = plan_with_input(
            nest(23, 9, 8, value),
            ScalarType::Float64,
            ScalarType::Float64,
        );
        assert_eq!(plan.fused_store_counts().lanes_f64, 1);
        assert_modes_agree(&plan, &[23, 9], &dinput(25, 11, 9));
    }

    /// Integer taps and the loop variable mix into f64 arithmetic: within
    /// ±2^53 their promotion is exact, so narrow integer inputs ride the f64
    /// family. All-integer arithmetic must still reject (the reference wraps
    /// on i64), as must UInt64 taps (outside the exact range).
    #[test]
    fn f64_family_admits_exact_int_leaves_only() {
        // Raw u8 tap × f64 weight + the lane variable: mixed, fuses. (A
        // `cast<u32>`-wrapped tap would not — integer casts leave the exact
        // domain, so only raw integer loads are admissible leaves.)
        let mixed = Expr::add(
            Expr::mul(ftap(0, 0), dconst(0.25)),
            Expr::mul(Expr::var("x"), dconst(1.5)),
        );
        let plan = plan_with_input(
            nest(19, 5, 8, mixed),
            ScalarType::Float64,
            ScalarType::UInt8,
        );
        assert_eq!(plan.fused_store_counts().lanes_f64, 1, "mixed must fuse");
        assert_modes_agree(&plan, &[19, 5], &input(21, 7, 5));

        // All-integer arithmetic under a Float64 output: must not fuse on
        // f64 lanes (reference wraps on i64 before the final promotion).
        let all_int = Expr::add(ftap(0, 0), ftap(1, 1));
        let plan = plan_with_input(
            nest(8, 4, 8, all_int),
            ScalarType::Float64,
            ScalarType::UInt8,
        );
        assert_eq!(
            plan.fused_store_counts().lanes_f64,
            0,
            "all-int arithmetic must not ride f64 lanes"
        );

        // UInt64 taps exceed ±2^53: reject.
        let u64_tap = Expr::mul(ftap(0, 0), dconst(0.5));
        let plan = plan_with_input(
            nest(8, 4, 8, u64_tap),
            ScalarType::Float64,
            ScalarType::UInt64,
        );
        assert_eq!(
            plan.fused_store_counts().lanes_f64,
            0,
            "u64 taps must not ride f64 lanes"
        );
    }

    /// The arch (AVX2) dispatch is bit-identical to the portable lanes and
    /// observable via the [`arch_rows_executed`] counter; a portable target
    /// never touches it. Skipped with a notice on hosts without AVX2.
    #[test]
    fn arch_dispatch_agrees_with_portable_and_counts_rows() {
        use crate::target::Feature;
        if !Target::detect().has(Feature::Avx2) {
            eprintln!("skipping arch_dispatch test: host has no AVX2");
            return;
        }
        // One integer and one float shape, covering fused rows and the
        // reduce-free fused path under both ISAs.
        let int_value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Shr,
                Expr::add(
                    Expr::add(Expr::int(2), Expr::mul(Expr::int(2), tap(1, 1))),
                    Expr::add(tap(0, 1), tap(2, 1)),
                ),
                Expr::uint(2),
            ),
        );
        let f64_value = Expr::add(
            Expr::mul(Expr::add(ftap(-1, 0), ftap(1, 0)), dconst(1.0 / 12.0)),
            Expr::mul(ftap(0, 0), dconst(0.5)),
        );
        let arch = Target::with_features(&[Feature::Avx2]).with_tier(Tier::Simd);
        let portable = Target::portable().with_tier(Tier::Simd);
        let params = BTreeMap::new();

        let int_plan = plan_for(nest(37, 9, 16, int_value), ScalarType::UInt8);
        assert_eq!(int_plan.fused_store_count(), 1);
        let img = input(39, 11, 3);
        let images: BTreeMap<String, &Buffer> = [("in".to_string(), &img)].into_iter().collect();
        let mut a = Buffer::new(ScalarType::UInt8, &[37, 9]);
        let mut p = Buffer::new(ScalarType::UInt8, &[37, 9]);
        let before = arch_rows_executed();
        run_with_target(&int_plan, &mut a, &images, &BTreeMap::new(), &params, arch)
            .expect("arch run");
        assert!(
            arch_rows_executed() > before,
            "AVX2 target must execute arch rows"
        );
        let before = arch_rows_executed();
        run_with_target(
            &int_plan,
            &mut p,
            &images,
            &BTreeMap::new(),
            &params,
            portable,
        )
        .expect("portable run");
        assert_eq!(
            arch_rows_executed(),
            before,
            "portable target must not touch the arch path"
        );
        assert_eq!(a, p, "i32 arch lanes diverged from portable");

        let f64_plan = plan_with_input(
            nest(37, 9, 16, f64_value),
            ScalarType::Float64,
            ScalarType::Float64,
        );
        assert_eq!(f64_plan.fused_store_counts().lanes_f64, 1);
        let img = dinput(39, 11, 7);
        let images: BTreeMap<String, &Buffer> = [("in".to_string(), &img)].into_iter().collect();
        let mut a = Buffer::new(ScalarType::Float64, &[37, 9]);
        let mut p = Buffer::new(ScalarType::Float64, &[37, 9]);
        run_with_target(&f64_plan, &mut a, &images, &BTreeMap::new(), &params, arch)
            .expect("arch run");
        run_with_target(
            &f64_plan,
            &mut p,
            &images,
            &BTreeMap::new(),
            &params,
            portable,
        )
        .expect("portable run");
        assert_eq!(a, p, "f64 arch lanes diverged from portable");
    }

    /// [`ExecPlan::store_profiles`] reports the lane ISA the given target
    /// resolves to on this host — portable targets always report portable,
    /// and stores without lane kernels report portable regardless.
    #[test]
    fn store_profiles_report_selected_isa() {
        use crate::target::Feature;
        let plan = plan_for(nest(16, 4, 8, tap(0, 0)), ScalarType::UInt8);
        assert_eq!(plan.fused_store_count(), 1);
        for p in plan.store_profiles(Target::portable()) {
            assert_eq!(p.selected_isa, Isa::Portable);
        }
        let avx2 = Target::with_features(&[Feature::Avx2]);
        let expect = avx2.effective_isa(); // Avx2 on AVX2 hosts, else Portable
        for p in plan.store_profiles(avx2) {
            assert_eq!(p.selected_isa, expect, "fused store must report the ISA");
        }
    }

    /// Sub-width interior tails run as fused chunks (masked below one chunk,
    /// overlapping above) instead of peeling onto the per-op tier: extents
    /// below, at and around the chunk width all stay bit-exact and the tail
    /// counter advances for the non-dividing ones.
    #[test]
    fn masked_and_overlapping_tails_keep_small_extents_on_tier1() {
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Shr,
                Expr::add(tap(0, 0), Expr::add(tap(1, 0), tap(2, 0))),
                Expr::uint(1),
            ),
        );
        // Chunk width is 8 (vectorize(8)); input is wide enough that the
        // interior spans the whole row for every extent.
        for w in [3i64, 5, 7, 8, 9, 15, 16, 17] {
            let plan = plan_for(nest(w, 4, 8, value.clone()), ScalarType::UInt8);
            assert_eq!(plan.fused_store_count(), 1);
            let rows_before = fused_rows_executed();
            let tails_before = fused_tail_chunks_executed();
            assert_modes_agree(&plan, &[w as usize, 4], &input(24, 6, 13));
            assert!(
                fused_rows_executed() > rows_before,
                "extent {w}: fused interior must have executed"
            );
            if w % 8 != 0 {
                assert!(
                    fused_tail_chunks_executed() > tails_before,
                    "extent {w}: the sub-width tail must run as a fused chunk"
                );
            }
        }
    }

    /// A store whose value reads its own buffer must refuse fusion entirely
    /// (chunked evaluation would observe its own writes) — and therefore
    /// also the overlapping-chunk tail variant.
    #[test]
    fn self_aliasing_store_refuses_fusion() {
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::add(
                Expr::FuncRef(
                    "out".into(),
                    vec![Expr::add(Expr::var("x"), Expr::int(-1)), Expr::var("y")],
                ),
                tap(0, 0),
            ),
        );
        let plan = plan_for(nest(16, 4, 8, value), ScalarType::UInt8);
        assert_eq!(
            plan.fused_store_count(),
            0,
            "self-aliasing store must stay on the per-op tier"
        );
    }

    /// `for r: reduce out[0] = out(0) + in(r)` — the canonical accumulator
    /// nest a lowered update produces.
    fn reduce_nest(extent: i64, value: Expr) -> Stmt {
        Stmt::Produce {
            func: "out".into(),
            body: Box::new(Stmt::For {
                var: "r_0.x".into(),
                min: Expr::int(0),
                extent: Expr::int(extent),
                kind: LoopKind::Serial,
                body: Box::new(Stmt::ReduceStore {
                    id: 0,
                    buffer: "out".into(),
                    indices: vec![Expr::int(0)],
                    value,
                }),
            }),
        }
    }

    fn accum_value(g: Expr) -> Expr {
        Expr::cast(
            ScalarType::UInt64,
            Expr::add(Expr::FuncRef("out".into(), vec![Expr::int(0)]), g),
        )
    }

    #[test]
    fn reduce_kernel_compiles_and_matches_per_op_tier() {
        let g = Expr::cast(
            ScalarType::UInt64,
            Expr::Image("in".into(), vec![Expr::RVar("r_0.x".into()), Expr::int(0)]),
        );
        for extent in [1i64, 7, 15, 16, 17, 100, 257] {
            let plan = plan_for(
                reduce_nest(extent, accum_value(g.clone())),
                ScalarType::UInt64,
            );
            assert_eq!(plan.guarded_store_count(), 1);
            assert_eq!(
                plan.reduce_store_counts().lanes_i64,
                1,
                "u64 accumulator rides exact i64 lanes"
            );
            let img = input(300, 1, 99);
            let images: BTreeMap<String, &Buffer> =
                [("in".to_string(), &img)].into_iter().collect();
            let expect: u64 = (0..extent as usize)
                .map(|i| img.get(&[i as i64, 0]).as_i64() as u64)
                .fold(0, u64::wrapping_add);
            for mode in [
                Target::detect().with_tier(Tier::Scalar),
                Target::detect(),
                Target::detect().with_tier(Tier::Simd),
            ] {
                let mut out = Buffer::new(ScalarType::UInt64, &[1]);
                run_with_target(
                    &plan,
                    &mut out,
                    &images,
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                    mode,
                )
                .expect("run");
                assert_eq!(
                    out.get(&[0]).as_i64() as u64,
                    expect,
                    "extent {extent} mode {mode:?}"
                );
            }
        }
    }

    #[test]
    fn reduce_kernel_rejects_unsupported_shapes() {
        // g reading the accumulator buffer itself: must not chunk.
        let self_g = Expr::cast(
            ScalarType::UInt64,
            Expr::FuncRef("out".into(), vec![Expr::RVar("r_0.x".into())]),
        );
        let plan = plan_for(reduce_nest(16, accum_value(self_g)), ScalarType::UInt64);
        assert_eq!(plan.reduce_store_counts().total(), 0);
        // A data-dependent LHS (histogram) is not loop-invariant: no kernel,
        // but the guarded store still compiles onto the per-op tier.
        let lhs = Expr::Image("in".into(), vec![Expr::RVar("r_0.x".into()), Expr::int(0)]);
        let hist = Stmt::Produce {
            func: "out".into(),
            body: Box::new(Stmt::For {
                var: "r_0.x".into(),
                min: Expr::int(0),
                extent: Expr::int(32),
                kind: LoopKind::Serial,
                body: Box::new(Stmt::ReduceStore {
                    id: 0,
                    buffer: "out".into(),
                    indices: vec![lhs.clone()],
                    value: Expr::cast(
                        ScalarType::UInt64,
                        Expr::add(Expr::FuncRef("out".into(), vec![lhs]), Expr::int(1)),
                    ),
                }),
            }),
        };
        let plan = plan_for(hist, ScalarType::UInt64);
        assert_eq!(plan.guarded_store_count(), 1);
        assert_eq!(plan.reduce_store_counts().total(), 0);
        // Float accumulators never fuse (f32/f64 addition is not associative).
        let fplan = prepare(
            reduce_nest(
                16,
                Expr::add(
                    Expr::FuncRef("out".into(), vec![Expr::int(0)]),
                    Expr::Image("in".into(), vec![Expr::RVar("r_0.x".into()), Expr::int(0)]),
                ),
            ),
            "out",
            ScalarType::Float64,
            &[("in".to_string(), ScalarType::UInt8)],
            &[],
            &BTreeMap::new(),
        )
        .expect("prepare");
        assert_eq!(fplan.reduce_store_counts().total(), 0);
    }

    #[test]
    fn guarded_store_clamps_destination_indices() {
        // reduce out[r - 2] = out(r - 2) + 1 over r in [0, 8): indices -2..5
        // clamp to [0, 3] exactly like Buffer::set.
        let idx = Expr::add(Expr::RVar("r_0.x".into()), Expr::int(-2));
        let nest = Stmt::Produce {
            func: "out".into(),
            body: Box::new(Stmt::For {
                var: "r_0.x".into(),
                min: Expr::int(0),
                extent: Expr::int(8),
                kind: LoopKind::Serial,
                body: Box::new(Stmt::ReduceStore {
                    id: 0,
                    buffer: "out".into(),
                    indices: vec![idx.clone()],
                    value: Expr::cast(
                        ScalarType::UInt32,
                        Expr::add(Expr::FuncRef("out".into(), vec![idx]), Expr::int(1)),
                    ),
                }),
            }),
        };
        let plan =
            prepare(nest, "out", ScalarType::UInt32, &[], &[], &BTreeMap::new()).expect("prepare");
        let mut out = Buffer::new(ScalarType::UInt32, &[4]);
        run(
            &plan,
            &mut out,
            &BTreeMap::new(),
            &BTreeMap::new(),
            &BTreeMap::new(),
        )
        .expect("run");
        // Indices -2, -1, 0 clamp onto element 0 (three hits); 3, 4, 5 clamp
        // onto element 3 (three hits, reads clamping identically).
        assert_eq!(out.get(&[0]).as_i64(), 3);
        assert_eq!(out.get(&[1]).as_i64(), 1);
        assert_eq!(out.get(&[2]).as_i64(), 1);
        assert_eq!(out.get(&[3]).as_i64(), 3);
    }

    /// 2-D histogram nest with a [`LoopKind::ParallelReduce`] outer loop, the
    /// shape `lower_update` tags for `reduce hist[in(r.x, r.y)] += 1`.
    fn parallel_hist_nest(w: i64, h: i64, threads: usize) -> Stmt {
        let lhs = Expr::Image(
            "in".into(),
            vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
        );
        Stmt::Produce {
            func: "out".into(),
            body: Box::new(Stmt::For {
                var: "r_0.y".into(),
                min: Expr::int(0),
                extent: Expr::int(h),
                kind: LoopKind::ParallelReduce { threads },
                body: Box::new(Stmt::For {
                    var: "r_0.x".into(),
                    min: Expr::int(0),
                    extent: Expr::int(w),
                    kind: LoopKind::Serial,
                    body: Box::new(Stmt::ReduceStore {
                        id: 0,
                        buffer: "out".into(),
                        indices: vec![lhs.clone()],
                        value: Expr::cast(
                            ScalarType::UInt64,
                            Expr::add(Expr::FuncRef("out".into(), vec![lhs]), Expr::int(1)),
                        ),
                    }),
                }),
            }),
        }
    }

    #[test]
    fn parallel_reduce_histogram_matches_serial_reference() {
        for threads in [1usize, 4] {
            let plan = plan_for(parallel_hist_nest(23, 9, threads), ScalarType::UInt64);
            let img = input(23, 9, 0xB16B);
            let images: BTreeMap<String, &Buffer> =
                [("in".to_string(), &img)].into_iter().collect();
            // ForceScalar degrades the tagged loop to the serial reference
            // path — the oracle for the deferred run.
            let mut reference = Buffer::new(ScalarType::UInt64, &[64]);
            run_with_target(
                &plan,
                &mut reference,
                &images,
                &BTreeMap::new(),
                &BTreeMap::new(),
                Target::detect().with_tier(Tier::Scalar),
            )
            .expect("scalar run");
            let before = CounterSnapshot::take();
            let mut deferred = Buffer::new(ScalarType::UInt64, &[64]);
            run_with_target(
                &plan,
                &mut deferred,
                &images,
                &BTreeMap::new(),
                &BTreeMap::new(),
                Target::detect(),
            )
            .expect("deferred run");
            assert_eq!(reference, deferred, "threads {threads}");
            assert!(
                before.delta().parallel_reduce_merges >= 1,
                "deferred path must have merged (threads {threads})"
            );
        }
    }

    #[test]
    fn parallel_reduce_accumulator_rides_fused_chunks() {
        // A loop-invariant accumulator under a ParallelReduce loop: the
        // deferred path routes the interior through the existing fused
        // tree-reduce chunks, accumulating into the side-buffer cell.
        let g = Expr::cast(
            ScalarType::UInt64,
            Expr::Image("in".into(), vec![Expr::RVar("r_0.x".into()), Expr::int(0)]),
        );
        let extent = 257i64;
        let nest = Stmt::Produce {
            func: "out".into(),
            body: Box::new(Stmt::For {
                var: "r_0.x".into(),
                min: Expr::int(0),
                extent: Expr::int(extent),
                kind: LoopKind::ParallelReduce { threads: 2 },
                body: Box::new(Stmt::ReduceStore {
                    id: 0,
                    buffer: "out".into(),
                    indices: vec![Expr::int(0)],
                    value: accum_value(g),
                }),
            }),
        };
        let plan = plan_for(nest, ScalarType::UInt64);
        assert_eq!(
            plan.reduce_store_counts().lanes_i64,
            1,
            "the reduce kernel must still compile under ParallelReduce"
        );
        let img = input(300, 1, 99);
        let images: BTreeMap<String, &Buffer> = [("in".to_string(), &img)].into_iter().collect();
        let expect: u64 = (0..extent as usize)
            .map(|i| img.get(&[i as i64, 0]).as_i64() as u64)
            .fold(0, u64::wrapping_add);
        let before = CounterSnapshot::take();
        let mut out = Buffer::new(ScalarType::UInt64, &[1]);
        run_with_target(
            &plan,
            &mut out,
            &images,
            &BTreeMap::new(),
            &BTreeMap::new(),
            Target::detect(),
        )
        .expect("run");
        assert_eq!(out.get(&[0]).as_i64() as u64, expect);
        let delta = before.delta();
        assert!(delta.parallel_reduce_merges >= 1, "merge must have run");
        assert!(delta.reduce_chunks >= 1, "interior must ride fused chunks");
    }

    #[test]
    fn parallel_reduce_degrades_to_serial_when_merge_inadmissible() {
        // g reads the accumulator buffer, so no deferred plan compiles and
        // the tagged nest must fall back to the serial reference order
        // (which this order-dependent recurrence detects exactly).
        let lhs = Expr::RVar("r_0.x".into());
        let nest = Stmt::Produce {
            func: "out".into(),
            body: Box::new(Stmt::For {
                var: "r_0.x".into(),
                min: Expr::int(0),
                extent: Expr::int(8),
                kind: LoopKind::ParallelReduce { threads: 4 },
                body: Box::new(Stmt::ReduceStore {
                    id: 0,
                    buffer: "out".into(),
                    indices: vec![lhs.clone()],
                    value: Expr::cast(
                        ScalarType::UInt64,
                        Expr::add(
                            Expr::FuncRef("out".into(), vec![lhs]),
                            Expr::add(
                                Expr::FuncRef("out".into(), vec![Expr::int(0)]),
                                Expr::int(1),
                            ),
                        ),
                    ),
                }),
            }),
        };
        let plan =
            prepare(nest, "out", ScalarType::UInt64, &[], &[], &BTreeMap::new()).expect("prepare");
        let mut out = Buffer::new(ScalarType::UInt64, &[8]);
        run_with_target(
            &plan,
            &mut out,
            &BTreeMap::new(),
            &BTreeMap::new(),
            &BTreeMap::new(),
            Target::detect(),
        )
        .expect("run");
        // Serial order: out[0] = 0 + (0 + 1) = 1, then every later element
        // reads the updated out[0]: out[r] = 0 + (1 + 1) = 2.
        assert_eq!(out.get(&[0]).as_i64(), 1);
        for r in 1..8 {
            assert_eq!(out.get(&[r]).as_i64(), 2, "element {r}");
        }
    }

    #[test]
    fn counter_snapshot_delta_is_scoped() {
        // Deltas are computed against the live counters, so concurrent work
        // only ever grows them — a snapshot scope sees at least its own
        // activity and never a negative (saturating) difference.
        let before = CounterSnapshot::take();
        let plan = plan_for(parallel_hist_nest(16, 4, 1), ScalarType::UInt64);
        let img = input(16, 4, 7);
        let images: BTreeMap<String, &Buffer> = [("in".to_string(), &img)].into_iter().collect();
        let mut out = Buffer::new(ScalarType::UInt64, &[32]);
        run_with_target(
            &plan,
            &mut out,
            &images,
            &BTreeMap::new(),
            &BTreeMap::new(),
            Target::detect(),
        )
        .expect("run");
        let mid = before.delta();
        assert!(mid.parallel_reduce_merges >= 1);
        let later = before.delta();
        assert!(later.parallel_reduce_merges >= mid.parallel_reduce_merges);
        assert!(later.fused_rows >= mid.fused_rows);
        assert!(later.fused_tails >= mid.fused_tails);
        assert!(later.reduce_chunks >= mid.reduce_chunks);
    }
}
